"""Inter-task relation modelling (paper Section 3.3.2, Figs. 3 and 4).

*Precedence* (``ti PRECEDES tj``): a place ``pprec_i_j`` receives one
token from every completion of ``ti`` and is consumed once per instance
of ``tj`` before ``tj`` may start — Fig. 3's structure, with the token
routed into ``tj``'s start *gate* so that the release window of ``tj``
stays anchored at its arrival (the deadline-checking block still
measures from arrival, so lateness is always caught).

*Exclusion* (``ti EXCLUDES tj``, symmetric): "the modeling method adds a
single place shared by the two tasks.  This place has one marking and it
is pre-condition for the execution of the two tasks" — ``pexcl_i_j``
here.  Each task acquires the token through its gate transition before
any computation unit is granted and returns it on completion, so a
preemptive partner cannot interleave with the holder (Fig. 4's
``texcl``/``pexcl`` structure).  A task participating in several
exclusions acquires *all* its tokens atomically in one gate firing,
which rules out lock-order deadlocks.

*Messages*: an inter-task communication becomes a non-preemptive
transfer block on its bus resource — bus grant ``tgm [gb, gb]`` followed
by transfer ``tcm [cm, cm]`` — fed by the sender's completion and gating
the receiver like a precedence token.

The *gate* (``tl_<task>``, interval ``[0,0]``) is created lazily the
first time a task needs one: the release's output is rerouted through
``pwl_<task>`` and the gate re-emits the grant tokens (``c`` unit tokens
for preemptive tasks).  Tasks without relations keep the plain
release→grant wiring and their 4-firing instance cost.
"""

from __future__ import annotations

from repro.errors import NetConstructionError
from repro.spec.model import Message, Task
from repro.blocks.blocks import DECISION_PRIORITY, TaskNodes, sanitize
from repro.tpn.interval import TimeInterval
from repro.tpn.net import (
    ROLE_EXCLUSION,
    ROLE_MESSAGE,
    ROLE_PRECEDENCE,
    TimePetriNet,
)

#: Role tag of lazily created gate transitions.
ROLE_GATE = "gate"


def ensure_gate(
    net: TimePetriNet, nodes: TaskNodes, task: Task
) -> str:
    """Create (or fetch) the start gate of a task; returns its name.

    Rewires ``t_r → p_wg`` into ``t_r → p_wl → tl → p_wg`` so relation
    tokens can be attached as extra gate inputs.  Idempotent.
    """
    if task.name != nodes.task:
        raise NetConstructionError(
            f"node handles belong to {nodes.task!r}, not {task.name!r}"
        )
    x = sanitize(task.name)
    gate_name = f"tl_{x}"
    if net.has_transition(gate_name):
        return gate_name
    grant_tokens = task.computation if task.is_preemptive else 1
    net.remove_arc(nodes.release_t, nodes.wait_grant)
    wait_lock = net.add_place(
        f"pwl_{x}", task=task.name, label=f"wait lock {x}"
    ).name
    net.add_arc(nodes.release_t, wait_lock)
    net.add_transition(
        gate_name,
        interval=TimeInterval.zero(),
        priority=DECISION_PRIORITY,
        role=ROLE_GATE,
        task=task.name,
        label=f"gate {x}",
    )
    net.add_arc(wait_lock, gate_name)
    net.add_arc(gate_name, nodes.wait_grant, weight=grant_tokens)
    nodes.gate_input = wait_lock
    return gate_name


def exclusion_place_name(task_a: str, task_b: str) -> str:
    """Canonical (order-independent) name of an exclusion place."""
    first, second = sorted((sanitize(task_a), sanitize(task_b)))
    return f"pexcl_{first}_{second}"


def precedence_place_name(before: str, after: str) -> str:
    """Canonical name of a precedence place (direction matters)."""
    return f"pprec_{sanitize(before)}_{sanitize(after)}"


def add_exclusion_relation(
    net: TimePetriNet,
    nodes_a: TaskNodes,
    task_a: Task,
    nodes_b: TaskNodes,
    task_b: Task,
) -> str:
    """Model ``task_a EXCLUDES task_b`` (symmetric); returns the place.

    Both tasks' gates consume the shared single-token place; both
    finishers return it.
    """
    place = exclusion_place_name(task_a.name, task_b.name)
    if net.has_place(place):
        raise NetConstructionError(
            f"exclusion {task_a.name!r}/{task_b.name!r} already modelled"
        )
    net.add_place(
        place,
        marking=1,
        role=ROLE_EXCLUSION,
        label=f"exclusion {task_a.name}/{task_b.name}",
    )
    for nodes, task in ((nodes_a, task_a), (nodes_b, task_b)):
        gate = ensure_gate(net, nodes, task)
        net.add_arc(place, gate)
        net.add_arc(nodes.finisher, place)
    return place


def add_precedence_relation(
    net: TimePetriNet,
    nodes_before: TaskNodes,
    nodes_after: TaskNodes,
    task_after: Task,
) -> str:
    """Model ``before PRECEDES after``; returns the precedence place."""
    place = precedence_place_name(nodes_before.task, nodes_after.task)
    if net.has_place(place):
        raise NetConstructionError(
            f"precedence {nodes_before.task!r} -> {nodes_after.task!r} "
            "already modelled"
        )
    net.add_place(
        place,
        role=ROLE_PRECEDENCE,
        label=f"{nodes_before.task} precedes {nodes_after.task}",
    )
    net.add_arc(nodes_before.finisher, place)
    gate = ensure_gate(net, nodes_after, task_after)
    net.add_arc(place, gate)
    return place


def add_message_relation(
    net: TimePetriNet,
    message: Message,
    nodes_sender: TaskNodes,
    bus_place: str,
    nodes_receiver: TaskNodes | None = None,
    task_receiver: Task | None = None,
) -> dict[str, str]:
    """Model an inter-task message transfer block; returns node names.

    The sender's completion marks ``pwm`` (message ready); the bus grant
    ``tgm [gb, gb]`` acquires the bus; the transfer ``tcm [cm, cm]``
    releases it and marks ``pdel`` (delivered).  When the message
    precedes a receiver task, the delivered token gates that task;
    otherwise it accumulates and the composer drains it at the join.
    """
    m = sanitize(message.name)
    ready = net.add_place(
        f"pwm_{m}", role=ROLE_MESSAGE, label=f"message ready {m}"
    ).name
    transferring = net.add_place(
        f"pwcm_{m}", role=ROLE_MESSAGE, label=f"transferring {m}"
    ).name
    delivered = net.add_place(
        f"pdel_{m}", role=ROLE_MESSAGE, label=f"delivered {m}"
    ).name
    grant = net.add_transition(
        f"tgm_{m}",
        interval=TimeInterval.point(message.grant_bus),
        priority=DECISION_PRIORITY,
        role=ROLE_MESSAGE,
        label=f"bus grant {m}",
    ).name
    transfer = net.add_transition(
        f"tcm_{m}",
        interval=TimeInterval.point(message.communication),
        priority=DECISION_PRIORITY,
        role=ROLE_MESSAGE,
        label=f"transfer {m}",
    ).name
    net.add_arc(nodes_sender.finisher, ready)
    net.add_arc(ready, grant)
    net.add_arc(bus_place, grant)
    net.add_arc(grant, transferring)
    net.add_arc(transferring, transfer)
    net.add_arc(transfer, bus_place)
    net.add_arc(transfer, delivered)
    if nodes_receiver is not None:
        if task_receiver is None:
            raise NetConstructionError(
                f"message {message.name!r}: receiver nodes given "
                "without the receiver task"
            )
        gate = ensure_gate(net, nodes_receiver, task_receiver)
        net.add_arc(delivered, gate)
    return {
        "ready": ready,
        "transferring": transferring,
        "delivered": delivered,
        "grant": grant,
        "transfer": transfer,
    }
