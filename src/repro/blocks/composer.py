"""Specification → time Petri net translation (paper Section 4.3).

The composer performs the five generation steps the paper lists:

  i) arrival, deadline and task-structure blocks for each task;
 ii) each precedence and exclusion relation;
iii) each inter-task communication;
 iv) the fork block;
  v) the join block;

then fixes the explicit final marking ``M_F`` (system complete, every
resource token back home) and assigns transition priorities according to
a configurable policy.  The result bundles the net together with the
handles downstream stages need (instance counts, node names, the
theoretical minimum firing count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetConstructionError
from repro.blocks.blocks import (
    BlockStyle,
    DECISION_PRIORITY,
    TaskNodes,
    add_bus_block,
    add_fork_block,
    add_join_block,
    add_processor_block,
    add_task_blocks,
)
from repro.blocks.relations import (
    add_exclusion_relation,
    add_message_relation,
    add_precedence_relation,
)
from repro.spec.model import EzRTSpec, Task
from repro.spec.timing import instance_count, schedule_period
from repro.spec.validation import ensure_valid
from repro.tpn.net import CompiledNet, TimePetriNet

#: Priority policies for scheduling-decision transitions (grant/gate).
#: ``dm`` — deadline monotonic (smaller relative deadline = higher
#: priority); ``rm`` — rate monotonic (smaller period wins); ``lex`` —
#: specification order; ``none`` — all decisions share one priority
#: (maximum branching, useful for ablations).
PRIORITY_POLICIES = ("dm", "rm", "lex", "none")


@dataclass
class ComposerOptions:
    """Tunables of the spec→TPN translation.

    Attributes:
        style: block library flavour (compact or expanded).
        priority_policy: how decision transitions are ranked.
    """

    style: BlockStyle = BlockStyle.COMPACT
    priority_policy: str = "dm"

    def __post_init__(self) -> None:
        if isinstance(self.style, str):
            self.style = BlockStyle(self.style)
        if self.priority_policy not in PRIORITY_POLICIES:
            raise NetConstructionError(
                f"unknown priority policy {self.priority_policy!r}; "
                f"expected one of {PRIORITY_POLICIES}"
            )


@dataclass
class ComposedModel:
    """A specification translated to a time Petri net.

    Attributes:
        spec: the validated source specification.
        net: the composed time Petri net (final marking set).
        schedule_period: the hyper-period ``PS``.
        instances: task name → instance count ``N(t_i)``.
        nodes: task name → node-name handles.
        options: the translation options used.
        message_nodes: message name → transfer-block node names.
    """

    spec: EzRTSpec
    net: TimePetriNet
    schedule_period: int
    instances: dict[str, int]
    nodes: dict[str, TaskNodes]
    options: ComposerOptions
    message_nodes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: lazily cached compiled net — every pipeline stage (schedule,
    #: codegen, simulate, reporting) shares one compilation instead of
    #: re-freezing the net per stage.
    _compiled: CompiledNet | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def compiled(self) -> CompiledNet:
        """The index-based :class:`CompiledNet`, compiled once.

        The model's net must not be mutated after the first call; the
        composer never does, and neither should downstream code.
        """
        if self._compiled is None:
            self._compiled = self.net.compile()
        return self._compiled

    @property
    def total_instances(self) -> int:
        """Total task instances in the schedule period (Table 1: 782)."""
        return sum(self.instances.values())

    def required_horizon(self) -> int:
        """Time needed to complete every instance of one schedule period.

        With non-zero phases the last instance's absolute deadline
        ``ph + (N−1)·p + d`` may exceed ``PS``; executors must run to
        this horizon, not just to ``PS``.
        """
        horizon = self.schedule_period
        for task in self.spec.tasks:
            last_deadline = (
                task.phase
                + (self.instances[task.name] - 1) * task.period
                + task.deadline
            )
            horizon = max(horizon, last_deadline)
        return horizon

    def minimum_firings(self) -> int:
        """Length of a backtrack-free feasible firing schedule.

        Counted from the actual structure: every instance needs its
        arrival, release, optional gate, grant/compute firings (one pair
        per computation unit for preemptive tasks), optional finish and
        cancel firings; messages add their grant and transfer; fork and
        join contribute one firing each.  For Table 1 with compact
        blocks this is the paper's minimum state count 3130.
        """
        total = 2  # fork + join
        for task in self.spec.tasks:
            handles = self.nodes[task.name]
            per_instance = 2  # arrival (t_ph or t_a) + release
            if self.net.has_transition(f"tl_{_safe(task.name)}"):
                per_instance += 1
            if task.is_preemptive:
                per_instance += 2 * task.computation
            else:
                per_instance += 2  # grant + compute
            if handles.finish_t is not None:
                per_instance += 1
            if handles.cancel_t is not None:
                per_instance += 1
            total += per_instance * self.instances[task.name]
        for message in self.spec.messages:
            sender = message.sender
            if sender is None:
                continue
            total += 2 * self.instances[sender]
        return total


def _safe(name: str) -> str:
    from repro.blocks.blocks import sanitize

    return sanitize(name)


def compose(
    spec: EzRTSpec, options: ComposerOptions | None = None
) -> ComposedModel:
    """Translate a specification into its time Petri net model."""
    options = options or ComposerOptions()
    ensure_valid(spec)
    period = schedule_period(spec)
    net = TimePetriNet(spec.name)

    # Resource blocks (processors, buses).
    processor_places = {
        name: add_processor_block(net, name)
        for name in spec.processor_names()
    }
    bus_places = {
        name: add_bus_block(net, name) for name in spec.bus_names()
    }

    # Step i: arrival + deadline + task structure blocks per task.
    instances: dict[str, int] = {}
    nodes: dict[str, TaskNodes] = {}
    for task in spec.tasks:
        n = instance_count(task, period)
        instances[task.name] = n
        nodes[task.name] = add_task_blocks(
            net,
            task,
            n,
            processor_places[task.processor],
            style=options.style,
        )

    # Step ii: precedence and exclusion relations.
    for first, second in spec.exclusion_pairs():
        add_exclusion_relation(
            net,
            nodes[first],
            spec.task(first),
            nodes[second],
            spec.task(second),
        )
    for before, after in spec.precedence_pairs():
        add_precedence_relation(
            net, nodes[before], nodes[after], spec.task(after)
        )

    # Step iii: inter-task communications.
    message_nodes: dict[str, dict[str, str]] = {}
    undelivered: list[tuple[str, str]] = []  # (pdel place, sender)
    for message in spec.messages:
        if message.sender is None:
            raise NetConstructionError(
                f"message {message.name!r} has no sender task; it "
                "cannot be attached to the net"
            )
        receiver_nodes = None
        receiver_task = None
        if message.precedes is not None:
            receiver_nodes = nodes[message.precedes]
            receiver_task = spec.task(message.precedes)
        message_nodes[message.name] = add_message_relation(
            net,
            message,
            nodes[message.sender],
            bus_places[message.bus],
            receiver_nodes,
            receiver_task,
        )
        if message.precedes is None:
            undelivered.append(
                (message_nodes[message.name]["delivered"], message.sender)
            )

    # Step iv: fork block.
    add_fork_block(net, [nodes[t.name].start for t in spec.tasks])

    # Step v: join block.  Each task contributes N completion tokens;
    # receiver-less messages drain their delivered tokens here so the
    # final marking stays exact.
    contributions = {
        nodes[t.name].finished_pool: instances[t.name]
        for t in spec.tasks
    }
    for place, sender in undelivered:
        contributions[place] = instances[sender]
    end_place = add_join_block(net, contributions)

    # Final marking M_F: join token present, every resource token back,
    # everything else empty.
    final = {p.name: 0 for p in net.places}
    final[end_place] = 1
    for place in processor_places.values():
        final[place] = 1
    for place in bus_places.values():
        final[place] = 1
    for place in net.places_with_role("exclusion"):
        final[place.name] = 1
    net.set_final_marking(final)

    _assign_priorities(net, spec, options.priority_policy)
    net.validate()
    return ComposedModel(
        spec=spec,
        net=net,
        schedule_period=period,
        instances=instances,
        nodes=nodes,
        options=options,
        message_nodes=message_nodes,
    )


def task_ranks(spec: EzRTSpec, policy: str) -> dict[str, int]:
    """Rank tasks for the priority policy (rank 0 = most urgent)."""
    if policy == "none":
        return {task.name: 0 for task in spec.tasks}
    if policy == "dm":
        ordered = sorted(
            spec.tasks, key=lambda t: (t.deadline, spec.tasks.index(t))
        )
    elif policy == "rm":
        ordered = sorted(
            spec.tasks, key=lambda t: (t.period, spec.tasks.index(t))
        )
    elif policy == "lex":
        ordered = list(spec.tasks)
    else:
        raise NetConstructionError(f"unknown priority policy {policy!r}")
    return {task.name: rank for rank, task in enumerate(ordered)}


def _assign_priorities(
    net: TimePetriNet, spec: EzRTSpec, policy: str
) -> None:
    """Write the priority function π onto decision transitions.

    Grant and gate transitions receive ``DECISION_PRIORITY`` plus the
    policy's *attribute value* (relative deadline for ``dm``, period
    for ``rm``, declaration index for ``lex``, zero for ``none``) so
    the search tries urgent tasks first.  Using the attribute itself —
    rather than a total-order rank — keeps tasks with equal attributes
    at equal priority, which matters for the paper's strict ``FT(s)``
    filter: the whole tie group stays fireable and backtracking can
    reorder within it (the mine pump needs exactly that at t=75, where
    PDL must be tried after CH4H fails).
    """
    values: dict[str, int]
    if policy == "dm":
        values = {t.name: t.deadline for t in spec.tasks}
    elif policy == "rm":
        values = {t.name: t.period for t in spec.tasks}
    elif policy == "lex":
        values = {t.name: i for i, t in enumerate(spec.tasks)}
    elif policy == "none":
        values = {t.name: 0 for t in spec.tasks}
    else:
        raise NetConstructionError(f"unknown priority policy {policy!r}")
    for transition in net.transitions:
        if transition.role in ("grant", "gate") and transition.task:
            transition.priority = (
                DECISION_PRIORITY + values[transition.task]
            )
