"""The ezRealtime building blocks (paper Figs. 1 and 2, Section 3.3.1).

Tasks are modelled by composing seven block types into one net:

* **fork** — ``t_start [0,0]`` scatters the initial token to every
  task's start place (models the simultaneous system start);
* **join** — ``t_end [0,0]`` gathers ``N(t_i)`` completion tokens from
  every task (arc weight ``N(t_i)``); a marked ``p_end`` is the final
  marking ``M_F`` of Definition 3.2;
* **periodic task arrival** — ``t_ph [ph, ph]`` releases the first
  instance after the phase and deposits ``N−1`` budget tokens on
  ``p_wa`` (the figure's weight ``a_i``); ``t_a [p, p]`` converts one
  budget token per period into a new arrival.  Every arrival marks the
  release queue ``p_wr`` *and* the deadline timer ``p_wd``;
* **deadline checking** — ``t_d [d, d]`` moves the ``p_wd`` token to the
  undesirable ``p_dm`` (deadline-missed) place unless the instance's
  completion consumed it first;
* **non-preemptive task structure** — release ``t_r [r, d−c]``, grant
  ``t_g [0,0]`` (acquires the processor), computation ``t_c [c, c]``
  (releases the processor);
* **preemptive task structure** — the computation is split into ``c``
  unit subtasks: ``t_r`` deposits ``c`` grant tokens (the figure's
  weight-``c`` arc), each ``t_g [0,0]`` / ``t_c [1,1]`` pair executes
  one time unit and frees the processor, and ``t_f`` collects ``c``
  completed units (weight-``c`` arc);
* **processor** — a single-token resource place used mutually
  exclusively by all grants.

Two *styles* are generated (see DESIGN.md, "state counting"):

* ``COMPACT`` (default) folds the finish/deadline-cancel bookkeeping
  into the computation's last firing, so a non-preemptive instance
  costs exactly 4 firings (arrival, release, grant, computation) — this
  reproduces the paper's "minimum number of states" 3130 = 4·782 + 2
  for the mine pump;
* ``EXPANDED`` keeps the figures' separate ``t_f`` (finish) and
  ``t_pc`` (deadline-timer cancellation) transitions, matching the
  drawn structure of Figs. 2–4 node for node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.errors import NetConstructionError
from repro.spec.model import Task
from repro.tpn.interval import TimeInterval
from repro.tpn.net import (
    ROLE_ARRIVAL,
    ROLE_COMPUTE,
    ROLE_DEADLINE_MISS,
    ROLE_DEADLINE_OK,
    ROLE_FINISH,
    ROLE_FORK,
    ROLE_GRANT,
    ROLE_JOIN,
    ROLE_PHASE,
    ROLE_RELEASE,
    TimePetriNet,
)

#: Priority assigned to deadline-miss transitions: they must lose every
#: tie against completion transitions so that finishing exactly at the
#: deadline counts as meeting it.
DEADLINE_MISS_PRIORITY = 1_000_000

#: Default priority of structural transitions that should linearise
#: deterministically (fork, join, phase, arrival, finish, cancel).
STRUCTURAL_PRIORITY = 0

#: Default priority of release transitions.
RELEASE_PRIORITY = 1

#: Default priority of arrival transitions (``t_ph``, ``t_a``).  Kept
#: *after* the finish/cancel transitions (priority 0) so that when an
#: instance completes at the very instant the next one arrives, the
#: completion bookkeeping is tried first and the deadline timer resets.
ARRIVAL_PRIORITY = 2

#: Default priority band for scheduling-decision transitions (grant,
#: lock); the priority policy overwrites these per task.
DECISION_PRIORITY = 100


class BlockStyle(Enum):
    """Block library flavour (see module docstring)."""

    COMPACT = "compact"
    EXPANDED = "expanded"


_SANITISE_RE = re.compile(r"[^A-Za-z0-9_]")


def sanitize(name: str) -> str:
    """Make a task/processor name safe for use inside node names."""
    cleaned = _SANITISE_RE.sub("_", name)
    if not cleaned:
        raise NetConstructionError(f"cannot sanitise name {name!r}")
    return cleaned


@dataclass
class TaskNodes:
    """Node names produced for one task (handles for later wiring).

    ``gate_input`` is the place whose token admits an instance into the
    grant stage; relation modelling reroutes it when the task has
    exclusions or precedence predecessors.  ``finisher`` is the
    transition whose firing marks instance completion: relation
    modelling attaches token returns/productions to it.
    """

    task: str
    start: str  # p_st
    wait_arrival: str | None  # p_wa (absent when N == 1)
    wait_release: str  # p_wr
    wait_grant: str  # p_wg
    wait_compute: str  # p_wc
    wait_finish: str | None  # p_wf (preemptive only)
    finished_pool: str  # p_f
    wait_deadline: str  # p_wd
    deadline_missed: str  # p_dm
    phase_t: str  # t_ph
    arrival_t: str | None  # t_a (absent when N == 1)
    release_t: str  # t_r
    grant_t: str  # t_g
    compute_t: str  # t_c
    finish_t: str | None  # t_f (None in compact non-preemptive)
    deadline_t: str  # t_d
    cancel_t: str | None  # t_pc (expanded only)
    finisher: str  # transition completing an instance
    gate_input: str  # place feeding the grant stage (reroutable)


def add_processor_block(net: TimePetriNet, processor: str) -> str:
    """Processor block: a single-token resource place ``p_proc``.

    Returns the place name.  The processor is "used in a mutually
    exclusive way" — every grant consumes the token, every computation
    end returns it.
    """
    name = f"pproc_{sanitize(processor)}"
    if not net.has_place(name):
        net.add_place(name, marking=1, label=f"processor {processor}")
    return name


def add_bus_block(net: TimePetriNet, bus: str) -> str:
    """Bus block: the communication analogue of the processor block."""
    name = f"pbus_{sanitize(bus)}"
    if not net.has_place(name):
        net.add_place(name, marking=1, label=f"bus {bus}")
    return name


def add_fork_block(net: TimePetriNet, start_places: list[str]) -> str:
    """Fork block (Fig. 1(a)): start ``n`` concurrent tasks at time 0.

    Returns the name of the fork transition ``t_start``.
    """
    net.add_place("pstart", marking=1, label="system start")
    net.add_transition(
        "tstart",
        interval=TimeInterval.zero(),
        priority=STRUCTURAL_PRIORITY,
        role=ROLE_FORK,
        label="fork",
    )
    net.add_arc("pstart", "tstart")
    for place in start_places:
        net.add_arc("tstart", place)
    return "tstart"


def add_join_block(
    net: TimePetriNet, contributions: dict[str, int]
) -> str:
    """Join block (Fig. 1(b)): all tasks concluded within ``PS``.

    ``contributions`` maps each completion-pool place to the number of
    tokens it must deliver (the task's instance count).  A marked
    ``p_end`` signals that a feasible firing schedule was found.
    Returns the name of the end place.
    """
    net.add_place("pend", label="schedule complete")
    net.add_transition(
        "tend",
        interval=TimeInterval.zero(),
        priority=STRUCTURAL_PRIORITY,
        role=ROLE_JOIN,
        label="join",
    )
    for place, weight in contributions.items():
        net.add_arc(place, "tend", weight)
    net.add_arc("tend", "pend")
    return "pend"


def add_task_blocks(
    net: TimePetriNet,
    task: Task,
    n_instances: int,
    processor_place: str,
    style: BlockStyle = BlockStyle.COMPACT,
) -> TaskNodes:
    """Arrival + deadline-checking + task-structure blocks for a task.

    Builds Figs. 1(c), 1(d) and 2(a)/2(b) for ``task``, wired to the
    shared ``processor_place``, and returns the node handles.
    """
    if n_instances < 1:
        raise NetConstructionError(
            f"task {task.name!r}: instance count must be >= 1"
        )
    x = sanitize(task.name)
    c = task.computation
    preemptive = task.is_preemptive

    # --- places ---------------------------------------------------------
    p_st = net.add_place(f"pst_{x}", task=task.name, label=f"start {x}").name
    p_wa = None
    if n_instances > 1:
        p_wa = net.add_place(
            f"pwa_{x}", task=task.name, label=f"arrival budget {x}"
        ).name
    p_wr = net.add_place(
        f"pwr_{x}", task=task.name, label=f"wait release {x}"
    ).name
    p_wg = net.add_place(
        f"pwg_{x}", task=task.name, label=f"wait grant {x}"
    ).name
    p_wc = net.add_place(
        f"pwc_{x}", task=task.name, label=f"computing {x}"
    ).name
    p_wf = None
    if preemptive or style is BlockStyle.EXPANDED:
        p_wf = net.add_place(
            f"pwf_{x}", task=task.name, label=f"wait finish {x}"
        ).name
    p_f = net.add_place(
        f"pf_{x}", task=task.name, label=f"finished {x}"
    ).name
    p_wd = net.add_place(
        f"pwd_{x}", task=task.name, label=f"deadline timer {x}"
    ).name
    p_dm = net.add_place(
        f"pdm_{x}",
        task=task.name,
        role="deadline-miss",
        label=f"deadline missed {x}",
    ).name

    # --- arrival block (Fig. 1(c)) --------------------------------------
    t_ph = net.add_transition(
        f"tph_{x}",
        interval=TimeInterval.point(task.phase),
        priority=ARRIVAL_PRIORITY,
        role=ROLE_PHASE,
        task=task.name,
        label=f"phase {x}",
    ).name
    net.add_arc(p_st, t_ph)
    net.add_arc(t_ph, p_wr)
    net.add_arc(t_ph, p_wd)
    t_a = None
    if n_instances > 1:
        assert p_wa is not None
        net.add_arc(t_ph, p_wa, weight=n_instances - 1)
        t_a = net.add_transition(
            f"ta_{x}",
            interval=TimeInterval.point(task.period),
            priority=ARRIVAL_PRIORITY,
            role=ROLE_ARRIVAL,
            task=task.name,
            label=f"arrival {x}",
        ).name
        net.add_arc(p_wa, t_a)
        net.add_arc(t_a, p_wr)
        net.add_arc(t_a, p_wd)

    # --- deadline checking block (Fig. 1(d)) -----------------------------
    t_d = net.add_transition(
        f"td_{x}",
        interval=TimeInterval.point(task.deadline),
        priority=DEADLINE_MISS_PRIORITY,
        role=ROLE_DEADLINE_MISS,
        task=task.name,
        label=f"deadline {x}",
    ).name
    net.add_arc(p_wd, t_d)
    net.add_arc(t_d, p_dm)

    # --- task structure block (Fig. 2(a) / 2(b)) -------------------------
    release_upper = task.deadline - task.computation
    t_r = net.add_transition(
        f"tr_{x}",
        interval=TimeInterval(task.release, release_upper),
        priority=RELEASE_PRIORITY,
        role=ROLE_RELEASE,
        task=task.name,
        label=f"release {x}",
    ).name
    net.add_arc(p_wr, t_r)
    # The release feeds the gate input; relation modelling may reroute
    # this arc through a lock/precedence gate (see relations.py).
    gate_weight = c if preemptive else 1
    net.add_arc(t_r, p_wg, weight=gate_weight)

    t_g = net.add_transition(
        f"tg_{x}",
        interval=TimeInterval.zero(),
        priority=DECISION_PRIORITY,
        role=ROLE_GRANT,
        task=task.name,
        label=f"grant {x}",
    ).name
    net.add_arc(p_wg, t_g)
    net.add_arc(processor_place, t_g)
    net.add_arc(t_g, p_wc)

    compute_interval = (
        TimeInterval.point(1) if preemptive else TimeInterval.point(c)
    )
    t_c = net.add_transition(
        f"tc_{x}",
        interval=compute_interval,
        priority=RELEASE_PRIORITY,
        role=ROLE_COMPUTE,
        task=task.name,
        code=task.code.content if task.code else None,
        label=f"compute {x}",
    ).name
    net.add_arc(p_wc, t_c)
    net.add_arc(t_c, processor_place)

    t_f = None
    t_pc = None
    if preemptive:
        assert p_wf is not None
        net.add_arc(t_c, p_wf)
        t_f = net.add_transition(
            f"tf_{x}",
            interval=TimeInterval.zero(),
            priority=STRUCTURAL_PRIORITY,
            role=ROLE_FINISH,
            task=task.name,
            label=f"finish {x}",
        ).name
        net.add_arc(p_wf, t_f, weight=c)
        net.add_arc(t_f, p_f)
        finisher = t_f
    elif style is BlockStyle.EXPANDED:
        assert p_wf is not None
        net.add_arc(t_c, p_wf)
        t_f = net.add_transition(
            f"tf_{x}",
            interval=TimeInterval.zero(),
            priority=STRUCTURAL_PRIORITY,
            role=ROLE_FINISH,
            task=task.name,
            label=f"finish {x}",
        ).name
        net.add_arc(p_wf, t_f)
        net.add_arc(t_f, p_f)
        finisher = t_f
    else:
        # compact non-preemptive: the computation itself completes the
        # instance (4 firings per instance: arrival, release, grant,
        # computation)
        net.add_arc(t_c, p_f)
        finisher = t_c

    # Deadline-timer cancellation: compact folds it into the finisher;
    # expanded uses the figures' explicit t_pc chain.
    if style is BlockStyle.EXPANDED:
        p_wpc = net.add_place(
            f"pwpc_{x}", task=task.name, label=f"cancel deadline {x}"
        ).name
        net.add_arc(finisher, p_wpc)
        t_pc = net.add_transition(
            f"tpc_{x}",
            interval=TimeInterval.zero(),
            priority=STRUCTURAL_PRIORITY,
            role=ROLE_DEADLINE_OK,
            task=task.name,
            label=f"deadline met {x}",
        ).name
        net.add_arc(p_wpc, t_pc)
        net.add_arc(p_wd, t_pc)
    else:
        net.add_arc(p_wd, finisher)

    return TaskNodes(
        task=task.name,
        start=p_st,
        wait_arrival=p_wa,
        wait_release=p_wr,
        wait_grant=p_wg,
        wait_compute=p_wc,
        wait_finish=p_wf,
        finished_pool=p_f,
        wait_deadline=p_wd,
        deadline_missed=p_dm,
        phase_t=t_ph,
        arrival_t=t_a,
        release_t=t_r,
        grant_t=t_g,
        compute_t=t_c,
        finish_t=t_f,
        deadline_t=t_d,
        cancel_t=t_pc,
        finisher=finisher,
        gate_input=p_wg,
    )


def firings_per_instance(task: Task, style: BlockStyle) -> int:
    """Minimum number of transition firings one instance contributes.

    The compact non-preemptive cost of 4 underlies the paper's
    minimum-state count (Section 5): arrival, release, grant,
    computation.  Preemptive instances add a grant/compute pair per
    computation unit plus the unit-collecting finish.
    """
    if task.is_preemptive:
        base = 2 * task.computation + 3
    elif style is BlockStyle.COMPACT:
        base = 4
    else:
        base = 6
    if not task.is_preemptive and style is BlockStyle.EXPANDED:
        return base  # arrival, release, grant, compute, finish, cancel
    if task.is_preemptive and style is BlockStyle.EXPANDED:
        return base + 1  # + cancel
    return base


def minimum_schedule_firings(
    tasks_and_instances: list[tuple[Task, int]],
    style: BlockStyle = BlockStyle.COMPACT,
) -> int:
    """Length of a backtrack-free firing schedule (fork + join included).

    For Table 1 with compact blocks this is the paper's minimum state
    count: ``4 × 782 + 2 = 3130``.
    """
    total = 2  # fork + join
    for task, n in tasks_and_instances:
        total += n * firings_per_instance(task, style)
    return total
