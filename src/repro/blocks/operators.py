"""Net composition operators.

The paper builds the system model "through composition of building
blocks" using operators detailed in Barreto's thesis [2].  The operators
needed by the block library are implemented here:

* :func:`merge_nets` — disjoint union (re-exported from the TPN core);
* :func:`merge_places` — place fusion: identify several places of a net
  into one (the classic composition operator; used e.g. to fuse every
  block's ``p_proc`` into the single processor place);
* :func:`rename` — systematic node renaming (instantiating a generic
  block for a concrete task);
* :func:`relabel_interval` / :func:`add_interface_arc` — small surgical
  helpers used when a relation sub-net plugs into existing task nets.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.errors import NetConstructionError
from repro.tpn.net import TimePetriNet, net_union
from repro.tpn.interval import TimeInterval

#: Re-exported disjoint union (see :func:`repro.tpn.net.net_union`).
merge_nets = net_union


def rename(
    net: TimePetriNet,
    mapping: Mapping[str, str] | Callable[[str], str],
    name: str | None = None,
) -> TimePetriNet:
    """Return a copy of ``net`` with nodes renamed.

    ``mapping`` is either an explicit old->new dict (nodes absent from
    it keep their name) or a function applied to every node name.
    Renaming must stay injective; collisions raise.
    """
    if callable(mapping):
        translate = mapping
    else:
        table = dict(mapping)

        def translate(node: str) -> str:
            return table.get(node, node)

    result = TimePetriNet(name or net.name)
    for place in net.places:
        result.add_place(
            translate(place.name),
            marking=place.marking,
            label=place.label,
            role=place.role,
            task=place.task,
        )
    for transition in net.transitions:
        result.add_transition(
            translate(transition.name),
            interval=transition.interval,
            priority=transition.priority,
            code=transition.code,
            label=transition.label,
            role=transition.role,
            task=transition.task,
        )
    for t in net.transition_names:
        for p, w in net.preset(t).items():
            result.add_arc(translate(p), translate(t), w)
        for p, w in net.postset(t).items():
            result.add_arc(translate(t), translate(p), w)
    result.final_marking = {
        translate(p): tokens for p, tokens in net.final_marking.items()
    }
    return result


def merge_places(
    net: TimePetriNet,
    groups: Iterable[Iterable[str]],
    name: str | None = None,
) -> TimePetriNet:
    """Fuse each group of places into its first member.

    The fused place keeps the first member's metadata; its initial
    marking is the *maximum* of the group's markings (resource places
    composed from blocks each carry the same single token — taking the
    max rather than the sum keeps one resource token, which is the
    operator's intent in the thesis).  Arcs of every member are
    redirected to the fused place, accumulating weights when several
    members connect to the same transition.
    """
    translation: dict[str, str] = {}
    kept_marking: dict[str, int] = {}
    for group in groups:
        members = list(group)
        if not members:
            continue
        target = members[0]
        if target not in net.place_names:
            raise NetConstructionError(f"unknown place {target!r}")
        marking = net.place(target).marking
        for member in members[1:]:
            if member not in net.place_names:
                raise NetConstructionError(f"unknown place {member!r}")
            translation[member] = target
            marking = max(marking, net.place(member).marking)
        kept_marking[target] = marking

    result = TimePetriNet(name or net.name)
    for place in net.places:
        if place.name in translation:
            continue
        result.add_place(
            place.name,
            marking=kept_marking.get(place.name, place.marking),
            label=place.label,
            role=place.role,
            task=place.task,
        )
    for transition in net.transitions:
        result.add_transition(
            transition.name,
            interval=transition.interval,
            priority=transition.priority,
            code=transition.code,
            label=transition.label,
            role=transition.role,
            task=transition.task,
        )
    for t in net.transition_names:
        for p, w in net.preset(t).items():
            result.add_arc(translation.get(p, p), t, w)
        for p, w in net.postset(t).items():
            result.add_arc(t, translation.get(p, p), w)
    merged_final: dict[str, int] = {}
    for p, tokens in net.final_marking.items():
        target = translation.get(p, p)
        merged_final[target] = max(merged_final.get(target, 0), tokens)
    result.final_marking = merged_final
    return result


def relabel_interval(
    net: TimePetriNet, transition: str, interval: TimeInterval
) -> None:
    """Replace a transition's static interval in place."""
    net.transition(transition).interval = interval


def add_interface_arc(
    net: TimePetriNet, source: str, target: str, weight: int = 1
) -> None:
    """Add an arc between nodes of an already-composed net.

    Thin wrapper over :meth:`TimePetriNet.add_arc` that exists to make
    relation-modelling call sites read as composition steps.
    """
    net.add_arc(source, target, weight)
