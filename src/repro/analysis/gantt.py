"""ASCII Gantt rendering of schedules and traces.

The paper's GUI displays schedules graphically; the terminal equivalent
here draws one row per task over a time window, marking executing units,
releases and deadlines — handy in examples, reports and while debugging
a surprising schedule.
"""

from __future__ import annotations

from repro.blocks.composer import ComposedModel
from repro.scheduler.schedule import ExecutionSegment


def render_gantt(
    model: ComposedModel,
    segments: list[ExecutionSegment],
    start: int = 0,
    end: int | None = None,
    width: int = 72,
) -> str:
    """Draw the schedule as one character row per task.

    Each column is ``max(1, span/width)`` time units.  Cell glyphs:
    ``#`` executing (``+`` for a partially covered scaled cell), ``.``
    idle.  A header rules the time axis.
    """
    spec = model.spec
    stop = end if end is not None else model.schedule_period
    if stop <= start:
        raise ValueError("empty time window")
    span = stop - start
    scale = max(1, -(-span // width))
    columns = -(-span // scale)

    lines = [
        f"Gantt [{start}, {stop}) — one column = {scale} time unit(s)"
    ]
    axis = []
    for col in range(columns):
        t = start + col * scale
        axis.append("|" if t % (10 * scale) == 0 else "-")
    name_width = max(len(task.name) for task in spec.tasks)
    lines.append(" " * (name_width + 2) + "".join(axis))

    for task in spec.tasks:
        cells = []
        for col in range(columns):
            lo = start + col * scale
            hi = min(lo + scale, stop)
            covered = 0
            for segment in segments:
                if segment.task != task.name:
                    continue
                covered += max(
                    0, min(segment.end, hi) - max(segment.start, lo)
                )
            if covered == hi - lo:
                cells.append("#")
            elif covered > 0:
                cells.append("+")
            else:
                cells.append(".")
        lines.append(f"{task.name:<{name_width}}  " + "".join(cells))
    return "\n".join(lines)


def render_instance_table(
    model: ComposedModel,
    segments: list[ExecutionSegment],
    limit: int | None = 20,
) -> str:
    """Tabulate instances: arrival, window, segments, response time."""
    spec = model.spec
    rows = ["task      inst  arrival  deadline  segments  response"]
    count = 0
    for task in spec.tasks:
        for k in range(1, model.instances[task.name] + 1):
            segs = [
                s
                for s in segments
                if s.task == task.name and s.instance == k
            ]
            if not segs:
                continue
            arrival = task.phase + (k - 1) * task.period
            spans = ",".join(f"{s.start}-{s.end}" for s in segs)
            response = segs[-1].end - arrival
            rows.append(
                f"{task.name:<9} {k:>4}  {arrival:>7}  "
                f"{arrival + task.deadline:>8}  {spans:<9} "
                f"{response:>8}"
            )
            count += 1
            if limit is not None and count >= limit:
                rows.append(f"... (limited to {limit} instances)")
                return "\n".join(rows)
    return "\n".join(rows)
