"""Fixed-priority response-time analysis (Joseph–Pandya / Audsley).

The exact test for preemptive fixed-priority scheduling on one
processor: the worst-case response time of task ``i`` is the least
fixed point of ``R = c_i + Σ_{j ∈ hp(i)} ⌈R / p_j⌉ · c_j``, and the
task is schedulable iff ``R ≤ d_i``.  For non-preemptive sets the
analysis adds the longest lower-priority blocking ``max_{j ∈ lp(i)}
(c_j − 1)``.

Reports use this to contrast analytical fixed-priority schedulability
with what the pre-runtime search actually achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.spec.model import EzRTSpec


@dataclass(frozen=True)
class ResponseTimeResult:
    """Per-task worst-case response times under fixed priorities."""

    response: dict[str, int]
    schedulable: bool
    unschedulable_tasks: tuple[str, ...]

    def __str__(self) -> str:
        rows = ", ".join(
            f"{task}={value}" for task, value in self.response.items()
        )
        verdict = "schedulable" if self.schedulable else (
            f"unschedulable: {', '.join(self.unschedulable_tasks)}"
        )
        return f"RTA ({verdict}): {rows}"


def response_time_analysis(
    spec: EzRTSpec,
    policy: str = "dm",
    nonpreemptive_blocking: bool = True,
    max_iterations: int = 10_000,
) -> ResponseTimeResult:
    """Compute worst-case response times under DM or RM priorities.

    ``nonpreemptive_blocking`` adds the classical ``max(c_j − 1)``
    blocking term from lower-priority non-preemptive tasks; preemptive
    tasks contribute no blocking.
    """
    if policy == "dm":
        ordered = sorted(spec.tasks, key=lambda t: t.deadline)
    elif policy == "rm":
        ordered = sorted(spec.tasks, key=lambda t: t.period)
    else:
        raise SpecificationError(
            f"unknown fixed-priority policy {policy!r}"
        )
    response: dict[str, int] = {}
    failing: list[str] = []
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        lower = ordered[index + 1:]
        blocking = 0
        if nonpreemptive_blocking:
            blocking = max(
                (
                    other.computation - 1
                    for other in lower
                    if not other.is_preemptive
                ),
                default=0,
            )
        current = task.computation + blocking
        for _ in range(max_iterations):
            interference = sum(
                -(-current // other.period) * other.computation
                for other in higher
            )
            updated = task.computation + blocking + interference
            if updated == current:
                break
            current = updated
            if current > task.deadline + task.period:
                break  # diverging; certainly unschedulable
        response[task.name] = current
        if current > task.deadline:
            failing.append(task.name)
    return ResponseTimeResult(
        response=response,
        schedulable=not failing,
        unschedulable_tasks=tuple(failing),
    )
