"""Schedulability analysis, Gantt rendering and reporting."""

from repro.analysis.demand import DemandCheck, demand_bound, edf_feasible
from repro.analysis.energy import (
    EnergyReport,
    energy_report,
    max_tolerable_overhead,
)
from repro.analysis.gantt import render_gantt, render_instance_table
from repro.analysis.report import (
    campaign_report,
    full_report,
    interval_slack_report,
    schedule_report,
    search_report,
    spec_report,
)
from repro.analysis.response_time import (
    ResponseTimeResult,
    response_time_analysis,
)
from repro.analysis.utilization import (
    breakdown,
    liu_layland_bound,
    necessary_feasible,
    passes_hyperbolic,
    passes_liu_layland,
    total_utilization,
)

__all__ = [
    "DemandCheck",
    "EnergyReport",
    "ResponseTimeResult",
    "breakdown",
    "campaign_report",
    "demand_bound",
    "edf_feasible",
    "energy_report",
    "full_report",
    "interval_slack_report",
    "liu_layland_bound",
    "max_tolerable_overhead",
    "necessary_feasible",
    "passes_hyperbolic",
    "passes_liu_layland",
    "render_gantt",
    "render_instance_table",
    "response_time_analysis",
    "schedule_report",
    "search_report",
    "spec_report",
    "total_utilization",
]
