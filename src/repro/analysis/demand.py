"""Processor-demand analysis for EDF feasibility.

The exact feasibility test for preemptive EDF on one processor
(Baruah/Rosier/Howell): a synchronous constrained-deadline task set is
EDF-schedulable iff for every absolute deadline ``L`` in the hyper
period, the demand bound ``h(L) = Σ_i max(0, ⌊(L − d_i)/p_i⌋ + 1)·c_i``
does not exceed ``L``.

Used by the baseline benches to tell *why* EDF fails on a set (demand
overload) versus where it fails only through blocking (exclusion /
non-preemptable sections, which this test does not model — exactly the
gap pre-runtime scheduling closes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spec.model import EzRTSpec
from repro.spec.timing import schedule_period


def demand_bound(spec: EzRTSpec, interval: int) -> int:
    """``h(L)``: worst-case execution demand due within ``interval``.

    Assumes the synchronous arrival pattern (all phases ignored), which
    is the worst case for constrained-deadline sets.
    """
    total = 0
    for task in spec.tasks:
        jobs = (interval - task.deadline) // task.period + 1
        if jobs > 0:
            total += jobs * task.computation
    return total


@dataclass(frozen=True)
class DemandCheck:
    """Result of the EDF demand-bound test."""

    feasible: bool
    first_overload: int | None  # L at which h(L) > L, if any
    checked_points: int

    def __str__(self) -> str:
        if self.feasible:
            return (
                f"EDF demand test: feasible "
                f"({self.checked_points} deadlines checked)"
            )
        return (
            f"EDF demand test: overload at L={self.first_overload} "
            f"(h(L) > L)"
        )


def edf_feasible(spec: EzRTSpec, horizon: int | None = None) -> DemandCheck:
    """Exact EDF test for preemptive, independent task sets.

    Checks ``h(L) ≤ L`` at every absolute deadline up to the hyper
    period (or ``horizon``).  Relations (exclusion, precedence,
    non-preemptive execution) are *not* modelled — a set passing this
    test can still be runtime-unschedulable with them, which is the
    comparison the baseline bench makes.
    """
    end = horizon if horizon is not None else schedule_period(spec)
    deadlines: set[int] = set()
    for task in spec.tasks:
        deadline = task.deadline
        while deadline <= end:
            deadlines.add(deadline)
            deadline += task.period
    checked = 0
    for point in sorted(deadlines):
        checked += 1
        if demand_bound(spec, point) > point:
            return DemandCheck(
                feasible=False,
                first_overload=point,
                checked_points=checked,
            )
    return DemandCheck(
        feasible=True, first_overload=None, checked_points=checked
    )
