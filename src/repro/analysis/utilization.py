"""Utilisation-based schedulability bounds.

Classical necessary/sufficient tests used to sanity-check
specifications before the (exact, but exponential) pre-runtime search
runs, and to annotate reports:

* total utilisation ``U = Σ c_i / p_i`` — ``U > m`` (m processors) is
  always infeasible;
* the Liu–Layland bound ``U ≤ n(2^{1/n} − 1)`` — sufficient for
  rate-monotonic scheduling of implicit-deadline preemptive sets;
* the hyperbolic bound ``Π (U_i + 1) ≤ 2`` — a tighter RM sufficiency
  test (Bini/Buttazzo).

These are *baseline theory*: the pre-runtime scheduler neither needs
nor is limited by them; the benches show it scheduling sets far above
the RM bounds (the mine pump is non-preemptive, where none of these
suffice).
"""

from __future__ import annotations

from repro.spec.model import EzRTSpec


def total_utilization(spec: EzRTSpec) -> float:
    """``U = Σ c_i / p_i`` over all tasks."""
    return sum(task.utilization for task in spec.tasks)


def liu_layland_bound(n: int) -> float:
    """The RM utilisation bound for ``n`` tasks; ``ln 2`` as n → ∞."""
    if n < 1:
        raise ValueError("task count must be >= 1")
    return n * (2 ** (1 / n) - 1)


def passes_liu_layland(spec: EzRTSpec) -> bool:
    """Sufficient RM test (implicit-deadline preemptive sets only)."""
    return total_utilization(spec) <= liu_layland_bound(len(spec.tasks))


def passes_hyperbolic(spec: EzRTSpec) -> bool:
    """Bini–Buttazzo hyperbolic RM bound: ``Π (U_i + 1) ≤ 2``."""
    product = 1.0
    for task in spec.tasks:
        product *= task.utilization + 1.0
    return product <= 2.0


def necessary_feasible(spec: EzRTSpec, processors: int = 1) -> bool:
    """Necessary condition for any scheduler: ``U ≤ m``."""
    return total_utilization(spec) <= processors + 1e-12


def breakdown(spec: EzRTSpec) -> dict[str, float]:
    """Report row: per-task and total utilisation plus the RM bounds."""
    rows = {task.name: task.utilization for task in spec.tasks}
    rows["total"] = total_utilization(spec)
    rows["liu-layland-bound"] = liu_layland_bound(len(spec.tasks))
    return rows
