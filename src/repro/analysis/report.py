"""Textual reporting of the whole pipeline outcome.

``full_report`` assembles what the paper's Section 5 narrates for the
mine pump — specification summary, model size, search statistics
(instances, states visited vs. minimum, time), schedule quality and
utilisation analysis — into one printable document.  The CLI's
``report`` command and several examples use it.
"""

from __future__ import annotations

from repro.analysis.gantt import render_gantt
from repro.analysis.utilization import (
    liu_layland_bound,
    total_utilization,
)
from repro.blocks.composer import ComposedModel
from repro.scheduler.result import SchedulerResult
from repro.scheduler.schedule import TaskLevelSchedule
from repro.spec.timing import check_harmonic


def spec_report(model: ComposedModel) -> str:
    """Specification and model-size summary."""
    spec = model.spec
    stats = model.net.stats()
    lines = [
        f"specification    : {spec.name}",
        f"tasks            : {len(spec.tasks)} "
        f"({sum(t.is_preemptive for t in spec.tasks)} preemptive)",
        f"relations        : {len(spec.precedence_pairs())} precedence, "
        f"{len(spec.exclusion_pairs())} exclusion, "
        f"{len(spec.messages)} message(s)",
        f"schedule period  : {model.schedule_period}"
        f"{' (harmonic)' if check_harmonic([t.period for t in spec.tasks]) else ''}",
        f"task instances   : {model.total_instances}",
        f"utilisation      : {total_utilization(spec):.3f} "
        f"(RM bound {liu_layland_bound(len(spec.tasks)):.3f})",
        f"TPN model        : {stats['places']} places, "
        f"{stats['transitions']} transitions, {stats['arcs']} arcs",
        f"block style      : {model.options.style.value}, "
        f"priorities {model.options.priority_policy}",
    ]
    return "\n".join(lines)


def search_report(result: SchedulerResult) -> str:
    """Search outcome in the paper's Section-5 format."""
    return result.summary()


def schedule_report(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    gantt: bool = False,
    gantt_window: int | None = None,
) -> str:
    """Schedule quality: makespan, load, responses, optional Gantt."""
    busy = schedule.busy_time()
    lines = [
        f"table entries    : {len(schedule.items)}",
        f"makespan         : {schedule.makespan}",
        f"processor busy   : {busy} "
        f"({100.0 * busy / model.schedule_period:.1f}% of PS)",
    ]
    responses = schedule.response_times(model)
    worst = ", ".join(
        f"{task}={value}" for task, value in sorted(responses.items())
    )
    lines.append(f"worst responses  : {worst}")
    if gantt:
        window = gantt_window or min(model.schedule_period, 720)
        lines.append("")
        lines.append(
            render_gantt(model, schedule.segments, 0, window)
        )
    return "\n".join(lines)


def full_report(
    model: ComposedModel,
    result: SchedulerResult,
    schedule: TaskLevelSchedule | None = None,
    gantt: bool = False,
) -> str:
    """The complete pipeline report."""
    sections = [
        "== specification ==",
        spec_report(model),
        "",
        "== pre-runtime search ==",
        search_report(result),
    ]
    if schedule is not None:
        sections.extend(
            [
                "",
                "== synthesised schedule ==",
                schedule_report(model, schedule, gantt=gantt),
            ]
        )
    return "\n".join(sections)
