"""Textual reporting of the whole pipeline outcome.

``full_report`` assembles what the paper's Section 5 narrates for the
mine pump — specification summary, model size, search statistics
(instances, states visited vs. minimum, time), schedule quality and
utilisation analysis — into one printable document.  The CLI's
``report`` command and several examples use it.
"""

from __future__ import annotations

from repro.analysis.gantt import render_gantt
from repro.analysis.utilization import (
    liu_layland_bound,
    total_utilization,
)
from repro.blocks.composer import ComposedModel
from repro.scheduler.result import SchedulerResult
from repro.scheduler.schedule import (
    TaskLevelSchedule,
    dense_schedule_entries,
    format_dense_schedule,
)
from repro.spec.timing import check_harmonic
from repro.tpn.interval import INF


def spec_report(model: ComposedModel) -> str:
    """Specification and model-size summary."""
    spec = model.spec
    stats = model.net.stats()
    lines = [
        f"specification    : {spec.name}",
        f"tasks            : {len(spec.tasks)} "
        f"({sum(t.is_preemptive for t in spec.tasks)} preemptive)",
        f"relations        : {len(spec.precedence_pairs())} precedence, "
        f"{len(spec.exclusion_pairs())} exclusion, "
        f"{len(spec.messages)} message(s)",
        f"schedule period  : {model.schedule_period}"
        f"{' (harmonic)' if check_harmonic([t.period for t in spec.tasks]) else ''}",
        f"task instances   : {model.total_instances}",
        f"utilisation      : {total_utilization(spec):.3f} "
        f"(RM bound {liu_layland_bound(len(spec.tasks)):.3f})",
        f"TPN model        : {stats['places']} places, "
        f"{stats['transitions']} transitions, {stats['arcs']} arcs",
        f"block style      : {model.options.style.value}, "
        f"priorities {model.options.priority_policy}",
    ]
    return "\n".join(lines)


def search_report(result: SchedulerResult) -> str:
    """Search outcome in the paper's Section-5 format."""
    return result.summary()


def schedule_report(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    gantt: bool = False,
    gantt_window: int | None = None,
) -> str:
    """Schedule quality: makespan, load, responses, optional Gantt."""
    busy = schedule.busy_time()
    lines = [
        f"table entries    : {len(schedule.items)}",
        f"makespan         : {schedule.makespan}",
        f"processor busy   : {busy} "
        f"({100.0 * busy / model.schedule_period:.1f}% of PS)",
    ]
    responses = schedule.response_times(model)
    worst = ", ".join(
        f"{task}={value}" for task, value in sorted(responses.items())
    )
    lines.append(f"worst responses  : {worst}")
    if gantt:
        window = gantt_window or min(model.schedule_period, 720)
        lines.append("")
        lines.append(
            render_gantt(model, schedule.segments, 0, window)
        )
    return "\n".join(lines)


def interval_slack_report(
    result: SchedulerResult, limit: int | None = None
) -> str:
    """Dense-window table with per-firing slack (stateclass engine).

    For every firing of a state-class result the table shows the
    concrete integer firing time, the absolute dense window
    ``[earliest, latest]`` it was picked from and the firing's
    **slack** — ``latest − earliest``, the scheduling freedom the
    dense run leaves at that step (``inf`` when nothing ever forces
    it).  A rigid firing (slack 0) is pinned by the model; positive
    slack marks where a deployment could still shift work (jitter
    absorption, energy idling) without breaking any constraint.  The
    summary line totals the finite slack so schedules can be compared
    by how much freedom they retain.  Rendered by ``ezrt schedule
    --engine stateclass --profile``.
    """
    entries = dense_schedule_entries(result)
    lines = [format_dense_schedule(entries, limit=limit, slack=True)]
    finite = [
        int(e.latest) - e.earliest for e in entries if e.latest != INF
    ]
    unbounded = len(entries) - len(finite)
    total = (
        f"total slack      : {sum(finite)} time unit(s) over "
        f"{len(entries)} firing(s)"
    )
    if unbounded:
        total += f", {unbounded} unbounded"
    lines.append(total)
    return "\n".join(lines)


def campaign_report(rows: list[dict], stats: dict) -> str:
    """Aggregate report of a batch synthesis campaign.

    Works on the engine's plain JSONL rows and stats dict (not the
    batch dataclasses, so :mod:`repro.analysis` stays import-free of
    :mod:`repro.batch`): status totals, a feasibility-rate matrix over
    the swept ``(n_tasks, utilization)`` grid for rows that carry
    campaign metadata, throughput and cache accounting.
    """
    lines = [
        f"jobs             : {stats.get('total', len(rows))} "
        f"({stats.get('workers', 1)} worker(s))"
        + (
            f" x {stats['intra_parallel']} intra-job worker(s), "
            "clamped to the cores budget"
            if stats.get("parallel_clamped")
            else ""
        ),
        f"outcomes         : {stats.get('feasible', 0)} feasible, "
        f"{stats.get('infeasible', 0)} infeasible, "
        f"{stats.get('timeout', 0)} timeout, "
        f"{stats.get('error', 0)} error",
        f"wall time        : {stats.get('wall_seconds', 0.0):.2f} s "
        f"({stats.get('jobs_per_second', 0.0):.1f} jobs/s, "
        f"overlap {stats.get('speedup', 0.0):.1f}x)",
    ]
    looked_up = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
    if looked_up:
        lines.append(
            f"result cache     : {stats.get('cache_hits', 0)} hit(s), "
            f"{stats.get('cache_misses', 0)} miss(es) "
            f"({100.0 * stats.get('hit_rate', 0.0):.0f}% hit rate)"
            + (
                f", {stats['cache_bytes']:,} byte(s) served"
                if stats.get("cache_bytes")
                else ""
            )
        )
    if stats.get("deduplicated"):
        lines.append(
            f"deduplicated     : {stats['deduplicated']} repeated "
            "job(s) within the batch"
        )
    if stats.get("prelint_rejected"):
        lines.append(
            f"lint-rejected    : {stats['prelint_rejected']} "
            "trivially-infeasible job(s) diagnosed without a search"
        )
    # feasibility matrix over the swept grid
    cells: dict[tuple[int, float], list[bool]] = {}
    for row in rows:
        meta = row.get("meta") or {}
        if "n_tasks" not in meta or "utilization" not in meta:
            continue
        key = (meta["n_tasks"], meta["utilization"])
        cells.setdefault(key, []).append(
            row.get("status") == "feasible"
        )
    if cells:
        utilizations = sorted({u for _n, u in cells})
        labels = [f"U={u:g}" for u in utilizations]
        width = max(5, *(len(label) for label in labels))
        lines.append("")
        lines.append(
            "feasible/point   : "
            + "  ".join(label.ljust(width) for label in labels)
        )
        for n in sorted({n for n, _u in cells}):
            entries = []
            for u in utilizations:
                verdicts = cells.get((n, u))
                if verdicts is None:
                    entries.append("-".ljust(width))
                else:
                    entries.append(
                        f"{sum(verdicts)}/{len(verdicts)}".ljust(width)
                    )
            lines.append(f"  n={n:<4}         : " + "  ".join(entries))
    return "\n".join(lines)


def full_report(
    model: ComposedModel,
    result: SchedulerResult,
    schedule: TaskLevelSchedule | None = None,
    gantt: bool = False,
) -> str:
    """The complete pipeline report."""
    sections = [
        "== specification ==",
        spec_report(model),
        "",
        "== pre-runtime search ==",
        search_report(result),
    ]
    if schedule is not None:
        sections.extend(
            [
                "",
                "== synthesised schedule ==",
                schedule_report(model, schedule, gantt=gantt),
            ]
        )
    return "\n".join(sections)
