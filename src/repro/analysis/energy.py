"""Energy accounting over synthesised schedules.

The Fig. 5 metamodel carries an ``energy`` annotation per task (the
DSL's ``<power>`` element), which the paper stores but never evaluates.
This module gives it the obvious semantics — the task draws ``energy``
power units while executing — and accounts a schedule's consumption:

* per-task and total energy over one schedule period;
* average power (energy / PS) and peak power (the maximum over the
  timeline, which for a mono-processor is just the largest per-task
  power that actually runs);
* an idle-power term for the gaps, so duty-cycling effects of
  different schedules are visible.

This is deliberately simple bookkeeping (no DVFS); it exists so that
specifications using the metamodel's energy field get something
measurable out of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.composer import ComposedModel
from repro.scheduler.schedule import TaskLevelSchedule


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one schedule period."""

    per_task: dict[str, int]
    busy_energy: int
    idle_energy: int
    schedule_period: int

    @property
    def total(self) -> int:
        return self.busy_energy + self.idle_energy

    @property
    def average_power(self) -> float:
        """Mean power over the schedule period."""
        if self.schedule_period == 0:
            return 0.0
        return self.total / self.schedule_period

    def __str__(self) -> str:
        rows = ", ".join(
            f"{task}={energy}"
            for task, energy in sorted(self.per_task.items())
        )
        return (
            f"energy over PS={self.schedule_period}: total {self.total} "
            f"(busy {self.busy_energy}, idle {self.idle_energy}); "
            f"avg power {self.average_power:.3f}; per task: {rows}"
        )


def energy_report(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    idle_power: int = 0,
) -> EnergyReport:
    """Account the energy a schedule draws over one schedule period.

    Each executed time unit of task ``t`` costs ``t.energy`` units;
    idle time costs ``idle_power`` per unit.
    """
    power = {t.name: t.energy for t in model.spec.tasks}
    per_task: dict[str, int] = {name: 0 for name in power}
    for segment in schedule.segments:
        per_task[segment.task] += power[segment.task] * (
            segment.duration
        )
    busy_energy = sum(per_task.values())
    idle_units = max(0, model.schedule_period - schedule.busy_time())
    return EnergyReport(
        per_task=per_task,
        busy_energy=busy_energy,
        idle_energy=idle_units * idle_power,
        schedule_period=model.schedule_period,
    )


def max_tolerable_overhead(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    limit: int = 64,
) -> int:
    """Largest per-dispatch overhead the schedule absorbs untouched.

    The ``dispOveh`` flag of the metamodel flags dispatcher-overhead
    awareness; this helper quantifies it for a concrete table by
    executing it on the dispatcher machine with increasing overhead
    until the trace verifier reports a violation.  Returns the largest
    overhead with a clean trace (0 when even overhead 1 breaks it).
    """
    from repro.sim.machine import run_schedule
    from repro.sim.verifier import verify_trace

    tolerated = 0
    for overhead in range(1, limit + 1):
        result = run_schedule(
            model, schedule, dispatch_overhead=overhead
        )
        if result.errors or verify_trace(model, result):
            break
        tolerated = overhead
    return tolerated
