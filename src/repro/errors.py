"""Exception hierarchy for the ezRealtime reproduction.

Every error raised by this package derives from :class:`EzRealtimeError`,
so callers can catch a single base class at tool boundaries (the CLI does
exactly that).  Sub-hierarchies mirror the pipeline stages: specification
validation, net construction, scheduling, code generation and simulation.
"""

from __future__ import annotations


class EzRealtimeError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecificationError(EzRealtimeError):
    """An EHRT specification is malformed or violates a model constraint.

    Examples: a task whose computation time exceeds its deadline, a
    dangling precedence reference, or a duplicate identifier.
    """


class DSLError(SpecificationError):
    """The ez-spec XML document could not be parsed or serialised."""


class NetConstructionError(EzRealtimeError):
    """A time Petri net is structurally invalid.

    Raised when an arc references a missing node, a weight is not a
    positive integer, a timing interval is inverted, or two nodes share a
    name.
    """


class PNMLError(EzRealtimeError):
    """A PNML document could not be read or written."""


class SchedulingError(EzRealtimeError):
    """The pre-runtime scheduler failed in an unexpected way.

    Note that *infeasibility* is not an error: an exhausted search returns
    a :class:`repro.scheduler.result.SchedulerResult` with
    ``feasible=False``.  This exception signals misuse (e.g. scheduling a
    net without a final marking) or internal inconsistencies.
    """


class InfeasibleScheduleError(SchedulingError):
    """Raised by convenience wrappers that promise a feasible schedule."""


class CodeGenError(EzRealtimeError):
    """Scheduled code generation failed (unknown target, empty table...)."""


class SimulationError(EzRealtimeError):
    """The dispatcher simulator detected an inconsistent configuration."""


class TraceVerificationError(SimulationError):
    """An execution trace violates a timing or resource constraint.

    Carries the list of violations so callers can report all of them at
    once instead of stopping at the first.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        extra = len(self.violations) - 5
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"trace verification failed: {summary}")
