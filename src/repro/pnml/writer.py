"""Time Petri net → PNML serialisation.

Produces a standard-conforming PNML document: any PNML tool can read
the untimed structure; ezRealtime-aware tools (and this package's
reader) recover the full extended time Petri net — intervals,
priorities, roles, task bindings, behavioural code and the desired
final marking — from the ``<toolspecific>`` sections.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.pnml.schema import PNML_NS, PTNET_TYPE, TOOL_NAME, TOOL_VERSION
from repro.tpn.interval import INF
from repro.tpn.net import TimePetriNet


def _toolspecific(parent: ET.Element) -> ET.Element:
    element = ET.SubElement(parent, "toolspecific")
    element.set("tool", TOOL_NAME)
    element.set("version", TOOL_VERSION)
    return element


def _name(parent: ET.Element, text: str) -> None:
    name = ET.SubElement(parent, "name")
    ET.SubElement(name, "text").text = text


def dumps(net: TimePetriNet, pretty: bool = True) -> str:
    """Serialise a net to a PNML document string."""
    ET.register_namespace("", PNML_NS)
    root = ET.Element(f"{{{PNML_NS}}}pnml")
    net_el = ET.SubElement(root, "net")
    net_el.set("id", net.name or "net0")
    net_el.set("type", PTNET_TYPE)
    _name(net_el, net.name)

    if net.final_marking:
        tool = _toolspecific(net_el)
        for place, tokens in net.final_marking.items():
            fm = ET.SubElement(tool, "finalMarking")
            fm.set("idref", place)
            fm.set("tokens", str(tokens))

    page = ET.SubElement(net_el, "page")
    page.set("id", "page0")

    for place in net.places:
        el = ET.SubElement(page, "place")
        el.set("id", place.name)
        _name(el, place.label)
        if place.marking:
            marking = ET.SubElement(el, "initialMarking")
            ET.SubElement(marking, "text").text = str(place.marking)
        if place.role or place.task:
            tool = _toolspecific(el)
            if place.role:
                ET.SubElement(tool, "role").text = place.role
            if place.task:
                ET.SubElement(tool, "task").text = place.task

    for transition in net.transitions:
        el = ET.SubElement(page, "transition")
        el.set("id", transition.name)
        _name(el, transition.label)
        tool = _toolspecific(el)
        interval = ET.SubElement(tool, "interval")
        interval.set("eft", str(transition.interval.eft))
        interval.set(
            "lft",
            "inf"
            if transition.interval.lft == INF
            else str(int(transition.interval.lft)),
        )
        if transition.priority:
            ET.SubElement(tool, "priority").text = str(
                transition.priority
            )
        if transition.role:
            ET.SubElement(tool, "role").text = transition.role
        if transition.task:
            ET.SubElement(tool, "task").text = transition.task
        if transition.code is not None:
            ET.SubElement(tool, "code").text = transition.code

    counter = 0
    for arc in net.arcs():
        el = ET.SubElement(page, "arc")
        el.set("id", f"arc{counter}")
        el.set("source", arc.source)
        el.set("target", arc.target)
        if arc.weight != 1:
            inscription = ET.SubElement(el, "inscription")
            ET.SubElement(inscription, "text").text = str(arc.weight)
        counter += 1

    raw = ET.tostring(root, encoding="unicode")
    document = '<?xml version="1.0" encoding="UTF-8"?>\n' + raw
    if pretty:
        parsed = minidom.parseString(document)
        document = "\n".join(
            line
            for line in parsed.toprettyxml(indent="  ").splitlines()
            if line.strip()
        )
    return document


def save(net: TimePetriNet, path: str, pretty: bool = True) -> None:
    """Write a net to a ``.pnml`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(net, pretty=pretty))
