"""PNML (ISO/IEC 15909-2) interchange for time Petri nets."""

from repro.pnml.reader import load, loads
from repro.pnml.schema import PNML_NS, PTNET_TYPE, TOOL_NAME, TOOL_VERSION
from repro.pnml.writer import dumps, save

__all__ = [
    "PNML_NS",
    "PTNET_TYPE",
    "TOOL_NAME",
    "TOOL_VERSION",
    "dumps",
    "load",
    "loads",
    "save",
]
