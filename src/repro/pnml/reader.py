"""PNML → time Petri net parsing.

Reads documents written by :mod:`repro.pnml.writer` and, degrading
gracefully, plain place/transition PNML from other tools (transitions
then get the default ``[0, inf]`` interval so the untimed language is
preserved).  Round-trip with the writer is lossless and property-tested
in the suite.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import PNMLError
from repro.pnml.schema import TOOL_NAME
from repro.tpn.interval import INF, TimeInterval
from repro.tpn.net import TimePetriNet


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _find_children(element: ET.Element, tag: str) -> list[ET.Element]:
    return [child for child in element if _local(child.tag) == tag]


def _find_child(element: ET.Element, tag: str) -> ET.Element | None:
    children = _find_children(element, tag)
    return children[0] if children else None


def _text_of(element: ET.Element | None) -> str:
    if element is None:
        return ""
    text_el = _find_child(element, "text")
    if text_el is not None:
        return (text_el.text or "").strip()
    return (element.text or "").strip()


def _tool_section(element: ET.Element) -> ET.Element | None:
    for child in _find_children(element, "toolspecific"):
        if child.get("tool") == TOOL_NAME:
            return child
    return None


def loads(document: str) -> TimePetriNet:
    """Parse a PNML document into a time Petri net."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise PNMLError(f"malformed PNML: {exc}") from exc
    if _local(root.tag) != "pnml":
        raise PNMLError(
            f"expected <pnml> root, got <{_local(root.tag)}>"
        )
    net_el = _find_child(root, "net")
    if net_el is None:
        raise PNMLError("document contains no <net>")
    name = _text_of(_find_child(net_el, "name")) or net_el.get(
        "id", "net"
    )
    net = TimePetriNet(name)

    # nodes may live directly under <net> or inside <page> elements
    containers = [net_el] + _find_children(net_el, "page")
    arcs: list[ET.Element] = []
    for container in containers:
        for element in container:
            kind = _local(element.tag)
            if kind == "place":
                _parse_place(net, element)
            elif kind == "transition":
                _parse_transition(net, element)
            elif kind == "arc":
                arcs.append(element)
    for element in arcs:
        _parse_arc(net, element)

    tool = _tool_section(net_el)
    if tool is not None:
        final: dict[str, int] = {}
        for fm in _find_children(tool, "finalMarking"):
            place = fm.get("idref")
            if place is None or not net.has_place(place):
                raise PNMLError(
                    f"final marking references unknown place {place!r}"
                )
            final[place] = int(fm.get("tokens", "0"))
        if final:
            net.set_final_marking(final)
    return net


def _parse_place(net: TimePetriNet, element: ET.Element) -> None:
    identifier = element.get("id")
    if not identifier:
        raise PNMLError("place without id")
    label = _text_of(_find_child(element, "name")) or identifier
    marking_text = _text_of(_find_child(element, "initialMarking"))
    marking = int(marking_text) if marking_text else 0
    role = None
    task = None
    tool = _tool_section(element)
    if tool is not None:
        role = _text_of(_find_child(tool, "role")) or None
        task = _text_of(_find_child(tool, "task")) or None
    net.add_place(
        identifier, marking=marking, label=label, role=role, task=task
    )


def _parse_transition(net: TimePetriNet, element: ET.Element) -> None:
    identifier = element.get("id")
    if not identifier:
        raise PNMLError("transition without id")
    label = _text_of(_find_child(element, "name")) or identifier
    interval = TimeInterval.unbounded(0)
    priority = 0
    role = None
    task = None
    code = None
    tool = _tool_section(element)
    if tool is not None:
        interval_el = _find_child(tool, "interval")
        if interval_el is not None:
            eft = int(interval_el.get("eft", "0"))
            lft_raw = interval_el.get("lft", "inf")
            lft = INF if lft_raw == "inf" else int(lft_raw)
            interval = TimeInterval(eft, lft)
        priority_text = _text_of(_find_child(tool, "priority"))
        if priority_text:
            priority = int(priority_text)
        role = _text_of(_find_child(tool, "role")) or None
        task = _text_of(_find_child(tool, "task")) or None
        code_el = _find_child(tool, "code")
        if code_el is not None and code_el.text is not None:
            code = code_el.text
    net.add_transition(
        identifier,
        interval=interval,
        priority=priority,
        code=code,
        label=label,
        role=role,
        task=task,
    )


def _parse_arc(net: TimePetriNet, element: ET.Element) -> None:
    source = element.get("source")
    target = element.get("target")
    if not source or not target:
        raise PNMLError("arc without source/target")
    weight_text = _text_of(_find_child(element, "inscription"))
    weight = int(weight_text) if weight_text else 1
    net.add_arc(source, target, weight)


def load(path: str) -> TimePetriNet:
    """Read a ``.pnml`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
