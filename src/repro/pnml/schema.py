"""PNML vocabulary shared by the reader and writer.

ezRealtime "uses the International Standard ISO/IEC 15909-2 which
defines a universal XML-based transfer syntax for Petri nets, namely
PNML".  The structural part (places, transitions, arcs, markings,
inscriptions) follows the standard place/transition-net grammar; the
timed/extended attributes — static intervals, priorities, code
assignments, roles, the desired final marking — ride in
``<toolspecific>`` sections under the tool name ``ezrealtime``, which
is the standard's extension mechanism for non-structural information.
"""

from __future__ import annotations

#: PNML namespace (2009 grammar, the one the standard settled on).
PNML_NS = "http://www.pnml.org/version-2009/grammar/pnml"

#: Net type URI for place/transition nets.
PTNET_TYPE = "http://www.pnml.org/version-2009/grammar/ptnet"

#: Tool name/version used in <toolspecific> sections.
TOOL_NAME = "ezrealtime"
TOOL_VERSION = "1.0"


def q(tag: str) -> str:
    """Qualify a tag with the PNML namespace."""
    return f"{{{PNML_NS}}}{tag}"
