"""Command-line interface: the tool pipeline of Fig. 6 in one binary.

Subcommands mirror the stages of the ezRealtime architecture:

* ``ezrt validate spec.xml`` — parse and validate an ez-spec document;
* ``ezrt compile spec.xml -o model.pnml`` — translate the spec to its
  time Petri net and export PNML;
* ``ezrt schedule spec.xml`` — synthesise a pre-runtime schedule and
  print the Section-5 style report; ``--parallel N`` races search
  policies (or partitions the space, ``--parallel-mode worksteal``)
  across worker processes, ``--policy``/``--engine``/``--profile``
  control and expose the serial search;
* ``ezrt codegen spec.xml -o out/ --target hostsim`` — full synthesis:
  schedule + generated C project;
* ``ezrt simulate spec.xml`` — execute the synthesised table on the
  dispatcher machine and verify the trace;
* ``ezrt batch spec1.xml @fig3 ...`` — synthesise many specs
  concurrently over a process pool, with result caching, JSONL output
  and campaign grids (``--n-tasks/--utilizations/--seeds``);
* ``ezrt serve --port 8787`` — run the synthesis service: a JSON API
  over the batch engine with SSE progress streams and content-addressed
  results (see ``docs/service.md``);
* ``ezrt lint spec.xml @fig3 ...`` — diagnose specifications before
  searching: necessary-condition infeasibility, structural net
  problems and engine/option incompatibilities, with stable
  diagnostic codes (see ``docs/linting.md``);
* ``ezrt examples`` — list the built-in case studies (usable wherever
  a spec file is expected, via ``@name``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from dataclasses import replace

from repro.errors import EzRealtimeError
from repro.analysis import (
    campaign_report,
    full_report,
    interval_slack_report,
)
from repro.batch import BatchEngine, CampaignGrid, ResultCache
from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.codegen import TARGETS, generate_project
from repro.obs import NULL_RECORDER, JsonlSink, Recorder
from repro.obs.trace import write_chrome_trace
from repro.pnml import save as pnml_save
from repro.scheduler import (
    ENGINES,
    SchedulerConfig,
    find_schedule,
    schedule_from_result,
)
from repro.sim import run_schedule, verify_trace
from repro.spec import load as dsl_load
from repro.spec import paper_examples, save as dsl_save
from repro.spec.validation import validate_spec


def _load_spec(ref: str):
    """Load a spec from a file path or a built-in ``@name``."""
    if ref.startswith("@"):
        examples = paper_examples()
        name = ref[1:]
        if name not in examples:
            raise EzRealtimeError(
                f"unknown built-in spec {name!r}; available: "
                f"{sorted(examples)}"
            )
        return examples[name]
    return dsl_load(ref)


def _composer_options(args) -> ComposerOptions:
    return ComposerOptions(
        style=BlockStyle(args.style),
        priority_policy=args.priorities,
    )


def _scheduler_config(args) -> SchedulerConfig:
    portfolio = tuple(
        entry.strip()
        for entry in (args.portfolio or "").split(",")
        if entry.strip()
    )
    return SchedulerConfig(
        priority_mode=args.priority_mode,
        delay_mode=args.delay_mode,
        partial_order=not args.no_partial_order,
        engine=args.engine,
        max_states=args.max_states,
        policy=args.policy,
        policy_seed=args.policy_seed,
        parallel=args.parallel,
        parallel_mode=args.parallel_mode,
        portfolio=portfolio,
        trace_jsonl=getattr(args, "_trace_jsonl", None),
        progress=getattr(args, "progress", False),
    )


def _start_trace(args):
    """Arrange span recording for ``--trace``; returns a finalizer.

    Spans are recorded into a temporary JSONL sidecar (its O_APPEND
    writes are process-safe, so pool and portfolio workers all share
    it) and folded into the Chrome trace-event file once the command
    is done.  Without ``--trace`` the finalizer is a no-op and the
    config carries no sink, so nothing is recorded.
    """
    if not getattr(args, "trace", None):
        args._trace_jsonl = None
        return lambda: None
    fd, jsonl_path = tempfile.mkstemp(
        prefix="ezrt-trace-", suffix=".jsonl"
    )
    os.close(fd)
    args._trace_jsonl = jsonl_path

    def finalize() -> None:
        try:
            write_chrome_trace(jsonl_path, args.trace)
        finally:
            try:
                os.unlink(jsonl_path)
            except OSError:
                pass
        print(
            f"wrote Chrome trace to {args.trace} "
            "(open in Perfetto or chrome://tracing)"
        )

    return finalize


def _compose_traced(spec, args, config):
    """Compose (and compile) under a ``compile`` span when tracing."""
    obs = NULL_RECORDER
    if config.trace_jsonl:
        obs = Recorder(JsonlSink(config.trace_jsonl), track="cli")
    with obs.span("compile", cat="compile", spec=spec.name):
        model = compose(spec, _composer_options(args))
        model.compiled()
    return model


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--style",
        choices=[s.value for s in BlockStyle],
        default="compact",
        help="block library flavour (default: compact)",
    )
    parser.add_argument(
        "--priorities",
        choices=("dm", "rm", "lex", "none"),
        default="dm",
        help="priority policy for decision transitions (default: dm)",
    )


def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="incremental",
        help=(
            "successor engine: the O(degree) incremental hot path "
            "(default), the packed-buffer kernel (flat state buffers "
            "with an optional compiled C inner loop and a pure-Python "
            "fallback), the checked reference semantics, or the "
            "dense-time state-class engine (searches Berthomieu-Diaz "
            "classes and concretises the schedule back to integer "
            "time)"
        ),
    )
    parser.add_argument(
        "--priority-mode",
        choices=("ordered", "strict"),
        default="ordered",
        help="candidate priority handling (default: ordered)",
    )
    parser.add_argument(
        "--delay-mode",
        choices=("earliest", "extremes", "full"),
        default="earliest",
        help="firing delays explored (default: earliest)",
    )
    parser.add_argument(
        "--no-partial-order",
        action="store_true",
        help="disable the partial-order state-space reduction",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=2_000_000,
        help="state budget for the search",
    )
    parser.add_argument(
        "--policy",
        choices=("earliest", "latest", "min-laxity", "random"),
        default="earliest",
        help=(
            "candidate ordering of a serial search (default: "
            "earliest, the work-conserving order); orderings change "
            "search speed, never the verdict"
        ),
    )
    parser.add_argument(
        "--policy-seed",
        type=int,
        default=0,
        help="shuffle seed for --policy random (default: 0)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help=(
            "search one model with N worker processes (0/1 = serial); "
            "the mode is picked by --parallel-mode"
        ),
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("portfolio", "worksteal"),
        default="portfolio",
        help=(
            "portfolio races policies, first definitive verdict wins; "
            "worksteal partitions the root frontier into subtree jobs "
            "with a shared visited filter (default: portfolio)"
        ),
    )
    parser.add_argument(
        "--portfolio",
        default=None,
        metavar="S1,S2,...",
        help=(
            "comma-separated slots to race, each [engine:]policy"
            "[:seed] (e.g. earliest,random:1,stateclass:earliest); "
            "an engine prefix races successor engines as well as "
            "orderings, unprefixed slots inherit --engine; default: "
            "a built-in rotation sized to --parallel"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help=(
            "record compile/search/cache spans and write a Chrome "
            "trace-event file (open in Perfetto or chrome://tracing); "
            "portfolio and pool workers get one track each"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream progress lines to stderr while searching "
            "(states visited/generated, frontier depth, rate)"
        ),
    )


def _cmd_validate(args) -> int:
    spec = _load_spec(args.spec)
    problems = validate_spec(spec)
    if problems:
        print(f"specification {spec.name!r} is INVALID:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"specification {spec.name!r} is valid: {len(spec.tasks)} "
        f"task(s), {len(spec.messages)} message(s)"
    )
    return 0


def _cmd_compile(args) -> int:
    spec = _load_spec(args.spec)
    model = compose(spec, _composer_options(args))
    pnml_save(model.net, args.output)
    stats = model.net.stats()
    print(
        f"wrote {args.output}: {stats['places']} places, "
        f"{stats['transitions']} transitions, {stats['arcs']} arcs "
        f"(PS={model.schedule_period}, "
        f"{model.total_instances} instances)"
    )
    return 0


def _cmd_schedule(args) -> int:
    spec = _load_spec(args.spec)
    finalize_trace = _start_trace(args)
    try:
        config = _scheduler_config(args)
        model = _compose_traced(spec, args, config)
        result = find_schedule(model, config)
        if not result.feasible:
            print(full_report(model, result))
            if args.profile:
                print(
                    "\nsearch profile:\n"
                    + result.stats.profile(result.metrics)
                )
            return 1
        schedule = schedule_from_result(model, result)
        print(full_report(model, result, schedule, gantt=args.gantt))
        if args.profile:
            print(
                "\nsearch profile:\n"
                + result.stats.profile(result.metrics)
            )
            if result.interval_schedule is not None:
                # per-firing dense window + slack column, with the
                # total-slack summary line (scheduling freedom left)
                print(
                    "\ndense firing windows (stateclass engine):\n"
                    + interval_slack_report(result, limit=40)
                )
        return 0
    finally:
        finalize_trace()


def _cmd_codegen(args) -> int:
    spec = _load_spec(args.spec)
    finalize_trace = _start_trace(args)
    try:
        config = _scheduler_config(args)
        model = _compose_traced(spec, args, config)
        result = find_schedule(model, config)
        if not result.feasible:
            print("no feasible schedule; cannot generate code")
            return 1
        schedule = schedule_from_result(model, result)
        project = generate_project(model, schedule, args.target)
        paths = project.write(args.output)
        print(f"generated {len(paths)} file(s) in {args.output}:")
        for path in paths:
            print(f"  {path}")
        return 0
    finally:
        finalize_trace()


def _cmd_simulate(args) -> int:
    spec = _load_spec(args.spec)
    finalize_trace = _start_trace(args)
    try:
        config = _scheduler_config(args)
        model = _compose_traced(spec, args, config)
        result = find_schedule(model, config)
        if not result.feasible:
            print("no feasible schedule; nothing to simulate")
            return 1
        schedule = schedule_from_result(model, result)
        machine_result = run_schedule(
            model, schedule, dispatch_overhead=args.overhead
        )
        violations = verify_trace(model, machine_result)
        print(machine_result.trace.summary())
        if violations:
            print("trace verification FAILED:")
            for violation in violations[:20]:
                print(f"  - {violation}")
            return 1
        print(
            f"trace verified: {len(machine_result.completions)} "
            "instance completions, all constraints met"
        )
        return 0
    finally:
        finalize_trace()


def _parse_int_list(text: str) -> tuple[int, ...]:
    """``"2,4,8"`` or range ``"0-5"`` → tuple of ints."""
    values: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        first, dash, last = part.partition("-")
        try:
            if dash and first.isdigit() and last.isdigit():
                if int(first) > int(last):
                    raise EzRealtimeError(
                        f"descending range {part!r}; write "
                        f"{last}-{first}"
                    )
                values.extend(range(int(first), int(last) + 1))
            else:
                values.append(int(part))
        except ValueError:
            raise EzRealtimeError(
                f"expected an integer or A-B range, got {part!r}"
            ) from None
    if not values:
        raise EzRealtimeError(f"empty integer list {text!r}")
    return tuple(values)


def _parse_float_list(text: str) -> tuple[float, ...]:
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            values.append(float(part))
        except ValueError:
            raise EzRealtimeError(
                f"expected a number, got {part!r}"
            ) from None
    if not values:
        raise EzRealtimeError(f"empty float list {text!r}")
    return tuple(values)


def _cmd_batch(args) -> int:
    # a memory-only cache cannot hit within one CLI invocation (and
    # in-batch duplicates are deduplicated anyway), so only build one
    # when there is a directory to persist it in
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    finalize_trace = _start_trace(args)
    try:
        return _run_batch(args, cache)
    finally:
        finalize_trace()


def _run_batch(args, cache) -> int:
    # batch progress is job-completion driven; per-job search
    # heartbeats would interleave on stderr, so strip the flag from
    # the scheduler config the jobs inherit
    engine = BatchEngine(
        composer_options=_composer_options(args),
        scheduler_config=replace(
            _scheduler_config(args), progress=False
        ),
        max_workers=args.jobs,
        job_timeout=args.timeout,
        cache=cache,
        codegen_target=args.target,
        simulate=args.simulate,
        cores=args.cores,
        hardest_first=not args.no_hardest_first,
        progress=args.progress,
    )
    jobs = [
        engine.make_job(_load_spec(ref), meta={"source": ref})
        for ref in args.specs
    ]
    if args.n_tasks or args.utilizations:
        if not (args.n_tasks and args.utilizations):
            raise EzRealtimeError(
                "campaign grids need both --n-tasks and --utilizations"
            )
        grid = CampaignGrid(
            n_tasks=_parse_int_list(args.n_tasks),
            utilizations=_parse_float_list(args.utilizations),
            seeds=_parse_int_list(args.seeds),
        )
        jobs.extend(grid.jobs(engine))
    if not jobs:
        raise EzRealtimeError(
            "nothing to do: give spec files/@builtins or a campaign "
            "grid (--n-tasks/--utilizations)"
        )
    result = engine.run(jobs)
    if args.output:
        result.write_jsonl(args.output)
    print(campaign_report(result.rows(), result.stats.as_dict()))
    if args.output:
        print(f"\nwrote {len(result.outcomes)} row(s) to {args.output}")
    if args.verbose:
        print()
        for outcome in result.outcomes:
            line = f"  {outcome.spec_name:<32} {outcome.status}"
            if outcome.error:
                line += f"  ({outcome.error})"
            print(line)
    return 1 if result.stats.error else 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service.app import serve

    def _graceful(signum, frame):
        # SIGTERM behaves like Ctrl-C: drain, reap the worker pool,
        # exit 0 — what a process supervisor (or `kill %1`) expects
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)

    # persistent cache directory when given; a memory cache otherwise —
    # unlike one-shot `ezrt batch`, a server lives long enough for
    # in-memory hits to pay off
    cache = (
        ResultCache(args.cache_dir)
        if args.cache_dir
        else ResultCache()
    )
    engine = BatchEngine(
        max_workers=args.jobs,
        job_timeout=args.timeout,
        cache=cache,
        cores=args.cores,
        store_schedules=True,
    )
    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                engine,
                audit_path=args.audit,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args) -> int:
    # deferred import: the lint package pulls the composer and the
    # utilization analysis in; the other subcommands don't need it
    from repro.lint import has_errors, lint_spec

    failed = False
    payload = []
    for ref in args.specs:
        spec = _load_spec(ref)
        diagnostics = lint_spec(
            spec,
            engine=args.engine,
            delay_mode=args.delay_mode,
            parallel=args.parallel,
            parallel_mode=args.parallel_mode,
        )
        failed = failed or has_errors(diagnostics)
        if args.json:
            payload.append(
                {
                    "spec": spec.name,
                    "source": ref,
                    "diagnostics": [
                        d.to_dict() for d in diagnostics
                    ],
                }
            )
            continue
        if not diagnostics:
            print(f"{ref}: {spec.name!r} is clean")
            continue
        print(f"{ref}: {spec.name!r}")
        for diagnostic in diagnostics:
            print(f"  {diagnostic.format()}")
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    # warnings alone never fail the lint: only error severity does
    return 1 if failed else 0


def _cmd_export(args) -> int:
    spec = _load_spec(args.spec)
    dsl_save(spec, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_examples(_args) -> int:
    print("built-in case studies (use as @name):")
    for name, spec in paper_examples().items():
        print(
            f"  @{name:<10} {len(spec.tasks)} tasks — {spec.name}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ezrt",
        description=(
            "ezRealtime reproduction: embedded hard real-time software "
            "synthesis from time Petri net models (DATE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate an ez-spec document")
    p.add_argument("spec", help="spec file or @builtin")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("compile", help="translate spec to PNML")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="model.pnml")
    _add_model_arguments(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("schedule", help="synthesise a schedule")
    p.add_argument("spec")
    p.add_argument("--gantt", action="store_true")
    p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print search statistics (visited, generated, prunes, "
            "reductions, throughput)"
        ),
    )
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("codegen", help="generate scheduled C code")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="generated")
    p.add_argument(
        "--target",
        default="hostsim",
        choices=sorted(TARGETS),
    )
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_codegen)

    p = sub.add_parser(
        "simulate", help="run the table on the dispatcher machine"
    )
    p.add_argument("spec")
    p.add_argument("--overhead", type=int, default=0)
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "batch",
        help="synthesise many specs concurrently (pool + cache)",
    )
    p.add_argument(
        "specs",
        nargs="*",
        help="spec files or @builtins (may be combined with a grid)",
    )
    p.add_argument(
        "--n-tasks",
        help="campaign grid: task counts, e.g. 2,4,8 or 2-8",
    )
    p.add_argument(
        "--utilizations",
        help="campaign grid: utilisations, e.g. 0.3,0.5,0.7",
    )
    p.add_argument(
        "--seeds",
        default="0",
        help="campaign grid: seeds, e.g. 0,1,2 or 0-9 (default: 0)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count; 1 = in-process)",
    )
    p.add_argument(
        "--cores",
        type=int,
        default=None,
        help=(
            "total core budget shared between the job pool and "
            "intra-job --parallel workers: the pool width shrinks to "
            "cores // parallel so jobs x workers stays within budget"
        ),
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job schedule-search budget in seconds",
    )
    p.add_argument(
        "--no-hardest-first",
        action="store_true",
        help=(
            "dispatch jobs in submission order instead of "
            "hardest-first (by predicted search states); either way "
            "the JSONL rows keep submission order"
        ),
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist the result cache to this directory (re-runs "
            "skip already-solved jobs); caching is off without it"
        ),
    )
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help="write per-job JSONL rows to this file",
    )
    p.add_argument(
        "--target",
        default=None,
        choices=sorted(TARGETS),
        help="also generate code for feasible schedules",
    )
    p.add_argument(
        "--simulate",
        action="store_true",
        help="also simulate feasible schedules on the dispatcher",
    )
    p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print one status line per job",
    )
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="run the synthesis HTTP service (JSON API + SSE)",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port to listen on (0 picks an ephemeral port)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker pool width (default: one per CPU)",
    )
    p.add_argument(
        "--cores",
        type=int,
        default=None,
        help=(
            "total core budget: the worker pool shrinks so jobs x "
            "intra-job workers stays within it"
        ),
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "default per-job schedule-search budget in seconds "
            "(submissions may override per request)"
        ),
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist the result cache to this directory; without it "
            "results are cached in memory for the server's lifetime"
        ),
    )
    p.add_argument(
        "--audit",
        default=None,
        help="append a deterministic JSONL audit log to this file",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "lint",
        help="diagnose specs before searching (necessary conditions)",
        description=(
            "Static analysis of specifications: necessary-condition "
            "infeasibility (processor/bus overutilisation, empty "
            "firing windows, precedence chains that cannot meet "
            "their deadline), structural net problems (dead "
            "transitions, token counts beyond the kernel engine's "
            "capacity) and engine/option incompatibilities.  Exit "
            "code 1 when any error-severity diagnostic fires; "
            "warnings alone exit 0."
        ),
    )
    p.add_argument(
        "specs",
        nargs="+",
        help="spec files or @builtins to diagnose",
    )
    p.add_argument(
        "--engine",
        choices=ENGINES,
        default="incremental",
        help=(
            "engine the spec is destined for (enables engine-"
            "specific rules, e.g. the kernel token-capacity check)"
        ),
    )
    p.add_argument(
        "--delay-mode",
        choices=("earliest", "extremes", "full"),
        default="earliest",
        help="planned delay mode (checked against the engine)",
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="planned worker count (checked against the mode)",
    )
    p.add_argument(
        "--parallel-mode",
        choices=("portfolio", "worksteal"),
        default="portfolio",
        help="planned parallel mode (checked against the engine)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: one object per spec",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("export", help="write a built-in spec as XML")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="spec.xml")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("examples", help="list built-in case studies")
    p.set_defaults(func=_cmd_examples)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EzRealtimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
