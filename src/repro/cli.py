"""Command-line interface: the tool pipeline of Fig. 6 in one binary.

Subcommands mirror the stages of the ezRealtime architecture:

* ``ezrt validate spec.xml`` — parse and validate an ez-spec document;
* ``ezrt compile spec.xml -o model.pnml`` — translate the spec to its
  time Petri net and export PNML;
* ``ezrt schedule spec.xml`` — synthesise a pre-runtime schedule and
  print the Section-5 style report;
* ``ezrt codegen spec.xml -o out/ --target hostsim`` — full synthesis:
  schedule + generated C project;
* ``ezrt simulate spec.xml`` — execute the synthesised table on the
  dispatcher machine and verify the trace;
* ``ezrt examples`` — list the built-in case studies (usable wherever
  a spec file is expected, via ``@name``).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EzRealtimeError
from repro.analysis import full_report
from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.codegen import generate_project
from repro.pnml import save as pnml_save
from repro.scheduler import (
    SchedulerConfig,
    find_schedule,
    schedule_from_result,
)
from repro.sim import run_schedule, verify_trace
from repro.spec import load as dsl_load
from repro.spec import paper_examples, save as dsl_save
from repro.spec.validation import validate_spec


def _load_spec(ref: str):
    """Load a spec from a file path or a built-in ``@name``."""
    if ref.startswith("@"):
        examples = paper_examples()
        name = ref[1:]
        if name not in examples:
            raise EzRealtimeError(
                f"unknown built-in spec {name!r}; available: "
                f"{sorted(examples)}"
            )
        return examples[name]
    return dsl_load(ref)


def _composer_options(args) -> ComposerOptions:
    return ComposerOptions(
        style=BlockStyle(args.style),
        priority_policy=args.priorities,
    )


def _scheduler_config(args) -> SchedulerConfig:
    return SchedulerConfig(
        priority_mode=args.priority_mode,
        delay_mode=args.delay_mode,
        partial_order=not args.no_partial_order,
        max_states=args.max_states,
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--style",
        choices=[s.value for s in BlockStyle],
        default="compact",
        help="block library flavour (default: compact)",
    )
    parser.add_argument(
        "--priorities",
        choices=("dm", "rm", "lex", "none"),
        default="dm",
        help="priority policy for decision transitions (default: dm)",
    )


def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--priority-mode",
        choices=("ordered", "strict"),
        default="ordered",
        help="candidate priority handling (default: ordered)",
    )
    parser.add_argument(
        "--delay-mode",
        choices=("earliest", "extremes", "full"),
        default="earliest",
        help="firing delays explored (default: earliest)",
    )
    parser.add_argument(
        "--no-partial-order",
        action="store_true",
        help="disable the partial-order state-space reduction",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=2_000_000,
        help="state budget for the search",
    )


def _cmd_validate(args) -> int:
    spec = _load_spec(args.spec)
    problems = validate_spec(spec)
    if problems:
        print(f"specification {spec.name!r} is INVALID:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"specification {spec.name!r} is valid: {len(spec.tasks)} "
        f"task(s), {len(spec.messages)} message(s)"
    )
    return 0


def _cmd_compile(args) -> int:
    spec = _load_spec(args.spec)
    model = compose(spec, _composer_options(args))
    pnml_save(model.net, args.output)
    stats = model.net.stats()
    print(
        f"wrote {args.output}: {stats['places']} places, "
        f"{stats['transitions']} transitions, {stats['arcs']} arcs "
        f"(PS={model.schedule_period}, "
        f"{model.total_instances} instances)"
    )
    return 0


def _cmd_schedule(args) -> int:
    spec = _load_spec(args.spec)
    model = compose(spec, _composer_options(args))
    result = find_schedule(model, _scheduler_config(args))
    if not result.feasible:
        print(full_report(model, result))
        return 1
    schedule = schedule_from_result(model, result)
    print(full_report(model, result, schedule, gantt=args.gantt))
    return 0


def _cmd_codegen(args) -> int:
    spec = _load_spec(args.spec)
    model = compose(spec, _composer_options(args))
    result = find_schedule(model, _scheduler_config(args))
    if not result.feasible:
        print("no feasible schedule; cannot generate code")
        return 1
    schedule = schedule_from_result(model, result)
    project = generate_project(model, schedule, args.target)
    paths = project.write(args.output)
    print(f"generated {len(paths)} file(s) in {args.output}:")
    for path in paths:
        print(f"  {path}")
    return 0


def _cmd_simulate(args) -> int:
    spec = _load_spec(args.spec)
    model = compose(spec, _composer_options(args))
    result = find_schedule(model, _scheduler_config(args))
    if not result.feasible:
        print("no feasible schedule; nothing to simulate")
        return 1
    schedule = schedule_from_result(model, result)
    machine_result = run_schedule(
        model, schedule, dispatch_overhead=args.overhead
    )
    violations = verify_trace(model, machine_result)
    print(machine_result.trace.summary())
    if violations:
        print("trace verification FAILED:")
        for violation in violations[:20]:
            print(f"  - {violation}")
        return 1
    print(
        f"trace verified: {len(machine_result.completions)} instance "
        "completions, all constraints met"
    )
    return 0


def _cmd_export(args) -> int:
    spec = _load_spec(args.spec)
    dsl_save(spec, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_examples(_args) -> int:
    print("built-in case studies (use as @name):")
    for name, spec in paper_examples().items():
        print(
            f"  @{name:<10} {len(spec.tasks)} tasks — {spec.name}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ezrt",
        description=(
            "ezRealtime reproduction: embedded hard real-time software "
            "synthesis from time Petri net models (DATE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate an ez-spec document")
    p.add_argument("spec", help="spec file or @builtin")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("compile", help="translate spec to PNML")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="model.pnml")
    _add_model_arguments(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("schedule", help="synthesise a schedule")
    p.add_argument("spec")
    p.add_argument("--gantt", action="store_true")
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("codegen", help="generate scheduled C code")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="generated")
    p.add_argument(
        "--target",
        default="hostsim",
        choices=("hostsim", "8051", "arm9", "m68k", "x86"),
    )
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_codegen)

    p = sub.add_parser(
        "simulate", help="run the table on the dispatcher machine"
    )
    p.add_argument("spec")
    p.add_argument("--overhead", type=int, default=0)
    _add_model_arguments(p)
    _add_search_arguments(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("export", help="write a built-in spec as XML")
    p.add_argument("spec")
    p.add_argument("-o", "--output", default="spec.xml")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("examples", help="list built-in case studies")
    p.set_defaults(func=_cmd_examples)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EzRealtimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
