"""ezRealtime reproduction: embedded hard real-time software synthesis.

Reproduction of *"ezRealtime: A Domain-Specific Modeling Tool for
Embedded Hard Real-Time Software Synthesis"* (Cruz, Barreto, Cordeiro,
Maciel — DATE 2008): a tool chain that models periodic hard real-time
task sets as time Petri nets built from composition blocks, synthesises
a feasible pre-runtime schedule by depth-first search over the timed
state space, and generates scheduled C code (schedule table, dispatcher
and timer interrupt handler).

Typical use::

    from repro import (
        SpecBuilder, compose, find_schedule, schedule_from_result,
        generate_project,
    )

    spec = (
        SpecBuilder("demo")
        .processor("proc0")
        .task("sense", computation=2, deadline=10, period=20)
        .task("act", computation=3, deadline=20, period=20)
        .precedence("sense", "act")
        .build()
    )
    model = compose(spec)
    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    project = generate_project(model, schedule, target="hostsim")

Subpackages: :mod:`repro.tpn` (the formalism), :mod:`repro.spec`
(metamodel + DSL), :mod:`repro.blocks` (model composition),
:mod:`repro.pnml` (interchange), :mod:`repro.scheduler` (synthesis +
baselines), :mod:`repro.codegen` (C emission), :mod:`repro.sim`
(dispatcher machine), :mod:`repro.analysis` (schedulability theory and
reports), :mod:`repro.batch` (parallel multi-spec synthesis with
result caching and campaign sweeps).
"""

from repro.batch import (
    BatchEngine,
    BatchJob,
    BatchResult,
    CampaignGrid,
    CampaignResult,
    JobOutcome,
    ResultCache,
    run_campaign,
)
from repro.blocks import BlockStyle, ComposedModel, ComposerOptions, compose
from repro.codegen import GeneratedProject, generate_project
from repro.errors import (
    CodeGenError,
    DSLError,
    EzRealtimeError,
    InfeasibleScheduleError,
    NetConstructionError,
    PNMLError,
    SchedulingError,
    SimulationError,
    SpecificationError,
    TraceVerificationError,
)
from repro.scheduler import (
    AdaptiveStore,
    ParallelScheduler,
    SchedulerConfig,
    SchedulerResult,
    SearchCore,
    TaskLevelSchedule,
    default_portfolio,
    find_schedule,
    require_schedule,
    schedule_from_result,
    simulate_runtime,
)
from repro.sim import (
    DispatcherMachine,
    NetSimulator,
    run_schedule,
    simulate_net,
    verify_trace,
)
from repro.spec import (
    EzRTSpec,
    SchedulingType,
    SpecBuilder,
    Task,
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
)
from repro.tpn import TimeInterval, TimePetriNet
from repro.workloads import (
    campaign_task_sets,
    hard_portfolio_task_set,
    random_task_set,
    random_task_set_with_relations,
    time_scaled_task_set,
    uunifast,
    wide_interval_race_net,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveStore",
    "BatchEngine",
    "BatchJob",
    "BatchResult",
    "BlockStyle",
    "CampaignGrid",
    "CampaignResult",
    "CodeGenError",
    "ComposedModel",
    "ComposerOptions",
    "DSLError",
    "DispatcherMachine",
    "EzRTSpec",
    "EzRealtimeError",
    "GeneratedProject",
    "InfeasibleScheduleError",
    "JobOutcome",
    "NetConstructionError",
    "NetSimulator",
    "PNMLError",
    "ResultCache",
    "ParallelScheduler",
    "SchedulerConfig",
    "SchedulerResult",
    "SearchCore",
    "SchedulingError",
    "SchedulingType",
    "SimulationError",
    "SpecBuilder",
    "SpecificationError",
    "Task",
    "TaskLevelSchedule",
    "TimeInterval",
    "TimePetriNet",
    "TraceVerificationError",
    "__version__",
    "campaign_task_sets",
    "hard_portfolio_task_set",
    "compose",
    "fig3_precedence",
    "fig4_exclusion",
    "fig8_preemptive",
    "default_portfolio",
    "find_schedule",
    "generate_project",
    "mine_pump",
    "random_task_set",
    "random_task_set_with_relations",
    "time_scaled_task_set",
    "require_schedule",
    "run_campaign",
    "run_schedule",
    "schedule_from_result",
    "simulate_net",
    "simulate_runtime",
    "uunifast",
    "verify_trace",
    "wide_interval_race_net",
]
