"""The ez-spec XML DSL (paper Fig. 7).

ezRealtime serialises its metamodel to an XML document rooted at
``rt:ez-spec`` in the ``http://pnmp.sf.net/EZRealtime`` namespace.  The
parser accepts the paper's published snippet verbatim, including its
conventions:

* task fields as child elements: ``processor``, ``name``, ``period``,
  ``power`` (the metamodel's ``energy``), ``schedulingMode`` (``NP`` /
  ``P``), ``computing`` (the metamodel's ``computation``), ``deadline``,
  plus ``release``, ``phase`` and ``code`` for the remaining fields;
* cross references as href-style attributes: ``precedesTasks="#id"``
  (space-separated ``#identifier`` list), likewise ``excludesTasks``
  and ``precedesMsgs``;
* ``<processor>`` children referencing a ``Processor`` element's
  identifier (a bare processor *name* is also accepted);
* ``Message`` elements with ``bus``, ``grantBus``, ``communication``
  children and ``sender``/``precedes`` reference attributes.

:func:`loads`/:func:`dumps` convert between documents and
:class:`EzRTSpec`; round-trips are lossless up to identifier renaming
(identifiers are preserved exactly).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.errors import DSLError
from repro.spec.model import (
    EzRTSpec,
    Message,
    Processor,
    SchedulingType,
    SourceCode,
    Task,
)
from repro.spec.validation import ensure_valid

NAMESPACE = "http://pnmp.sf.net/EZRealtime"


def _local(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def _child_text(element: ET.Element) -> dict[str, str]:
    """Map of child local-name -> stripped text."""
    return {
        _local(child.tag): (child.text or "").strip()
        for child in element
    }


def _parse_int(fields: dict[str, str], key: str, default: int = 0) -> int:
    if key not in fields or fields[key] == "":
        return default
    try:
        return int(fields[key])
    except ValueError:
        raise DSLError(
            f"field {key!r} must be an integer, got {fields[key]!r}"
        ) from None


def _parse_refs(value: str | None) -> list[str]:
    """Split a ``"#id1 #id2"`` reference attribute into identifiers."""
    if not value:
        return []
    refs = []
    for token in value.split():
        refs.append(token[1:] if token.startswith("#") else token)
    return refs


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def loads(document: str, validate: bool = True) -> EzRTSpec:
    """Parse an ez-spec document into a (validated) specification."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise DSLError(f"malformed ez-spec XML: {exc}") from exc
    if _local(root.tag) != "ez-spec":
        raise DSLError(
            f"expected rt:ez-spec root element, got {_local(root.tag)!r}"
        )
    spec = EzRTSpec(
        name=root.get("name", "ez-spec"),
        disp_oveh=root.get("dispOveh", "false").lower()
        in ("true", "1", "yes"),
        identifier=root.get("identifier", ""),
    )

    processors_by_id: dict[str, Processor] = {}
    raw_tasks: list[tuple[Task, dict[str, list[str]]]] = []
    raw_messages: list[tuple[Message, dict[str, str | None]]] = []

    for element in root:
        kind = _local(element.tag)
        if kind == "Processor":
            processor = _parse_processor(element)
            spec.add_processor(processor)
            processors_by_id[processor.identifier] = processor
        elif kind == "Task":
            raw_tasks.append(_parse_task(element))
        elif kind == "Message":
            raw_messages.append(_parse_message(element))
        else:
            raise DSLError(f"unknown ez-spec element {kind!r}")

    # Resolve processor references: identifier first, then bare name.
    for task, _ in raw_tasks:
        if task.processor in processors_by_id:
            task.processor = processors_by_id[task.processor].name
        spec.add_task(task)
    for message, _ in raw_messages:
        spec.add_message(message)

    # Resolve cross references now that every element is registered.
    id_to_name = {t.identifier: t.name for t in spec.tasks}
    id_to_name.update({m.identifier: m.name for m in spec.messages})

    def resolve(ref: str, context: str) -> str:
        if ref in id_to_name:
            return id_to_name[ref]
        known_names = {t.name for t in spec.tasks} | {
            m.name for m in spec.messages
        }
        if ref in known_names:
            return ref
        raise DSLError(f"{context}: unresolved reference {ref!r}")

    for task, refs in raw_tasks:
        task.precedes_tasks = [
            resolve(r, f"task {task.name!r} precedesTasks")
            for r in refs["precedes"]
        ]
        task.excludes_tasks = [
            resolve(r, f"task {task.name!r} excludesTasks")
            for r in refs["excludes"]
        ]
        task.precedes_msgs = [
            resolve(r, f"task {task.name!r} precedesMsgs")
            for r in refs["messages"]
        ]
    for message, refs in raw_messages:
        if refs["sender"]:
            message.sender = resolve(
                refs["sender"], f"message {message.name!r} sender"
            )
        if refs["precedes"]:
            message.precedes = resolve(
                refs["precedes"], f"message {message.name!r} precedes"
            )

    _symmetrise_exclusions(spec)
    _tie_messages_to_senders(spec)
    if validate:
        ensure_valid(spec)
    return spec


def _parse_processor(element: ET.Element) -> Processor:
    fields = _child_text(element)
    name = fields.get("name") or element.get("name")
    identifier = element.get("identifier", "")
    if not name:
        # A Processor may be declared with only an identifier; use it as
        # the visible name so tasks can still reference it.
        name = identifier
    if not name:
        raise DSLError("Processor element lacks both name and identifier")
    return Processor(name=name, identifier=identifier)


def _parse_task(element: ET.Element) -> tuple[Task, dict[str, list[str]]]:
    fields = _child_text(element)
    name = fields.get("name") or element.get("name")
    if not name:
        raise DSLError("Task element lacks a name")
    if "computing" not in fields and "computation" not in fields:
        raise DSLError(f"task {name!r}: missing computing time")
    computation = _parse_int(
        fields, "computing", _parse_int(fields, "computation")
    )
    deadline = _parse_int(fields, "deadline")
    period = _parse_int(fields, "period")
    scheduling = SchedulingType.parse(
        fields.get("schedulingMode", fields.get("sch", "NP")) or "NP"
    )
    code_text = fields.get("code")
    task = Task(
        name=name,
        computation=computation,
        deadline=deadline,
        period=period,
        release=_parse_int(fields, "release"),
        phase=_parse_int(fields, "phase"),
        scheduling=scheduling,
        energy=_parse_int(fields, "power", _parse_int(fields, "energy")),
        processor=fields.get("processor", "proc0") or "proc0",
        code=SourceCode(code_text) if code_text else None,
        identifier=element.get("identifier", ""),
    )
    refs = {
        "precedes": _parse_refs(element.get("precedesTasks")),
        "excludes": _parse_refs(element.get("excludesTasks")),
        "messages": _parse_refs(element.get("precedesMsgs")),
    }
    return task, refs


def _parse_message(
    element: ET.Element,
) -> tuple[Message, dict[str, str | None]]:
    fields = _child_text(element)
    name = fields.get("name") or element.get("name")
    if not name:
        raise DSLError("Message element lacks a name")
    message = Message(
        name=name,
        bus=fields.get("bus", "bus0") or "bus0",
        communication=_parse_int(fields, "communication"),
        grant_bus=_parse_int(fields, "grantBus"),
        identifier=element.get("identifier", ""),
    )
    sender_refs = _parse_refs(element.get("sender"))
    precedes_refs = _parse_refs(element.get("precedes"))
    refs: dict[str, str | None] = {
        "sender": sender_refs[0] if sender_refs else None,
        "precedes": precedes_refs[0] if precedes_refs else None,
    }
    return message, refs


def _symmetrise_exclusions(spec: EzRTSpec) -> None:
    """The DSL may list an exclusion on one side only; mirror it."""
    for task in spec.tasks:
        for other_name in list(task.excludes_tasks):
            other = next(
                (t for t in spec.tasks if t.name == other_name), None
            )
            if other is not None and task.name not in other.excludes_tasks:
                other.excludes_tasks.append(task.name)


def _tie_messages_to_senders(spec: EzRTSpec) -> None:
    """Derive message senders from tasks' ``precedesMsgs`` lists."""
    for task in spec.tasks:
        for msg_name in task.precedes_msgs:
            message = next(
                (m for m in spec.messages if m.name == msg_name), None
            )
            if message is not None and message.sender is None:
                message.sender = task.name


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def dumps(spec: EzRTSpec, pretty: bool = True) -> str:
    """Serialise a specification to an ez-spec XML document."""
    ET.register_namespace("rt", NAMESPACE)
    root = ET.Element(f"{{{NAMESPACE}}}ez-spec")
    root.set("name", spec.name)
    root.set("identifier", spec.identifier)
    if spec.disp_oveh:
        root.set("dispOveh", "true")

    name_to_id = {t.name: t.identifier for t in spec.tasks}
    name_to_id.update({m.name: m.identifier for m in spec.messages})

    for processor in spec.processors:
        element = ET.SubElement(root, "Processor")
        element.set("identifier", processor.identifier)
        ET.SubElement(element, "name").text = processor.name

    processor_ids = {p.name: p.identifier for p in spec.processors}
    for task in spec.tasks:
        element = ET.SubElement(root, "Task")
        element.set("identifier", task.identifier)
        if task.precedes_tasks:
            element.set(
                "precedesTasks",
                " ".join(f"#{name_to_id[n]}" for n in task.precedes_tasks),
            )
        if task.excludes_tasks:
            element.set(
                "excludesTasks",
                " ".join(f"#{name_to_id[n]}" for n in task.excludes_tasks),
            )
        if task.precedes_msgs:
            element.set(
                "precedesMsgs",
                " ".join(f"#{name_to_id[n]}" for n in task.precedes_msgs),
            )
        ET.SubElement(element, "processor").text = processor_ids.get(
            task.processor, task.processor
        )
        ET.SubElement(element, "name").text = task.name
        ET.SubElement(element, "period").text = str(task.period)
        if task.phase:
            ET.SubElement(element, "phase").text = str(task.phase)
        if task.release:
            ET.SubElement(element, "release").text = str(task.release)
        ET.SubElement(element, "power").text = str(task.energy)
        ET.SubElement(element, "schedulingMode").text = (
            task.scheduling.value
        )
        ET.SubElement(element, "computing").text = str(task.computation)
        ET.SubElement(element, "deadline").text = str(task.deadline)
        if task.code is not None:
            ET.SubElement(element, "code").text = task.code.content

    for message in spec.messages:
        element = ET.SubElement(root, "Message")
        element.set("identifier", message.identifier)
        if message.sender:
            element.set("sender", f"#{name_to_id[message.sender]}")
        if message.precedes:
            element.set("precedes", f"#{name_to_id[message.precedes]}")
        ET.SubElement(element, "name").text = message.name
        ET.SubElement(element, "bus").text = message.bus
        ET.SubElement(element, "grantBus").text = str(message.grant_bus)
        ET.SubElement(element, "communication").text = str(
            message.communication
        )

    raw = ET.tostring(root, encoding="unicode")
    document = '<?xml version="1.0" encoding="UTF-8"?>\n' + raw
    if pretty:
        parsed = minidom.parseString(document)
        document = parsed.toprettyxml(indent="  ")
        # minidom emits blank lines for whitespace-only nodes; drop them
        document = "\n".join(
            line for line in document.splitlines() if line.strip()
        )
    return document


def load(path: str, validate: bool = True) -> EzRTSpec:
    """Read an ez-spec file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), validate=validate)


def save(spec: EzRTSpec, path: str, pretty: bool = True) -> None:
    """Write a specification to an ez-spec file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(spec, pretty=pretty))


#: The exact DSL fragment printed in the paper (Fig. 7), kept as a
#: regression fixture: the parser must accept it unmodified.  The
#: elided second task of the figure is completed with a second Task
#: element so the reference resolves.
PAPER_FIG7_SNIPPET = """<?xml version="1.0" encoding="UTF-8"?>
<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
<Task precedesTasks="#ez1151891690363" identifier="ez1151891">
<processor>p124365</processor>
<name>T1</name>
<period>9</period>
<power>10</power>
<schedulingMode>NP</schedulingMode>
<computing>1</computing>
<deadline>9</deadline>
</Task>
<Task identifier="ez1151891690363">
<processor>p124365</processor>
<name>T2</name>
<period>9</period>
<power>10</power>
<schedulingMode>NP</schedulingMode>
<computing>2</computing>
<deadline>9</deadline>
</Task>
<Processor identifier="p124365">
<name>mcu0</name>
</Processor>
</rt:ez-spec>
"""
