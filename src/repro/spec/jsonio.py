"""JSON codec for ezRealtime specifications (the service wire format).

The XML DSL (:mod:`repro.spec.dsl`) is the paper's interchange format;
the synthesis service (:mod:`repro.service`) speaks JSON, because its
clients build requests programmatically rather than exporting modelling
-tool documents.  This module converts between plain JSON-serialisable
dicts and :class:`~repro.spec.model.EzRTSpec`:

* :func:`spec_from_json` — parse and validate a spec document dict
  (the body of ``POST /jobs``);
* :func:`spec_to_json` — canonical dict form of a specification
  (what ``spec_from_json`` accepts; round-trips losslessly).

The JSON shape mirrors the metamodel, with relations inline on the
task that owns them::

    {"name": "demo", "disp_oveh": false,
     "processors": ["proc0"],
     "tasks": [
       {"name": "sense", "computation": 2, "deadline": 10,
        "period": 20, "release": 0, "phase": 0, "scheduling": "NP",
        "energy": 0, "processor": "proc0", "code": null,
        "precedes": ["act"], "excludes": []},
       {"name": "act", "computation": 3, "deadline": 20,
        "period": 20}],
     "messages": []}

Conventions shared with the XML DSL: exclusions are symmetrised
(``A excludes B`` implies ``B excludes A``), a message's ``sender``
task gets the message appended to its ``precedes_msgs``, and the
auto-generated ``identifier`` fields never appear on the wire — two
parses of one document build semantically identical specs whose
:func:`repro.batch.cache.spec_fingerprint` digests agree, which is what
makes the service's content-addressed dedup work across clients.

Unknown keys are rejected loudly: a typo like ``"computaton"`` must be
a 4xx at the service boundary, not a silently-defaulted field.
"""

from __future__ import annotations

from repro.errors import DSLError
from repro.spec.model import (
    EzRTSpec,
    Message,
    Processor,
    SchedulingType,
    SourceCode,
    Task,
)
from repro.spec.validation import ensure_valid

_TASK_KEYS = frozenset(
    (
        "name",
        "computation",
        "deadline",
        "period",
        "release",
        "phase",
        "scheduling",
        "energy",
        "processor",
        "code",
        "precedes",
        "excludes",
    )
)
_MESSAGE_KEYS = frozenset(
    (
        "name",
        "bus",
        "communication",
        "grant_bus",
        "sender",
        "precedes",
    )
)
_SPEC_KEYS = frozenset(
    ("name", "disp_oveh", "processors", "tasks", "messages")
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DSLError(message)


def _check_keys(doc: dict, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(doc) - allowed)
    _require(
        not unknown,
        f"unknown {what} field(s) {unknown}; expected a subset of "
        f"{sorted(allowed)}",
    )


def _as_int(doc: dict, key: str, what: str, default: int = 0) -> int:
    value = doc.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{what} field {key!r} must be an integer, got {value!r}",
    )
    return value


def _as_str(value, what: str) -> str:
    _require(
        isinstance(value, str) and value != "",
        f"{what} must be a non-empty string, got {value!r}",
    )
    return value


def _task_from_json(doc: dict) -> tuple[Task, list[str], list[str]]:
    _require(isinstance(doc, dict), f"task entry must be an object, got {doc!r}")
    _check_keys(doc, _TASK_KEYS, "task")
    for key in ("name", "computation", "deadline", "period"):
        _require(key in doc, f"task is missing required field {key!r}")
    name = _as_str(doc["name"], "task name")
    scheduling = doc.get("scheduling", "NP")
    _require(
        isinstance(scheduling, str),
        f"task {name!r}: scheduling must be 'NP' or 'P'",
    )
    code = doc.get("code")
    if code is not None:
        _require(
            isinstance(code, str),
            f"task {name!r}: code must be a string or null",
        )
    precedes = doc.get("precedes", [])
    excludes = doc.get("excludes", [])
    for label, refs in (("precedes", precedes), ("excludes", excludes)):
        _require(
            isinstance(refs, list)
            and all(isinstance(ref, str) for ref in refs),
            f"task {name!r}: {label} must be a list of task names",
        )
    task = Task(
        name=name,
        computation=_as_int(doc, "computation", f"task {name!r}"),
        deadline=_as_int(doc, "deadline", f"task {name!r}"),
        period=_as_int(doc, "period", f"task {name!r}"),
        release=_as_int(doc, "release", f"task {name!r}"),
        phase=_as_int(doc, "phase", f"task {name!r}"),
        scheduling=SchedulingType.parse(scheduling),
        energy=_as_int(doc, "energy", f"task {name!r}"),
        processor=_as_str(
            doc.get("processor", "proc0"), f"task {name!r} processor"
        ),
        code=SourceCode(code) if code is not None else None,
    )
    return task, list(precedes), list(excludes)


def _message_from_json(doc: dict) -> Message:
    _require(
        isinstance(doc, dict),
        f"message entry must be an object, got {doc!r}",
    )
    _check_keys(doc, _MESSAGE_KEYS, "message")
    _require("name" in doc, "message is missing required field 'name'")
    name = _as_str(doc["name"], "message name")
    for key in ("sender", "precedes"):
        value = doc.get(key)
        _require(
            value is None or isinstance(value, str),
            f"message {name!r}: {key} must be a task name or null",
        )
    return Message(
        name=name,
        bus=_as_str(doc.get("bus", "bus0"), f"message {name!r} bus"),
        communication=_as_int(
            doc, "communication", f"message {name!r}"
        ),
        grant_bus=_as_int(doc, "grant_bus", f"message {name!r}"),
        sender=doc.get("sender"),
        precedes=doc.get("precedes"),
    )


def spec_from_json(doc: dict, validate: bool = True) -> EzRTSpec:
    """Build a specification from its JSON document form.

    Raises :class:`~repro.errors.DSLError` on shape problems (wrong
    types, unknown keys, missing fields) and
    :class:`~repro.errors.ValidationError` on semantic ones (when
    ``validate`` is on) — the service maps both to 4xx responses.
    """
    _require(
        isinstance(doc, dict),
        f"spec document must be a JSON object, got {type(doc).__name__}",
    )
    _check_keys(doc, _SPEC_KEYS, "spec")
    _require("name" in doc, "spec is missing required field 'name'")
    spec = EzRTSpec(
        name=_as_str(doc["name"], "spec name"),
        disp_oveh=bool(doc.get("disp_oveh", False)),
    )
    processors = doc.get("processors", [])
    _require(
        isinstance(processors, list),
        "spec field 'processors' must be a list of names",
    )
    for name in processors:
        spec.add_processor(
            Processor(name=_as_str(name, "processor name"))
        )
    tasks = doc.get("tasks", [])
    _require(
        isinstance(tasks, list), "spec field 'tasks' must be a list"
    )
    relations: list[tuple[str, list[str], list[str]]] = []
    for entry in tasks:
        task, precedes, excludes = _task_from_json(entry)
        spec.add_task(task)
        relations.append((task.name, precedes, excludes))
    # relations resolve only after every task is registered, so a task
    # may precede one declared later in the document
    for name, precedes, excludes in relations:
        for after in precedes:
            spec.add_precedence(name, after)
        for other in excludes:
            spec.add_exclusion(name, other)
    messages = doc.get("messages", [])
    _require(
        isinstance(messages, list),
        "spec field 'messages' must be a list",
    )
    for entry in messages:
        message = spec.add_message(_message_from_json(entry))
        if message.sender is not None:
            sender = spec.task(message.sender)
            if message.name not in sender.precedes_msgs:
                sender.precedes_msgs.append(message.name)
    if validate:
        ensure_valid(spec)
    return spec


def spec_to_json(spec: EzRTSpec) -> dict:
    """Canonical JSON document of ``spec`` (inverse of
    :func:`spec_from_json` up to identifier renaming).

    Every field is emitted — including defaults — so two documents can
    be compared directly, and the output is stable under a
    parse/serialise round-trip.
    """
    return {
        "name": spec.name,
        "disp_oveh": spec.disp_oveh,
        "processors": [p.name for p in spec.processors],
        "tasks": [
            {
                "name": task.name,
                "computation": task.computation,
                "deadline": task.deadline,
                "period": task.period,
                "release": task.release,
                "phase": task.phase,
                "scheduling": task.scheduling.value,
                "energy": task.energy,
                "processor": task.processor,
                "code": task.code.content if task.code else None,
                "precedes": list(task.precedes_tasks),
                "excludes": sorted(task.excludes_tasks),
            }
            for task in spec.tasks
        ],
        "messages": [
            {
                "name": message.name,
                "bus": message.bus,
                "communication": message.communication,
                "grant_bus": message.grant_bus,
                "sender": message.sender,
                "precedes": message.precedes,
            }
            for message in spec.messages
        ],
    }
