"""Specification metamodel, DSL, timing maths and case studies."""

from repro.spec.builder import SpecBuilder
from repro.spec.dsl import (
    NAMESPACE,
    PAPER_FIG7_SNIPPET,
    dumps,
    load,
    loads,
    save,
)
from repro.spec.examples import (
    MINE_PUMP_TABLE1,
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
    paper_examples,
)
from repro.spec.jsonio import spec_from_json, spec_to_json
from repro.spec.model import (
    EzRTSpec,
    Message,
    Processor,
    SchedulingType,
    SourceCode,
    Task,
    fresh_identifier,
)
from repro.spec.timing import (
    TaskInstance,
    check_harmonic,
    demand_in_window,
    expand_instances,
    instance_count,
    lcm,
    schedule_period,
    total_instances,
    utilization_breakdown,
)
from repro.spec.validation import ensure_valid, validate_spec

__all__ = [
    "EzRTSpec",
    "MINE_PUMP_TABLE1",
    "Message",
    "NAMESPACE",
    "PAPER_FIG7_SNIPPET",
    "Processor",
    "SchedulingType",
    "SourceCode",
    "SpecBuilder",
    "Task",
    "TaskInstance",
    "check_harmonic",
    "demand_in_window",
    "dumps",
    "ensure_valid",
    "expand_instances",
    "fig3_precedence",
    "fig4_exclusion",
    "fig8_preemptive",
    "fresh_identifier",
    "instance_count",
    "lcm",
    "load",
    "loads",
    "mine_pump",
    "paper_examples",
    "save",
    "schedule_period",
    "spec_from_json",
    "spec_to_json",
    "total_instances",
    "utilization_breakdown",
    "validate_spec",
]
