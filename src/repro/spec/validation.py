"""Specification validation (well-formedness of the metamodel instance).

The GUI of the paper's tool validates specs before translation; here the
same rules are a plain function so every pipeline entry point (builder,
DSL parser, CLI) shares them.  :func:`validate_spec` returns the list of
violated rules; :func:`ensure_valid` raises with all of them at once.

Enforced rules (paper Section 3.2 plus translation prerequisites):

* timing sanity per task: ``c ≤ d ≤ p`` and ``r + c ≤ d``;
* unique task/processor/message names and identifiers;
* relation targets exist, no self-relations;
* exclusion is symmetric (auto-symmetrised by the model API, but hand
  built specs are re-checked);
* precedence is acyclic and only links tasks of equal period (instances
  are matched one-to-one within the schedule period);
* messages reference existing sender/receiver tasks, and a message's
  sender and receiver share the message's period constraints;
* every task references a declared processor when processors are
  declared explicitly.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.spec.model import EzRTSpec


def validate_spec(spec: EzRTSpec) -> list[str]:
    """Collect rule violations; an empty list means the spec is valid."""
    problems: list[str] = []
    problems.extend(_check_unique_names(spec))
    problems.extend(_check_task_timing(spec))
    problems.extend(_check_relations(spec))
    problems.extend(_check_precedence_graph(spec))
    problems.extend(_check_messages(spec))
    problems.extend(_check_processors(spec))
    return problems


def ensure_valid(spec: EzRTSpec) -> EzRTSpec:
    """Raise :class:`SpecificationError` listing every violation."""
    problems = validate_spec(spec)
    if problems:
        bullet = "\n  - "
        raise SpecificationError(
            f"specification {spec.name!r} is invalid:{bullet}"
            f"{bullet.join(problems)}"
        )
    return spec


def _check_unique_names(spec: EzRTSpec) -> list[str]:
    problems = []
    for label, names in (
        ("task", [t.name for t in spec.tasks]),
        ("processor", [p.name for p in spec.processors]),
        ("message", [m.name for m in spec.messages]),
    ):
        seen: set[str] = set()
        for name in names:
            if name in seen:
                problems.append(f"duplicate {label} name {name!r}")
            seen.add(name)
    identifiers = [t.identifier for t in spec.tasks]
    identifiers += [m.identifier for m in spec.messages]
    identifiers += [p.identifier for p in spec.processors]
    seen_ids: set[str] = set()
    for identifier in identifiers:
        if identifier in seen_ids:
            problems.append(f"duplicate identifier {identifier!r}")
        seen_ids.add(identifier)
    return problems


def _check_task_timing(spec: EzRTSpec) -> list[str]:
    problems = []
    for task in spec.tasks:
        if not task.computation <= task.deadline <= task.period:
            problems.append(
                f"task {task.name!r}: requires c <= d <= p, got "
                f"c={task.computation}, d={task.deadline}, "
                f"p={task.period}"
            )
        if task.release + task.computation > task.deadline:
            problems.append(
                f"task {task.name!r}: release window [r, d-c] is empty "
                f"(r={task.release}, c={task.computation}, "
                f"d={task.deadline})"
            )
    return problems


def _check_relations(spec: EzRTSpec) -> list[str]:
    problems = []
    names = set(spec.task_names())
    for task in spec.tasks:
        for other in task.precedes_tasks:
            if other not in names:
                problems.append(
                    f"task {task.name!r} precedes unknown task {other!r}"
                )
            elif other == task.name:
                problems.append(
                    f"task {task.name!r} precedes itself"
                )
        for other in task.excludes_tasks:
            if other not in names:
                problems.append(
                    f"task {task.name!r} excludes unknown task {other!r}"
                )
            elif other == task.name:
                problems.append(f"task {task.name!r} excludes itself")
            elif task.name not in spec.task(other).excludes_tasks:
                problems.append(
                    f"exclusion {task.name!r}/{other!r} is not symmetric"
                )
    return problems


def _check_precedence_graph(spec: EzRTSpec) -> list[str]:
    problems = []
    names = set(spec.task_names())
    # equal-period constraint
    for before, after in spec.precedence_pairs():
        if before in names and after in names:
            p_before = spec.task(before).period
            p_after = spec.task(after).period
            if p_before != p_after:
                problems.append(
                    f"precedence {before!r} -> {after!r} links tasks of "
                    f"different periods ({p_before} vs {p_after}); "
                    "instances cannot be matched one-to-one"
                )
    # cycle detection (iterative DFS over the precedence digraph)
    graph = {name: [] for name in names}
    for before, after in spec.precedence_pairs():
        if before in names and after in names:
            graph[before].append(after)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in names}
    for root in names:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, edge_index = stack[-1]
            if edge_index < len(graph[node]):
                stack[-1] = (node, edge_index + 1)
                child = graph[node][edge_index]
                if color[child] == GRAY:
                    problems.append(
                        f"precedence cycle through {child!r}"
                    )
                elif color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return problems


def _check_messages(spec: EzRTSpec) -> list[str]:
    problems = []
    names = set(spec.task_names())
    message_names = {m.name for m in spec.messages}
    for message in spec.messages:
        if message.sender is not None and message.sender not in names:
            problems.append(
                f"message {message.name!r}: unknown sender "
                f"{message.sender!r}"
            )
        if message.precedes is not None and message.precedes not in names:
            problems.append(
                f"message {message.name!r}: unknown receiver "
                f"{message.precedes!r}"
            )
        if (
            message.sender is not None
            and message.precedes is not None
            and message.sender == message.precedes
        ):
            problems.append(
                f"message {message.name!r}: sender equals receiver"
            )
        if (
            message.sender is not None
            and message.precedes is not None
            and message.sender in names
            and message.precedes in names
        ):
            p_s = spec.task(message.sender).period
            p_r = spec.task(message.precedes).period
            if p_s != p_r:
                problems.append(
                    f"message {message.name!r} links tasks of different "
                    f"periods ({p_s} vs {p_r})"
                )
    for task in spec.tasks:
        for msg in task.precedes_msgs:
            if msg not in message_names:
                problems.append(
                    f"task {task.name!r} precedes unknown message "
                    f"{msg!r}"
                )
    # tie task.precedes_msgs back to message.sender when both are given
    for message in spec.messages:
        if message.sender is not None:
            sender = next(
                (t for t in spec.tasks if t.name == message.sender), None
            )
            if sender is not None and (
                message.name not in sender.precedes_msgs
            ):
                problems.append(
                    f"message {message.name!r} declares sender "
                    f"{message.sender!r} but the task does not list it "
                    "in precedesMsgs"
                )
    return problems


def _check_processors(spec: EzRTSpec) -> list[str]:
    problems = []
    if not spec.processors:
        return problems  # implicit single processor, nothing to check
    declared = {p.name for p in spec.processors}
    for task in spec.tasks:
        if task.processor not in declared:
            problems.append(
                f"task {task.name!r} runs on undeclared processor "
                f"{task.processor!r}"
            )
    return problems
