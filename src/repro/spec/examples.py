"""Canned case-study specifications from the paper.

* :func:`mine_pump` — the Section-5 case study (Table 1): a simplified
  pump-control system for a mining environment, 10 periodic tasks,
  schedule period 30 000, 782 task instances;
* :func:`fig3_precedence` — the two-task precedence illustration of
  Fig. 3 (T1 PRECEDES T2; timing read off the figure's intervals);
* :func:`fig4_exclusion` — the two-task preemptive exclusion
  illustration of Fig. 4 (T0 EXCLUDES T2; computation times 10 and 20
  appear in the figure as the weight-``c`` arcs);
* :func:`fig8_preemptive` — a four-task preemptive set whose
  synthesised schedule table has the shape of Fig. 8 (two instances of
  A/B/C, one of D, multiple preemptions and resumes).  The paper does
  not give this example's parameters; these are reverse-engineered and
  recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.spec.builder import SpecBuilder
from repro.spec.model import EzRTSpec

#: Table 1 rows: (task, computation, deadline, period).
MINE_PUMP_TABLE1 = (
    ("PMC", 10, 20, 80),
    ("WFC", 15, 500, 500),
    ("RLWH", 1, 1000, 1000),
    ("CH4H", 25, 500, 500),
    ("CH4S", 5, 100, 500),
    ("COH", 15, 100, 2500),
    ("AFH", 15, 200, 6000),
    ("WFH", 15, 300, 500),
    ("PDL", 15, 500, 500),
    ("SDL", 10, 500, 500),
)

#: Default task bodies for the mine-pump code generation demo.  The
#: paper's behavioural specification is C source per task; these bodies
#: exercise the generated dispatcher with representative I/O stubs.
MINE_PUMP_SOURCES = {
    "PMC": "pump_motor_control();",
    "WFC": "water_flow_check();",
    "RLWH": "read_low_water_handler();",
    "CH4H": "methane_high_handler();",
    "CH4S": "methane_sensor_sample();",
    "COH": "carbon_monoxide_handler();",
    "AFH": "air_flow_handler();",
    "WFH": "water_flow_handler();",
    "PDL": "pump_data_logger();",
    "SDL": "sensor_data_logger();",
}


def mine_pump(with_sources: bool = True) -> EzRTSpec:
    """The mine-pump case study (Table 1), non-preemptive.

    All ten tasks arrive at time zero ("at the beginning, all 10 tasks
    arrive at the same time"), with release time and phase zero.
    """
    builder = SpecBuilder("mine-pump").processor("proc0")
    for name, computation, deadline, period in MINE_PUMP_TABLE1:
        builder.task(
            name,
            computation=computation,
            deadline=deadline,
            period=period,
            scheduling="NP",
            code=MINE_PUMP_SOURCES[name] if with_sources else None,
        )
    return builder.build()


def fig3_precedence() -> EzRTSpec:
    """Fig. 3: T1 PRECEDES T2, non-preemptive, schedule period 500.

    Intervals in the figure: ``tr1 [0, 85]``, ``tc1 [15, 15]``,
    ``td1 [100, 100]`` and ``tr2 [0, 130]``, ``tc2 [20, 20]``,
    ``td2 [150, 150]``, with both arrival periods ``[250, 250]`` and the
    weight-2 arrival arc implying two instances per task (PS = 500).
    """
    return (
        SpecBuilder("fig3-precedence")
        .processor("proc0")
        .task("T1", computation=15, deadline=100, period=250,
              scheduling="NP")
        .task("T2", computation=20, deadline=150, period=250,
              scheduling="NP")
        # A third, long-period background task stretches the schedule
        # period to 500 so the arrival arc weight matches the figure's 2.
        .task("T3", computation=1, deadline=500, period=500,
              scheduling="NP")
        .precedence("T1", "T2")
        .build()
    )


def fig4_exclusion() -> EzRTSpec:
    """Fig. 4: T0 EXCLUDES T2, both preemptive, schedule period 500.

    Intervals in the figure: ``tr0 [0, 90]``, ``td0 [100, 100]``,
    ``tc0 [1, 1]`` with weight-10 arcs (c0 = 10); ``tr2 [0, 130]``,
    ``td2 [150, 150]``, ``tc2 [1, 1]`` with weight-20 arcs (c2 = 20).
    """
    return (
        SpecBuilder("fig4-exclusion")
        .processor("proc0")
        .task("T0", computation=10, deadline=100, period=250,
              scheduling="P")
        .task("T2", computation=20, deadline=150, period=250,
              scheduling="P")
        .task("T4", computation=1, deadline=500, period=500,
              scheduling="NP")
        .exclusion("T0", "T2")
        .build()
    )


def fig8_preemptive() -> EzRTSpec:
    """A preemptive set reproducing the shape of Fig. 8's table.

    Deadline-monotonic urgency order D > C > B > A produces the
    figure's nesting: B preempts A, C preempts B, D preempts B, with
    second instances of A, B and C and a single instance of D inside
    the 34-unit schedule period.
    """
    return (
        SpecBuilder("fig8-preemptive")
        .processor("proc0")
        .task("TaskA", computation=8, deadline=17, period=17, phase=1,
              scheduling="P")
        .task("TaskB", computation=6, deadline=9, period=17, phase=4,
              scheduling="P")
        .task("TaskC", computation=2, deadline=3, period=17, phase=6,
              scheduling="P")
        .task("TaskD", computation=1, deadline=2, period=34, phase=10,
              scheduling="P")
        .build()
    )


def paper_examples() -> dict[str, EzRTSpec]:
    """All canned specs keyed by a short identifier."""
    return {
        "mine-pump": mine_pump(),
        "fig3": fig3_precedence(),
        "fig4": fig4_exclusion(),
        "fig8": fig8_preemptive(),
    }
