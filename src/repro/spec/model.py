"""The ezRealtime specification metamodel (paper Fig. 5, Section 3.2).

The paper defines its metamodel in EMF/Ecore; this module is the plain
Python equivalent with the same classes, fields and relations:

* :class:`EzRTSpec` — the specification root (``name``, ``dispOveh``,
  ``identifier``; owns tasks, processors and messages);
* :class:`Task` — a periodic task ``(ph, r, c, d, p)`` with per-task
  scheduling method, energy annotation, behavioural source code and the
  ``precedesTasks`` / ``excludesTasks`` / ``precedesMsgs`` relations;
* :class:`Processor` — a processing resource (the paper's evaluation is
  mono-processor; multiple processors are accepted and each becomes its
  own resource place);
* :class:`Message` — an inter-task communication carried by a ``bus``
  resource for ``communication`` time units, optionally preceding a
  receiver task;
* :class:`SourceCode` — behavioural C code attached to a task;
* :class:`SchedulingType` — ``NON_PREEMPTIVE`` (``NP``) or
  ``PREEMPTIVE`` (``P``).

Relations are stored by *task/message name*; the ``identifier`` fields
carry the DSL's machine identifiers (``ez...``) and are auto-generated
when absent so any spec can round-trip through the XML DSL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SpecificationError

_id_counter = itertools.count(1)


def fresh_identifier(prefix: str = "ez") -> str:
    """Generate a unique DSL identifier (``ez1``, ``ez2``, ...)."""
    return f"{prefix}{next(_id_counter)}"


class SchedulingType(Enum):
    """Per-task scheduling method (paper Section 3.2).

    Non-preemptive tasks hold the processor for their whole computation
    time; preemptive tasks are implicitly split into unit-time subtasks
    (Fig. 2(b)) and may be interleaved.
    """

    NON_PREEMPTIVE = "NP"
    PREEMPTIVE = "P"

    @classmethod
    def parse(cls, text: str) -> "SchedulingType":
        """Accept ``NP``/``P`` codes or full names, case-insensitively."""
        normalized = text.strip().upper()
        aliases = {
            "NP": cls.NON_PREEMPTIVE,
            "NONPREEMPTIVE": cls.NON_PREEMPTIVE,
            "NON-PREEMPTIVE": cls.NON_PREEMPTIVE,
            "NON_PREEMPTIVE": cls.NON_PREEMPTIVE,
            "P": cls.PREEMPTIVE,
            "PREEMPTIVE": cls.PREEMPTIVE,
        }
        if normalized not in aliases:
            raise SpecificationError(
                f"unknown scheduling type {text!r} (expected NP or P)"
            )
        return aliases[normalized]


@dataclass
class SourceCode:
    """Behavioural source code of a task (``C_S`` codomain element).

    ``content`` is a C fragment: the body that the code generator splices
    into the emitted task function.
    """

    content: str
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.identifier:
            self.identifier = fresh_identifier("ezsrc")


@dataclass
class Processor:
    """A processing resource; becomes a single-token resource place."""

    name: str
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("processor name must be non-empty")
        if not self.identifier:
            self.identifier = fresh_identifier("ezproc")


@dataclass
class Message:
    """An inter-task message carried by a bus (paper Fig. 5).

    Attributes:
        name: unique message name.
        bus: name of the bus resource the transfer occupies.
        communication: transfer time in time units (the message's WCET
            on the bus).
        grant_bus: bus-grant latency in time units (modelled as the
            EFT of the bus-grant transition).
        sender: name of the task whose completion emits the message
            (the task lists the message in ``precedes_msgs``).
        precedes: name of the receiver task that may only start after
            the transfer completes (the metamodel's ``precedes 0..1``).
        identifier: DSL identifier.
    """

    name: str
    bus: str = "bus0"
    communication: int = 0
    grant_bus: int = 0
    sender: str | None = None
    precedes: str | None = None
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("message name must be non-empty")
        if self.communication < 0:
            raise SpecificationError(
                f"message {self.name!r}: communication time must be >= 0"
            )
        if self.grant_bus < 0:
            raise SpecificationError(
                f"message {self.name!r}: grantBus must be >= 0"
            )
        if not self.identifier:
            self.identifier = fresh_identifier("ezmsg")


@dataclass
class Task:
    """A periodic hard real-time task (paper Section 3.2).

    Timing constraints ``(ph, r, c, d, p)``:

    * ``phase`` — delay of the first request after system start;
    * ``release`` — earliest start, relative to the period begin;
    * ``computation`` — worst-case execution time (WCET);
    * ``deadline`` — completion bound, relative to the period begin;
    * ``period`` — request periodicity.

    The paper requires ``c ≤ d ≤ p``; validation additionally enforces
    ``r + c ≤ d`` so the release interval ``[r, d − c]`` is well formed.
    """

    name: str
    computation: int
    deadline: int
    period: int
    release: int = 0
    phase: int = 0
    scheduling: SchedulingType = SchedulingType.NON_PREEMPTIVE
    energy: int = 0
    processor: str = "proc0"
    code: SourceCode | None = None
    precedes_tasks: list[str] = field(default_factory=list)
    excludes_tasks: list[str] = field(default_factory=list)
    precedes_msgs: list[str] = field(default_factory=list)
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task name must be non-empty")
        if not self.identifier:
            self.identifier = fresh_identifier()
        for label, value in (
            ("computation", self.computation),
            ("deadline", self.deadline),
            ("period", self.period),
            ("release", self.release),
            ("phase", self.phase),
            ("energy", self.energy),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecificationError(
                    f"task {self.name!r}: {label} must be an integer, "
                    f"got {value!r}"
                )
        if self.computation < 1:
            raise SpecificationError(
                f"task {self.name!r}: computation must be >= 1"
            )
        if self.period < 1:
            raise SpecificationError(
                f"task {self.name!r}: period must be >= 1"
            )
        if self.release < 0 or self.phase < 0 or self.energy < 0:
            raise SpecificationError(
                f"task {self.name!r}: release, phase and energy must be "
                ">= 0"
            )

    # Derived quantities -------------------------------------------------
    @property
    def is_preemptive(self) -> bool:
        return self.scheduling is SchedulingType.PREEMPTIVE

    @property
    def utilization(self) -> float:
        """``c / p`` — the task's processor utilisation."""
        return self.computation / self.period

    @property
    def release_window(self) -> tuple[int, int]:
        """``[r, d − c]`` — admissible start window within a period."""
        return (self.release, self.deadline - self.computation)

    @property
    def laxity(self) -> int:
        """``d − r − c`` — scheduling slack within one period."""
        return self.deadline - self.release - self.computation


@dataclass
class EzRTSpec:
    """Root of an ezRealtime specification (metamodel class ``EzRTSpec``).

    Attributes:
        name: specification name.
        disp_oveh: whether dispatcher overhead should be accounted for
            by downstream code generation (the metamodel's ``dispOveh``
            flag).
        tasks / processors / messages: owned model elements.
    """

    name: str
    disp_oveh: bool = False
    tasks: list[Task] = field(default_factory=list)
    processors: list[Processor] = field(default_factory=list)
    messages: list[Message] = field(default_factory=list)
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.identifier:
            self.identifier = fresh_identifier("ezspec")

    # Lookup -------------------------------------------------------------
    def task(self, name: str) -> Task:
        """Task by name (raises on unknown names)."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise SpecificationError(f"unknown task {name!r}")

    def message(self, name: str) -> Message:
        """Message by name (raises on unknown names)."""
        for message in self.messages:
            if message.name == name:
                return message
        raise SpecificationError(f"unknown message {name!r}")

    def task_names(self) -> tuple[str, ...]:
        return tuple(task.name for task in self.tasks)

    def by_identifier(self, identifier: str):
        """Resolve any element (task/message/processor) by identifier."""
        for group in (self.tasks, self.messages, self.processors):
            for element in group:
                if element.identifier == identifier:
                    return element
        raise SpecificationError(f"unknown identifier {identifier!r}")

    # Mutation helpers ---------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if any(t.name == task.name for t in self.tasks):
            raise SpecificationError(f"duplicate task name {task.name!r}")
        self.tasks.append(task)
        return task

    def add_processor(self, processor: Processor) -> Processor:
        if any(p.name == processor.name for p in self.processors):
            raise SpecificationError(
                f"duplicate processor name {processor.name!r}"
            )
        self.processors.append(processor)
        return processor

    def add_message(self, message: Message) -> Message:
        if any(m.name == message.name for m in self.messages):
            raise SpecificationError(
                f"duplicate message name {message.name!r}"
            )
        self.messages.append(message)
        return message

    def add_precedence(self, before: str, after: str) -> None:
        """Declare ``before PRECEDES after`` (paper Section 3.2)."""
        self.task(before)
        self.task(after)
        if after not in self.task(before).precedes_tasks:
            self.task(before).precedes_tasks.append(after)

    def add_exclusion(self, first: str, second: str) -> None:
        """Declare ``first EXCLUDES second`` (kept symmetric).

        The paper adopts symmetric exclusion: ``A EXCLUDES B`` implies
        ``B EXCLUDES A``; both directions are recorded.
        """
        a, b = self.task(first), self.task(second)
        if first == second:
            raise SpecificationError(
                f"task {first!r} cannot exclude itself"
            )
        if second not in a.excludes_tasks:
            a.excludes_tasks.append(second)
        if first not in b.excludes_tasks:
            b.excludes_tasks.append(first)

    # Derived ------------------------------------------------------------
    def exclusion_pairs(self) -> list[tuple[str, str]]:
        """Symmetric exclusion relation as sorted unique pairs."""
        pairs: set[tuple[str, str]] = set()
        for task in self.tasks:
            for other in task.excludes_tasks:
                pairs.add(tuple(sorted((task.name, other))))
        return sorted(pairs)

    def precedence_pairs(self) -> list[tuple[str, str]]:
        """Precedence relation as ``(before, after)`` pairs."""
        pairs: list[tuple[str, str]] = []
        for task in self.tasks:
            for other in task.precedes_tasks:
                pairs.append((task.name, other))
        return sorted(pairs)

    def total_utilization(self) -> float:
        """Sum of task utilisations (messages excluded: bus ≠ CPU)."""
        return sum(task.utilization for task in self.tasks)

    def processor_names(self) -> tuple[str, ...]:
        """Declared processors plus any referenced implicitly by tasks."""
        declared = [p.name for p in self.processors]
        for task in self.tasks:
            if task.processor not in declared:
                declared.append(task.processor)
        return tuple(declared)

    def bus_names(self) -> tuple[str, ...]:
        """All bus resources referenced by messages."""
        buses: list[str] = []
        for message in self.messages:
            if message.bus not in buses:
                buses.append(message.bus)
        return tuple(buses)

    def __repr__(self) -> str:
        return (
            f"EzRTSpec({self.name!r}, tasks={len(self.tasks)}, "
            f"messages={len(self.messages)}, "
            f"U={self.total_utilization():.3f})"
        )
