"""Timing mathematics for periodic task sets (paper Section 3.3).

Pre-runtime scheduling operates over one *schedule period* ``PS`` — the
least common multiple (hyper-period) of all task periods.  Every task
``t_i`` contributes ``N(t_i) = PS / p_i`` instances to the schedule; the
mine-pump case study's "782 tasks' instances" is exactly
``sum_i PS / p_i`` for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, Sequence

from repro.errors import SpecificationError
from repro.spec.model import EzRTSpec, Task


def lcm(values: Iterable[int]) -> int:
    """Least common multiple of positive integers (LCM of ∅ is 1)."""
    result = 1
    for value in values:
        if value < 1:
            raise SpecificationError(f"LCM requires positive values, got {value}")
        result = result // gcd(result, value) * value
    return result


def schedule_period(spec: EzRTSpec) -> int:
    """The schedule period ``PS`` (hyper-period): LCM of all periods.

    Message transfers inherit their sender's period and therefore do not
    change the LCM.
    """
    if not spec.tasks:
        raise SpecificationError("specification has no tasks")
    return lcm(task.period for task in spec.tasks)


def instance_count(task: Task, period: int) -> int:
    """``N(t_i) = PS / p_i`` — instances of a task within ``PS``."""
    if period % task.period != 0:
        raise SpecificationError(
            f"schedule period {period} is not a multiple of task "
            f"{task.name!r}'s period {task.period}"
        )
    return period // task.period


def total_instances(spec: EzRTSpec) -> int:
    """Total task instances within the schedule period.

    For Table 1 this evaluates to 782.
    """
    period = schedule_period(spec)
    return sum(instance_count(task, period) for task in spec.tasks)


@dataclass(frozen=True)
class TaskInstance:
    """One invocation of a task within the schedule period.

    Attributes:
        task: task name.
        index: instance number, starting at 1 (``T1`` instance 2 is the
            second invocation).
        arrival: absolute arrival time ``ph + (index−1)·p``.
        release: absolute earliest start ``arrival + r``.
        deadline: absolute completion bound ``arrival + d``.
        computation: WCET (copied from the task for convenience).
    """

    task: str
    index: int
    arrival: int
    release: int
    deadline: int
    computation: int


def expand_instances(
    spec: EzRTSpec, horizon: int | None = None
) -> list[TaskInstance]:
    """All task instances up to ``horizon`` (default: one hyper-period).

    Instances are sorted by arrival time, then task name — the order a
    runtime scheduler would observe their requests.
    """
    period = schedule_period(spec)
    end = period if horizon is None else horizon
    instances: list[TaskInstance] = []
    for task in spec.tasks:
        index = 1
        arrival = task.phase
        while arrival < end:
            instances.append(
                TaskInstance(
                    task=task.name,
                    index=index,
                    arrival=arrival,
                    release=arrival + task.release,
                    deadline=arrival + task.deadline,
                    computation=task.computation,
                )
            )
            index += 1
            arrival += task.period
    instances.sort(key=lambda i: (i.arrival, i.task))
    return instances


def utilization_breakdown(spec: EzRTSpec) -> dict[str, float]:
    """Per-task utilisation plus the ``"total"`` row."""
    breakdown = {task.name: task.utilization for task in spec.tasks}
    breakdown["total"] = sum(
        value for key, value in breakdown.items() if key != "total"
    )
    return breakdown


def demand_in_window(spec: EzRTSpec, start: int, end: int) -> int:
    """Processor demand of instances wholly inside ``[start, end]``.

    The classical demand-bound quantity: total WCET of instances with
    ``release >= start`` and ``deadline <= end``.  Used by the EDF
    feasibility test in :mod:`repro.analysis.demand`.
    """
    if end < start:
        raise SpecificationError("window end precedes start")
    demand = 0
    for instance in expand_instances(spec, horizon=end):
        if instance.release >= start and instance.deadline <= end:
            demand += instance.computation
    return demand


def check_harmonic(periods: Sequence[int]) -> bool:
    """Whether the period set is harmonic (each divides the next).

    Harmonic sets schedule more easily; reports surface this property.
    """
    ordered = sorted(periods)
    return all(
        ordered[i + 1] % ordered[i] == 0 for i in range(len(ordered) - 1)
    )
