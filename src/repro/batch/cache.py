"""Content-addressed result cache for batch synthesis.

The cache maps a *canonical fingerprint* of a synthesis job to the
outcome it produced, so re-running a campaign skips every point that was
already solved and an incremental sweep only pays for its new points.

Cache key scheme
----------------

The key is the SHA-256 hex digest of the canonical JSON encoding
(sorted keys, compact separators) of a fingerprint document::

    {"v": <format version>,
     "spec": <spec fingerprint>,
     "composer": {"style": ..., "priority_policy": ...},
     "scheduler": {"engine": ..., "priority_mode": ...,
                   "delay_mode": ..., "partial_order": ...,
                   "reset_policy": ..., "max_states": ...,
                   "max_seconds": ...},
     "stages": {"codegen": <target or None>, "simulate": <bool>,
                "store_schedule": <bool>}}

The spec fingerprint contains every *semantic* field of the
specification — task tuples ``(ph, r, c, d, p)``, scheduling modes,
energy, processors, relations, messages and attached source code — but
deliberately excludes the auto-generated ``identifier`` fields (two
builds of the same task set get different ``ez...`` counters) and the
specification ``name`` (a label, not content).  Task *order* is
preserved because the ``lex`` priority policy depends on it.

``max_seconds`` in the scheduler section is the job's *effective* time
budget (per-job timeout folded in), so the same model searched under a
different budget is a different key: a timeout outcome must never
shadow a longer search.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.blocks.composer import ComposerOptions
from repro.scheduler.config import SchedulerConfig
from repro.spec.model import EzRTSpec

#: Bump when the fingerprint layout or outcome payload changes shape.
#: v2: scheduler section gained the search-policy and parallel knobs.
#: v3: scheduler section gained the engine selection — reference,
#: incremental and stateclass runs used to collide on one key even
#: though their stats and schedule shapes differ; bumping the version
#: also makes every v2 entry miss cleanly instead of being replayed
#: with the wrong shape.
CACHE_FORMAT_VERSION = 3


def spec_fingerprint(spec: EzRTSpec) -> dict:
    """Identifier-free canonical description of a specification."""
    return {
        "disp_oveh": spec.disp_oveh,
        "tasks": [
            {
                "name": task.name,
                "computation": task.computation,
                "deadline": task.deadline,
                "period": task.period,
                "release": task.release,
                "phase": task.phase,
                "scheduling": task.scheduling.value,
                "energy": task.energy,
                "processor": task.processor,
                "code": task.code.content if task.code else None,
                "precedes_tasks": list(task.precedes_tasks),
                "excludes_tasks": sorted(task.excludes_tasks),
                "precedes_msgs": list(task.precedes_msgs),
            }
            for task in spec.tasks
        ],
        "processors": [p.name for p in spec.processors],
        "messages": [
            {
                "name": message.name,
                "bus": message.bus,
                "communication": message.communication,
                "grant_bus": message.grant_bus,
                "sender": message.sender,
                "precedes": message.precedes,
            }
            for message in spec.messages
        ],
    }


def job_fingerprint(
    spec: EzRTSpec,
    options: ComposerOptions,
    config: SchedulerConfig,
    codegen_target: str | None = None,
    simulate: bool = False,
    store_schedule: bool = False,
) -> dict:
    """The full fingerprint document hashed into the cache key."""
    return {
        "v": CACHE_FORMAT_VERSION,
        "spec": spec_fingerprint(spec),
        "composer": {
            "style": options.style.value,
            "priority_policy": options.priority_policy,
        },
        "scheduler": {
            "engine": config.engine,
            "priority_mode": config.priority_mode,
            "delay_mode": config.delay_mode,
            "partial_order": config.partial_order,
            "reset_policy": config.reset_policy,
            "max_states": config.max_states,
            "max_seconds": config.max_seconds,
            "policy": config.policy,
            "policy_seed": config.policy_seed,
            "parallel": config.parallel,
            "parallel_mode": config.parallel_mode,
            "portfolio": list(config.portfolio),
        },
        "stages": {
            "codegen": codegen_target,
            "simulate": simulate,
            "store_schedule": store_schedule,
        },
    }


def cache_key(
    spec: EzRTSpec,
    options: ComposerOptions,
    config: SchedulerConfig,
    codegen_target: str | None = None,
    simulate: bool = False,
    store_schedule: bool = False,
) -> str:
    """SHA-256 hex key of a synthesis job."""
    document = job_fingerprint(
        spec, options, config, codegen_target, simulate, store_schedule
    )
    canonical = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Two-layer (memory + optional directory) outcome store.

    Values are plain JSON-serialisable dicts (the engine stores
    ``JobOutcome.to_dict()`` payloads).  With a ``directory`` every
    ``put`` is persisted as ``<key>.json`` via an atomic rename, so
    concurrent campaigns sharing a directory never read torn files.
    ``hits``/``misses`` count :meth:`get` calls and ``bytes_served``
    sums the canonical-JSON size of every hit — the campaign report's
    hit-rate and bytes-from-cache lines read all three.
    """

    def __init__(self, directory: str | None = None):
        self.directory = directory
        self._memory: dict[str, dict] = {}
        self._sizes: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def _size_of(self, key: str, payload: dict) -> int:
        """Canonical-JSON byte size of a payload, memoised per key."""
        size = self._sizes.get(key)
        if size is None:
            size = len(
                json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
            self._sizes[key] = size
        return size

    def get(self, key: str) -> dict | None:
        """Stored payload for ``key``, counting the hit or miss."""
        payload = self._memory.get(key)
        if payload is None and self.directory:
            try:
                with open(
                    self._path(key), "r", encoding="utf-8"
                ) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_served += self._size_of(key, payload)
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (memory, then disk)."""
        self._memory[key] = payload
        self._sizes.pop(key, None)
        if not self.directory:
            return
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self._path(key))
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory:
            keys.update(
                name[: -len(".json")]
                for name in os.listdir(self.directory)
                if name.endswith(".json")
            )
        return len(keys)

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        self._sizes.clear()
        if self.directory:
            for name in os.listdir(self.directory):
                if name.endswith(".json"):
                    os.unlink(os.path.join(self.directory, name))

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "bytes_served": self.bytes_served,
        }
