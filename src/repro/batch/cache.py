"""Content-addressed result cache for batch synthesis.

The cache maps a *canonical fingerprint* of a synthesis job to the
outcome it produced, so re-running a campaign skips every point that was
already solved and an incremental sweep only pays for its new points.

Cache key scheme
----------------

The key is the SHA-256 hex digest of the canonical JSON encoding
(sorted keys, compact separators) of a fingerprint document::

    {"v": <format version>,
     "spec": <spec fingerprint>,
     "composer": {"style": ..., "priority_policy": ...},
     "scheduler": {"engine": ..., "priority_mode": ...,
                   "delay_mode": ..., "partial_order": ...,
                   "reset_policy": ..., "max_states": ...,
                   "max_seconds": ...},
     "stages": {"codegen": <target or None>, "simulate": <bool>,
                "store_schedule": <bool>}}

The spec fingerprint contains every *semantic* field of the
specification — task tuples ``(ph, r, c, d, p)``, scheduling modes,
energy, processors, relations, messages and attached source code — but
deliberately excludes the auto-generated ``identifier`` fields (two
builds of the same task set get different ``ez...`` counters) and the
specification ``name`` (a label, not content).  Task *order* is
preserved because the ``lex`` priority policy depends on it.

``max_seconds`` in the scheduler section is the job's *effective* time
budget (per-job timeout folded in), so the same model searched under a
different budget is a different key: a timeout outcome must never
shadow a longer search.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time

from repro.blocks.composer import ComposerOptions
from repro.scheduler.config import SchedulerConfig
from repro.spec.model import EzRTSpec

#: Bump when the fingerprint layout or outcome payload changes shape.
#: v2: scheduler section gained the search-policy and parallel knobs.
#: v3: scheduler section gained the engine selection — reference,
#: incremental and stateclass runs used to collide on one key even
#: though their stats and schedule shapes differ; bumping the version
#: also makes every v2 entry miss cleanly instead of being replayed
#: with the wrong shape.
CACHE_FORMAT_VERSION = 3


def spec_fingerprint(spec: EzRTSpec) -> dict:
    """Identifier-free canonical description of a specification."""
    return {
        "disp_oveh": spec.disp_oveh,
        "tasks": [
            {
                "name": task.name,
                "computation": task.computation,
                "deadline": task.deadline,
                "period": task.period,
                "release": task.release,
                "phase": task.phase,
                "scheduling": task.scheduling.value,
                "energy": task.energy,
                "processor": task.processor,
                "code": task.code.content if task.code else None,
                "precedes_tasks": list(task.precedes_tasks),
                "excludes_tasks": sorted(task.excludes_tasks),
                "precedes_msgs": list(task.precedes_msgs),
            }
            for task in spec.tasks
        ],
        "processors": [p.name for p in spec.processors],
        "messages": [
            {
                "name": message.name,
                "bus": message.bus,
                "communication": message.communication,
                "grant_bus": message.grant_bus,
                "sender": message.sender,
                "precedes": message.precedes,
            }
            for message in spec.messages
        ],
    }


def job_fingerprint(
    spec: EzRTSpec,
    options: ComposerOptions,
    config: SchedulerConfig,
    codegen_target: str | None = None,
    simulate: bool = False,
    store_schedule: bool = False,
) -> dict:
    """The full fingerprint document hashed into the cache key."""
    return {
        "v": CACHE_FORMAT_VERSION,
        "spec": spec_fingerprint(spec),
        "composer": {
            "style": options.style.value,
            "priority_policy": options.priority_policy,
        },
        "scheduler": {
            "engine": config.engine,
            "priority_mode": config.priority_mode,
            "delay_mode": config.delay_mode,
            "partial_order": config.partial_order,
            "reset_policy": config.reset_policy,
            "max_states": config.max_states,
            "max_seconds": config.max_seconds,
            "policy": config.policy,
            "policy_seed": config.policy_seed,
            "parallel": config.parallel,
            "parallel_mode": config.parallel_mode,
            "portfolio": list(config.portfolio),
        },
        "stages": {
            "codegen": codegen_target,
            "simulate": simulate,
            "store_schedule": store_schedule,
        },
    }


def cache_key(
    spec: EzRTSpec,
    options: ComposerOptions,
    config: SchedulerConfig,
    codegen_target: str | None = None,
    simulate: bool = False,
    store_schedule: bool = False,
) -> str:
    """SHA-256 hex key of a synthesis job."""
    document = job_fingerprint(
        spec, options, config, codegen_target, simulate, store_schedule
    )
    canonical = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Two-layer (memory + optional directory) outcome store.

    Values are plain JSON-serialisable dicts (the engine stores
    ``JobOutcome.to_dict()`` payloads).  With a ``directory`` every
    ``put`` is persisted as ``<key>.json`` via an atomic rename, so
    concurrent campaigns sharing a directory never read torn files.
    ``hits``/``misses`` count :meth:`get` calls and ``bytes_served``
    sums the canonical-JSON size of every hit — the campaign report's
    hit-rate and bytes-from-cache lines read all three.
    """

    def __init__(self, directory: str | None = None):
        self.directory = directory
        self._memory: dict[str, dict] = {}
        self._sizes: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def _size_of(self, key: str, payload: dict) -> int:
        """Canonical-JSON byte size of a payload, memoised per key."""
        size = self._sizes.get(key)
        if size is None:
            size = len(
                json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
            self._sizes[key] = size
        return size

    def get(self, key: str) -> dict | None:
        """Stored payload for ``key``, counting the hit or miss."""
        payload = self._memory.get(key)
        if payload is None and self.directory:
            try:
                with open(
                    self._path(key), "r", encoding="utf-8"
                ) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_served += self._size_of(key, payload)
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (memory, then disk)."""
        self._memory[key] = payload
        self._sizes.pop(key, None)
        if not self.directory:
            return
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self._path(key))
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # -- read-through compute ------------------------------------------
    def _read(self, key: str) -> dict | None:
        """Uncounted lookup (memory, then disk); torn files read as
        absent — only a completed atomic rename makes an entry
        visible, so a writer killed mid-``put`` can never serve a
        partial payload."""
        payload = self._memory.get(key)
        if payload is None and self.directory:
            try:
                with open(
                    self._path(key), "r", encoding="utf-8"
                ) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
            if payload is not None:
                self._memory[key] = payload
        return payload

    def _lock_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.lock")

    def _try_lock(self, key: str) -> bool:
        """Try to become the computing owner of ``key``.

        The lock is an ``O_CREAT | O_EXCL`` file holding the owner's
        pid — the one primitive that is atomic across processes *and*
        threads on every platform the repo targets.
        """
        try:
            fd = os.open(
                self._lock_path(key),
                os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                0o644,
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, str(os.getpid()).encode("ascii"))
        finally:
            os.close(fd)
        return True

    def _unlock(self, key: str) -> None:
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    def _lock_is_stale(self, key: str, stale_seconds: float) -> bool:
        """True when the lock owner is provably dead or too old.

        A crashed owner (killed mid-compute or mid-rename) would
        otherwise starve every waiter; a dead pid or an over-age lock
        file lets a waiter break the lock and take over the compute.
        """
        path = self._lock_path(key)
        try:
            with open(path, "r", encoding="ascii") as handle:
                pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            # vanished (owner finished) or torn mid-write: not ours to
            # break — the retry loop re-reads the entry either way
            return False
        if pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except PermissionError:
                pass  # alive, owned by someone else
        try:
            # Lock files are aged *across processes* by their mtime, so
            # the only comparable clock is the filesystem's wall clock:
            # monotonic clocks are process-local.  The age is clamped at
            # zero because mtime can sit ahead of time.time() (clock
            # steps, NFS server skew) and a negative age must read as
            # "fresh", never as instantly stale.
            # lint: allow EZC101 — cross-process lock aging needs mtime
            age = max(0.0, time.time() - os.path.getmtime(path))
        except OSError:
            return False
        return age > stale_seconds

    def get_or_compute(
        self,
        key: str,
        compute,
        *,
        poll_interval: float = 0.01,
        stale_seconds: float = 30.0,
        wait_timeout: float | None = None,
    ) -> dict:
        """Read-through lookup: return ``key``'s payload, computing it
        exactly once across concurrent callers.

        With a ``directory``, concurrency control spans *processes*: the
        first caller to create ``<key>.lock`` runs ``compute()`` and
        publishes the result with the usual atomic rename; every other
        caller polls until the entry appears.  A crashed owner is
        detected (dead pid in the lock file, or lock older than
        ``stale_seconds``) and its lock broken, so the compute is
        retried rather than lost — exactly-once holds for every run in
        which the owner survives, and at-least-once with no torn reads
        when it does not.  Without a directory the cache is process-
        local and the same O_EXCL handshake degenerates to a
        thread-level mutex via the memory dict.

        ``wait_timeout`` bounds the total wait; on expiry the caller
        computes inline (availability over strict once-ness — the
        result is still published atomically).  Accounting: one hit
        when the entry already existed, else one miss, regardless of
        how many polls the wait took.
        """
        payload = self._read(key)
        if payload is not None:
            self.hits += 1
            self.bytes_served += self._size_of(key, payload)
            return payload
        self.misses += 1
        if not self.directory:
            # process-local: the caller is responsible for in-process
            # dedup (the service's submission bridge does); compute
            # inline and publish to memory
            payload = compute()
            self.put(key, payload)
            return payload
        deadline = (
            None
            if wait_timeout is None
            else time.monotonic() + wait_timeout
        )
        while True:
            if self._try_lock(key):
                try:
                    # double-check: the previous owner may have
                    # published between our miss and our lock
                    payload = self._read(key)
                    if payload is None:
                        payload = compute()
                        self.put(key, payload)
                    return payload
                finally:
                    self._unlock(key)
            # somebody else is computing: wait for the rename to land
            payload = self._read(key)
            if payload is not None:
                return payload
            if self._lock_is_stale(key, stale_seconds):
                self._unlock(key)
                continue
            if (
                deadline is not None
                and time.monotonic() >= deadline
            ):
                payload = compute()
                self.put(key, payload)
                return payload
            time.sleep(poll_interval)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory:
            keys.update(
                name[: -len(".json")]
                for name in os.listdir(self.directory)
                if name.endswith(".json")
            )
        return len(keys)

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._memory.clear()
        self._sizes.clear()
        if self.directory:
            for name in os.listdir(self.directory):
                if name.endswith((".json", ".lock", ".tmp")):
                    os.unlink(os.path.join(self.directory, name))

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "bytes_served": self.bytes_served,
        }
