"""Batch job description, execution and structured outcomes.

A :class:`BatchJob` bundles everything one synthesis needs — the
specification, translation options, search configuration, an optional
per-job wall-clock budget and optional downstream stages (code
generation, dispatcher simulation).  :func:`execute_job` runs the whole
pipeline for one job and never raises: every failure mode is folded
into a :class:`JobOutcome` with one of four statuses:

* ``feasible`` — a pre-runtime schedule was found;
* ``infeasible`` — the (policy-restricted) space was exhausted, or the
  state budget ran out, without finding a schedule;
* ``timeout`` — the per-job wall-clock budget expired mid-search;
* ``error`` — any stage raised (invalid spec, composition failure,
  worker crash); the message is preserved.

``execute_job`` is a module-level function so
:class:`concurrent.futures.ProcessPoolExecutor` can ship it to worker
processes by reference.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.batch.cache import cache_key
from repro.obs.events import NULL_RECORDER, JsonlSink, Recorder
from repro.obs.progress import ProgressFile
from repro.blocks.composer import ComposerOptions, compose
from repro.codegen import generate_project
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.dfs import find_schedule
from repro.scheduler.result import SearchStats
from repro.scheduler.schedule import schedule_from_result
from repro.sim import run_schedule, verify_trace
from repro.spec.model import EzRTSpec

STATUS_FEASIBLE = "feasible"
STATUS_INFEASIBLE = "infeasible"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUSES = (
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_TIMEOUT,
    STATUS_ERROR,
)


@dataclass
class BatchJob:
    """One unit of work for the batch engine.

    Attributes:
        spec: the specification to synthesise.
        options: spec → TPN translation options.
        config: depth-first search configuration.
        timeout: wall-clock budget in seconds for the schedule
            *search*; folded into the scheduler's ``max_seconds`` (the
            tighter of the two wins) and enforced cooperatively inside
            the worker.  Composition and the optional codegen/simulate
            stages run outside the budget — they are polynomial in the
            model size, unlike the search.
        codegen_target: when set, generate the C project for feasible
            schedules and record its file count.
        simulate: when True, execute feasible schedules on the
            dispatcher machine and record trace violations.
        store_schedule: keep the firing schedule in the outcome (off by
            default: campaigns only need aggregate numbers and the
            schedule of a large model is thousands of triples).
        progress_path: when set, the worker spools rate-limited live
            search counters (states visited, states/sec, depth, the
            engine slot) to this file via
            :class:`repro.obs.progress.ProgressFile` — the service's
            SSE progress ticker reads them back.  Pure observability:
            deliberately *not* part of the cache key, so a streamed
            job still hits the same cached result.
        meta: free-form campaign parameters (e.g. ``n_tasks``,
            ``utilization``, ``seed``); carried into the outcome and
            its JSONL row, never into the cache key.
    """

    spec: EzRTSpec
    options: ComposerOptions = field(default_factory=ComposerOptions)
    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    timeout: float | None = None
    codegen_target: str | None = None
    simulate: bool = False
    store_schedule: bool = False
    progress_path: str | None = None
    meta: dict = field(default_factory=dict)

    def effective_config(self) -> SchedulerConfig:
        """Search config with the per-job timeout folded in."""
        if self.timeout is None:
            return self.config
        budget = self.timeout
        if self.config.max_seconds is not None:
            budget = min(budget, self.config.max_seconds)
        return replace(self.config, max_seconds=budget)

    def key(self) -> str:
        """Content-addressed cache key (see :mod:`repro.batch.cache`)."""
        return cache_key(
            self.spec,
            self.options,
            self.effective_config(),
            self.codegen_target,
            self.simulate,
            self.store_schedule,
        )


@dataclass
class JobOutcome:
    """Structured result of one batch job.

    ``search`` holds the deterministic DFS counters
    (:meth:`repro.scheduler.result.SearchStats.as_dict` minus
    ``elapsed_seconds``); wall-clock quantities live in
    ``elapsed_seconds`` / ``search_seconds`` so :meth:`row` can stay
    run-to-run deterministic.

    ``diagnostics`` carries the pre-search lint findings
    (:class:`repro.lint.Diagnostic` dicts) when the scheduler's
    fast-fail gate decided the verdict: a trivially-infeasible spec
    gets ``status="infeasible"`` with the violated necessary
    condition named here and zero search counters.  ``None`` when the
    search ran undiagnosed — the deterministic row distinguishes
    "searched and refuted" from "rejected by diagnosis".
    """

    spec_name: str
    status: str
    key: str
    n_tasks: int
    feasible: bool = False
    exhausted: bool = False
    schedule_length: int = 0
    makespan: int = 0
    search: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    search_seconds: float = 0.0
    error: str | None = None
    codegen_files: int | None = None
    trace_violations: int | None = None
    firing_schedule: list | None = None
    diagnostics: list | None = None
    meta: dict = field(default_factory=dict)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        """Full JSON payload (what the result cache persists)."""
        return {
            "spec_name": self.spec_name,
            "status": self.status,
            "key": self.key,
            "n_tasks": self.n_tasks,
            "feasible": self.feasible,
            "exhausted": self.exhausted,
            "schedule_length": self.schedule_length,
            "makespan": self.makespan,
            "search": dict(self.search),
            "elapsed_seconds": self.elapsed_seconds,
            "search_seconds": self.search_seconds,
            "error": self.error,
            "codegen_files": self.codegen_files,
            "trace_violations": self.trace_violations,
            "firing_schedule": self.firing_schedule,
            "diagnostics": self.diagnostics,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobOutcome":
        outcome = cls(
            spec_name=payload["spec_name"],
            status=payload["status"],
            key=payload["key"],
            n_tasks=payload["n_tasks"],
        )
        for name in (
            "feasible",
            "exhausted",
            "schedule_length",
            "makespan",
            "search",
            "elapsed_seconds",
            "search_seconds",
            "error",
            "codegen_files",
            "trace_violations",
            "firing_schedule",
            "diagnostics",
            "meta",
        ):
            if name in payload:
                setattr(outcome, name, payload[name])
        if outcome.firing_schedule is not None:
            outcome.firing_schedule = [
                tuple(entry) for entry in outcome.firing_schedule
            ]
        return outcome

    def row(self) -> dict:
        """Deterministic JSONL row: no wall-clock, no schedule body.

        Two runs of the same non-timeout job produce byte-identical
        rows (timeout jobs explore machine-dependent state counts, but
        cached re-runs replay the stored row verbatim either way).
        """
        return {
            "spec": self.spec_name,
            "status": self.status,
            "key": self.key,
            "n_tasks": self.n_tasks,
            "feasible": self.feasible,
            "exhausted": self.exhausted,
            "schedule_length": self.schedule_length,
            "makespan": self.makespan,
            "search": {
                name: value
                for name, value in sorted(self.search.items())
                if name not in SearchStats.WALL_CLOCK_KEYS
            },
            "error": self.error,
            "codegen_files": self.codegen_files,
            "trace_violations": self.trace_violations,
            "diagnostics": self.diagnostics,
            "meta": dict(self.meta),
        }


def execute_job(job: BatchJob) -> JobOutcome:
    """Run compose → schedule → (codegen/simulate) for one job.

    Never raises: exceptions become ``error`` outcomes, an expired
    wall-clock budget becomes ``timeout``.  Runs in pool workers, so it
    must stay importable at module level and return picklable values.
    """
    # fault-injection hook for the degradation suites: a worker
    # processing the named spec dies *hard* (no exception, no cleanup),
    # exactly like an OOM kill.  Env-gated so production never pays —
    # tests set EZRT_CRASH_SPEC before the pool forks its workers.
    crash = os.environ.get("EZRT_CRASH_SPEC")
    if crash and job.spec.name == crash:
        os._exit(42)
    started = time.monotonic()
    outcome = JobOutcome(
        spec_name=job.spec.name,
        status=STATUS_ERROR,
        key=job.key(),
        n_tasks=len(job.spec.tasks),
        meta=dict(job.meta),
    )
    config = job.effective_config()
    # per-job recorder on a "job:<name>" track; the search itself
    # records its own spans through the scheduler's recorder, both
    # appending to the same O_APPEND sink
    obs = NULL_RECORDER
    if getattr(config, "trace_jsonl", None):
        obs = Recorder(
            JsonlSink(config.trace_jsonl),
            track=f"job:{job.spec.name}",
        )
    try:
        with obs.span("compile", cat="batch", spec=job.spec.name):
            model = compose(job.spec, job.options)
            model.compiled()
        heartbeat = None
        if job.progress_path:
            # live-progress spool for SSE streaming; the slot label
            # tells subscribers which engine is driving the search
            heartbeat = ProgressFile(
                job.progress_path, slot=config.engine
            )
        # one compilation per job: find_schedule populates the model's
        # compiled-net cache, and the codegen/simulate stages below all
        # operate on the same `model` instead of re-freezing the net
        result = find_schedule(model, config, heartbeat=heartbeat)
        search = result.stats.as_dict()
        outcome.search_seconds = search.pop("elapsed_seconds", 0.0)
        search.pop("states_per_second", None)  # wall-clock-derived
        outcome.search = search
        outcome.feasible = result.feasible
        outcome.exhausted = result.exhausted
        if result.diagnostics:
            outcome.diagnostics = [
                diagnostic.to_dict()
                for diagnostic in result.diagnostics
            ]
        if result.feasible:
            outcome.status = STATUS_FEASIBLE
            outcome.schedule_length = result.schedule_length
            outcome.makespan = result.makespan
            if job.store_schedule:
                outcome.firing_schedule = list(result.firing_schedule)
            if job.codegen_target or job.simulate:
                schedule = schedule_from_result(model, result)
                if job.codegen_target:
                    with obs.span(
                        "codegen",
                        cat="batch",
                        target=job.codegen_target,
                    ):
                        project = generate_project(
                            model, schedule, job.codegen_target
                        )
                    outcome.codegen_files = len(project.files)
                if job.simulate:
                    with obs.span("simulate", cat="batch"):
                        machine_result = run_schedule(model, schedule)
                        outcome.trace_violations = len(
                            verify_trace(model, machine_result)
                        )
        else:
            timed_out = (
                result.exhausted
                and config.max_seconds is not None
                and outcome.search_seconds >= config.max_seconds
            )
            outcome.status = (
                STATUS_TIMEOUT if timed_out else STATUS_INFEASIBLE
            )
    except Exception as err:  # noqa: BLE001 — workers must not raise
        outcome.status = STATUS_ERROR
        outcome.error = f"{type(err).__name__}: {err}"
    outcome.elapsed_seconds = time.monotonic() - started
    return outcome
