"""The batch synthesis engine: fan many jobs out over a process pool.

**Overview for new contributors.**  ``repro.batch`` is the
throughput layer of the repository: where ``repro.scheduler``
answers "is this one model schedulable?", this package answers it for
*campaigns* of hundreds of models at once.  The division of labour is:
``job.py`` defines one unit of work (spec → compose → search →
optional codegen/simulate) and its structured outcome, ``cache.py``
fingerprints jobs so solved points are never recomputed, this module
schedules jobs over worker processes, and ``campaign.py`` sweeps
parameter grids into JSONL result files.  Batch-level parallelism
composes with the single-model parallel search
(:mod:`repro.scheduler.parallel`): a job whose scheduler config sets
``parallel >= 2`` spawns its own intra-job workers, and the engine's
``cores`` budget shrinks the pool so jobs × workers stays within the
machine.

``BatchEngine.run`` takes specifications (or prepared
:class:`~repro.batch.job.BatchJob` objects), resolves cache hits in the
parent, ships the misses to a ``ProcessPoolExecutor`` (or runs them
inline when ``max_workers <= 1`` — the serial baseline the throughput
bench compares against), and returns a :class:`BatchResult` whose
outcome list preserves submission order regardless of completion order.
Misses are dispatched **hardest-first** by default — ordered by the
predicted search states of each job's model family (the same
fingerprint scheme the adaptive portfolio uses,
:mod:`repro.scheduler.adaptive`) so one huge job starts early instead
of serialising the pool's tail; the ordering affects completion order
only, never the outcomes or the JSONL bytes.

Timeouts are cooperative: the per-job budget is folded into the DFS
scheduler's ``max_seconds`` and checked inside the worker, so a timed
out job returns a structured ``timeout`` outcome instead of leaving a
poisoned worker behind.  The budget bounds the schedule *search* (the
only super-polynomial stage); composition and the optional
codegen/simulate stages run outside it.  A worker that dies anyway (OOM kill, broken
pool) surfaces as an ``error`` outcome, never as an engine exception.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field, replace
from multiprocessing import get_context

from repro.batch.cache import ResultCache
from repro.obs.events import NULL_RECORDER, JsonlSink, Recorder
from repro.obs.metrics import MetricsRegistry
from repro.batch.job import (
    BatchJob,
    JobOutcome,
    STATUS_ERROR,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUSES,
    execute_job,
)
from repro.blocks.composer import ComposerOptions
from repro.scheduler.adaptive import (
    AdaptiveStore,
    predict_states,
    spec_family,
)
from repro.scheduler.config import SchedulerConfig
from repro.spec.model import EzRTSpec


def default_workers() -> int:
    """Default pool width: one worker per available CPU."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def prelint_outcome(job: BatchJob) -> JobOutcome | None:
    """Diagnosed infeasible outcome for a trivially-infeasible job.

    Runs the O(tasks) necessary-condition lint of
    :func:`repro.lint.specrules.presearch_diagnostics` in the *parent*
    process: when a spec provably cannot be scheduled (processor/bus
    overutilisation, a precedence chain that cannot meet its deadline)
    the returned outcome carries ``status="infeasible"`` with the
    violated conditions in ``diagnostics`` and zero search counters —
    the job never reaches the pool.  Returns ``None`` when the search
    must decide (warning-only findings ride along on the worker's
    result instead, via the scheduler's own gate).
    """
    # deferred import: keeps the worker-imported module graph lean
    from repro.lint.diagnostics import has_errors
    from repro.lint.specrules import presearch_diagnostics

    diagnostics = presearch_diagnostics(
        job.spec, engine=job.config.engine
    )
    if not has_errors(diagnostics):
        return None
    return JobOutcome(
        spec_name=job.spec.name,
        status=STATUS_INFEASIBLE,
        key=job.key(),
        n_tasks=len(job.spec.tasks),
        diagnostics=[d.to_dict() for d in diagnostics],
        meta=dict(job.meta),
    )


@dataclass
class BatchStats:
    """Aggregate accounting of one engine run."""

    total: int = 0
    feasible: int = 0
    infeasible: int = 0
    timeout: int = 0
    error: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: bytes served from the result cache (canonical-JSON size of
    #: every hit payload), read off ``ResultCache.bytes_served``
    cache_bytes: int = 0
    deduplicated: int = 0
    #: jobs rejected by the pre-search lint gate (trivially-infeasible
    #: specs diagnosed in the parent; never shipped to the pool, never
    #: cached — recomputing the O(tasks) diagnosis is cheaper than a
    #: cache round-trip)
    prelint_rejected: int = 0
    wall_seconds: float = 0.0
    job_seconds: float = 0.0
    workers: int = 1
    #: worker processes each job's search spawns (1 = serial search),
    #: after the `cores` budget clamp
    intra_parallel: int = 1
    #: True when the requested intra-job `parallel` exceeded the
    #: `cores` budget and was clamped down to it
    parallel_clamped: bool = False
    #: True when executed jobs were dispatched hardest-first (ordered
    #: by predicted states per model-family fingerprint); ordering
    #: changes completion order only, never outcomes or JSONL content
    hardest_first: bool = False
    #: :mod:`repro.obs` metrics snapshot of the run
    #: (``{"counters", "gauges", "histograms"}``): cache
    #: hits/misses/bytes, executed and deduplicated job counts
    metrics: dict = field(default_factory=dict)

    @property
    def jobs_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total / self.wall_seconds

    @property
    def speedup(self) -> float:
        """Sum of per-job worker time over wall time (overlap factor)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.job_seconds / self.wall_seconds

    @property
    def hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        if looked_up == 0:
            return 0.0
        return self.cache_hits / looked_up

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "timeout": self.timeout,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes": self.cache_bytes,
            "deduplicated": self.deduplicated,
            "prelint_rejected": self.prelint_rejected,
            "hit_rate": self.hit_rate,
            "wall_seconds": self.wall_seconds,
            "job_seconds": self.job_seconds,
            "jobs_per_second": self.jobs_per_second,
            "speedup": self.speedup,
            "workers": self.workers,
            "intra_parallel": self.intra_parallel,
            "parallel_clamped": self.parallel_clamped,
            "hardest_first": self.hardest_first,
        }


@dataclass
class BatchResult:
    """Outcomes (in submission order) plus aggregate stats."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def rows(self) -> list[dict]:
        """Deterministic JSONL rows, one per outcome."""
        return [outcome.row() for outcome in self.outcomes]

    def to_jsonl(self) -> str:
        """Canonical JSONL document (sorted keys, compact, ``\\n``)."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            + "\n"
            for row in self.rows()
        )

    def write_jsonl(self, path: str) -> str:
        """Write the JSONL document to ``path``; returns the path."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return path

    def by_status(self, status: str) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.status == status]

    def summary(self) -> str:
        """One-paragraph human summary of the run."""
        s = self.stats
        parts = [
            f"{s.total} job(s) in {s.wall_seconds:.2f}s "
            f"({s.jobs_per_second:.1f} jobs/s, {s.workers} worker(s), "
            f"overlap {s.speedup:.1f}x)",
            f"feasible {s.feasible}, infeasible {s.infeasible}, "
            f"timeout {s.timeout}, error {s.error}",
            f"cache: {s.cache_hits} hit(s), {s.cache_misses} miss(es)"
            + (
                f" ({100.0 * s.hit_rate:.0f}% hit rate)"
                if s.cache_hits + s.cache_misses
                else ""
            )
            + (
                f", {s.cache_bytes:,} byte(s) served from cache"
                if s.cache_bytes
                else ""
            ),
        ]
        if s.deduplicated:
            parts.append(
                f"deduplicated {s.deduplicated} repeated job(s) "
                "within the batch"
            )
        if s.prelint_rejected:
            parts.append(
                f"rejected {s.prelint_rejected} trivially-infeasible "
                "job(s) by pre-search diagnosis (no search run)"
            )
        if s.parallel_clamped:
            parts.append(
                f"intra-job parallel clamped to {s.intra_parallel} "
                "worker(s) to respect the cores budget"
            )
        if s.hardest_first:
            parts.append(
                "jobs dispatched hardest-first (predicted states)"
            )
        return "\n".join(parts)


class BatchEngine:
    """Parallel multi-spec synthesis with content-addressed caching.

    Args:
        composer_options: default spec → TPN options for jobs built
            from bare specifications.
        scheduler_config: default DFS configuration.
        max_workers: pool width; ``<= 1`` runs jobs inline in the
            calling process (no pool, the serial baseline).  ``None``
            uses :func:`default_workers`.
        job_timeout: default per-job wall-clock budget in seconds.
        cache: a :class:`ResultCache`; ``None`` disables caching.
        codegen_target / simulate / store_schedules: defaults for the
            optional downstream stages of jobs built from bare specs.
        cores: total core budget shared between the pool and intra-job
            parallel search.  When the scheduler config opts into
            ``parallel >= 2`` worker processes *per job*, the pool
            width shrinks to ``cores // parallel`` (at least 1) so the
            machine runs ~``cores`` busy processes, not
            ``jobs × workers`` — and when even a single job would
            oversubscribe the budget (``parallel > cores``) the
            intra-job ``parallel`` itself is clamped down to
            ``cores`` (surfaced as ``BatchStats.parallel_clamped``).
            ``None`` leaves ``max_workers`` untouched.  The clamp
            applies to jobs built from bare specifications through
            this engine's config; prepared :class:`BatchJob` objects
            carry their own configs unchanged.
        hardest_first: dispatch executed jobs in descending order of
            predicted search states (the adaptive hardness estimate
            keyed by the job's model-family fingerprint — the same
            fingerprint scheme the adaptive portfolio uses).  Starting
            the stragglers first stops one huge job from serialising
            the pool's tail.  Purely a *dispatch* order: outcomes,
            JSONL rows and cache behaviour stay in submission order
            and byte-identical either way (regression-tested).
        adaptive: an :class:`~repro.scheduler.adaptive.AdaptiveStore`
            refining the hardness prediction with recorded per-family
            visited counts; executed outcomes are recorded back into
            it after the run.  ``None`` falls back to the pure
            heuristic.
        progress: stream ``[progress] batch: done/total`` lines to
            stderr as executed jobs complete (``ezrt batch
            --progress``).  Completion-driven and rate-limited; it
            never touches outcomes or JSONL bytes.
    """

    def __init__(
        self,
        composer_options: ComposerOptions | None = None,
        scheduler_config: SchedulerConfig | None = None,
        *,
        max_workers: int | None = None,
        job_timeout: float | None = None,
        cache: ResultCache | None = None,
        codegen_target: str | None = None,
        simulate: bool = False,
        store_schedules: bool = False,
        cores: int | None = None,
        hardest_first: bool = True,
        adaptive: AdaptiveStore | None = None,
        progress: bool = False,
    ):
        self.composer_options = composer_options or ComposerOptions()
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.max_workers = (
            default_workers() if max_workers is None else max_workers
        )
        self.cores = cores
        self.parallel_clamped = False
        if cores is not None:
            if cores < 1:
                raise ValueError("cores budget must be >= 1")
            if self.scheduler_config.parallel > cores:
                # a single job may not oversubscribe the budget either:
                # the pool clamping below bottoms out at 1 worker, so
                # without this the machine would run `parallel` busy
                # processes against a smaller `cores` promise
                self.scheduler_config = replace(
                    self.scheduler_config, parallel=cores
                )
                self.parallel_clamped = True
            intra = max(1, self.scheduler_config.parallel)
            self.max_workers = max(
                1, min(self.max_workers, cores // intra)
            )
        self.job_timeout = job_timeout
        self.cache = cache
        self.codegen_target = codegen_target
        self.simulate = simulate
        self.store_schedules = store_schedules
        self.hardest_first = hardest_first
        self.adaptive = adaptive
        #: stream ``[progress] batch: done/total`` heartbeat lines to
        #: stderr as jobs complete (completion-driven, rate-limited;
        #: per-job search heartbeats are a separate scheduler knob)
        self.progress = progress

    # ------------------------------------------------------------------
    def make_job(
        self, spec: EzRTSpec, meta: dict | None = None
    ) -> BatchJob:
        """Wrap a specification with this engine's defaults."""
        return BatchJob(
            spec=spec,
            options=self.composer_options,
            config=self.scheduler_config,
            timeout=self.job_timeout,
            codegen_target=self.codegen_target,
            simulate=self.simulate,
            store_schedule=self.store_schedules,
            meta=dict(meta or {}),
        )

    def _normalize(self, item) -> BatchJob:
        if isinstance(item, BatchJob):
            return item
        if isinstance(item, EzRTSpec):
            return self.make_job(item)
        raise TypeError(
            f"batch jobs must be EzRTSpec or BatchJob, got "
            f"{type(item).__name__}"
        )

    # ------------------------------------------------------------------
    def run(self, items) -> BatchResult:
        """Execute every job; outcomes come back in submission order."""
        jobs = [self._normalize(item) for item in items]
        stats = BatchStats(
            total=len(jobs),
            workers=max(1, self.max_workers),
            intra_parallel=max(1, self.scheduler_config.parallel),
            parallel_clamped=self.parallel_clamped,
        )
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        started = time.monotonic()
        # parent-side recorder: the cache-lookup phase and the whole
        # run get spans on a "batch" track in the same JSONL sink the
        # per-job workers append their compile/search spans to
        obs = NULL_RECORDER
        if getattr(self.scheduler_config, "trace_jsonl", None):
            obs = Recorder(
                JsonlSink(self.scheduler_config.trace_jsonl),
                track="batch",
            )
        run_t0 = obs.now_ns()
        # cache accounting by counter delta, not ad-hoc increments:
        # the cache is the single source of truth for hits, misses and
        # bytes served (a shared cache may be warm from another run)
        if self.cache is not None:
            hits_before = self.cache.hits
            misses_before = self.cache.misses
            bytes_before = self.cache.bytes_served

        pending: list[int] = []
        first_with_key: dict[str, int] = {}
        followers: dict[int, list[int]] = {}
        with obs.span("cache-lookup", cat="batch", jobs=len(jobs)):
            for index, job in enumerate(jobs):
                rejected = prelint_outcome(job)
                if rejected is not None:
                    # diagnosed in the parent: never pooled, never
                    # cached (the diagnosis is cheaper than the cache
                    # round-trip and must track the live lint rules)
                    outcomes[index] = rejected
                    stats.prelint_rejected += 1
                    continue
                key = job.key()
                cached = (
                    self.cache.get(key)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    outcomes[index] = self._replay(cached, job)
                    continue
                leader = first_with_key.get(key)
                if leader is None:
                    first_with_key[key] = index
                    pending.append(index)
                else:
                    # duplicate point inside one batch: execute once,
                    # fan the outcome out afterwards
                    followers.setdefault(leader, []).append(index)
                    stats.deduplicated += 1

        if self.hardest_first and len(pending) > 1:
            # hardest-first dispatch: predicted states per job (the
            # adaptive store's per-family mean when recorded, else the
            # heuristic), descending; ties keep submission order so
            # the permutation is deterministic.  Only the *execution*
            # order changes — `outcomes` is indexed by submission.
            predicted = {
                index: self._predicted_states(jobs[index])
                for index in pending
            }
            pending.sort(key=lambda index: (-predicted[index], index))
            stats.hardest_first = True

        note_done = self._progress_printer(len(pending))
        if pending:
            if self.max_workers <= 1 or len(pending) == 1:
                for index in pending:
                    outcomes[index] = execute_job(jobs[index])
                    note_done()
            else:
                self._run_pooled(jobs, pending, outcomes, note_done)

        for index in pending:
            outcome = outcomes[index]
            assert outcome is not None
            for duplicate in followers.get(index, ()):
                outcomes[duplicate] = self._replay(
                    outcome.to_dict(), jobs[duplicate]
                )
            if (
                self.cache is not None
                and outcome.status != STATUS_ERROR
            ):
                # errors are not cached: they may be environmental
                # (killed worker, broken pool) rather than a property
                # of the model
                self.cache.put(outcome.key, outcome.to_dict())
            if self.adaptive is not None and outcome.status in (
                STATUS_FEASIBLE,
                STATUS_INFEASIBLE,
            ):
                # errors are environmental; timeout counts are
                # budget-truncated and would bias the family's mean
                # *below* easy families, inverting hardest-first for
                # exactly the jobs it exists to front-load
                self.adaptive.record_job(
                    spec_family(jobs[index].spec),
                    outcome.search.get("states_visited", 0),
                )
        if self.adaptive is not None and pending:
            self.adaptive.save()

        stats.wall_seconds = time.monotonic() - started
        if self.cache is not None:
            stats.cache_hits = self.cache.hits - hits_before
            stats.cache_misses = self.cache.misses - misses_before
            stats.cache_bytes = (
                self.cache.bytes_served - bytes_before
            )
        registry = MetricsRegistry()
        registry.inc("batch.jobs.total", len(jobs))
        registry.inc("batch.jobs.executed", len(pending))
        registry.inc("batch.jobs.deduplicated", stats.deduplicated)
        registry.inc(
            "batch.jobs.prelint_rejected", stats.prelint_rejected
        )
        if self.cache is not None:
            registry.inc("batch.cache.hits", stats.cache_hits)
            registry.inc("batch.cache.misses", stats.cache_misses)
            registry.inc(
                "batch.cache.bytes_served", stats.cache_bytes
            )
        stats.metrics = registry.snapshot()
        obs.record_span(
            "batch-run",
            run_t0,
            obs.now_ns(),
            cat="batch",
            args={"jobs": len(jobs), "executed": len(pending)},
        )
        executed = set(pending)
        result_outcomes: list[JobOutcome] = []
        for index, outcome in enumerate(outcomes):
            assert outcome is not None
            if outcome.status not in STATUSES:
                outcome.status = STATUS_ERROR
            setattr(
                stats,
                outcome.status,
                getattr(stats, outcome.status) + 1,
            )
            if index in executed:
                # cache hits replay stored elapsed times; only work
                # actually done this run counts toward the overlap
                stats.job_seconds += outcome.elapsed_seconds
            result_outcomes.append(outcome)
        return BatchResult(outcomes=result_outcomes, stats=stats)

    def _predicted_states(self, job: BatchJob) -> float:
        """Hardness estimate of one job (store-refined heuristic)."""
        fallback = predict_states(job.spec)
        if self.adaptive is None:
            return fallback
        return self.adaptive.predicted_states(
            spec_family(job.spec), fallback
        )

    @staticmethod
    def _replay(payload: dict, job: BatchJob) -> JobOutcome:
        """Materialise a stored/shared outcome for ``job``.

        The fingerprint is name-free, so an identical task set solved
        under another label still hits; the outcome is realigned to
        this job's name and campaign metadata.
        """
        outcome = JobOutcome.from_dict(payload)
        outcome.spec_name = job.spec.name
        outcome.meta = dict(job.meta)
        return outcome

    def _progress_printer(self, total: int):
        """Completion-driven ``[progress] batch`` heartbeat closure.

        Rate-limited on wall-clock like the search heartbeat, but
        always prints the final completion so a short batch still
        reports; a no-op callable when ``progress`` is off.
        """
        if not self.progress or total == 0:
            return lambda: None
        state = {"done": 0, "last": time.monotonic()}

        def note_done() -> None:
            state["done"] += 1
            now = time.monotonic()
            if state["done"] < total and now - state["last"] < 0.5:
                return
            state["last"] = now
            print(
                f"[progress] batch: {state['done']}/{total} "
                f"job(s) executed",
                file=sys.stderr,
                flush=True,
            )

        return note_done

    def bridge(self) -> "SubmissionBridge":
        """A started :class:`SubmissionBridge` over this engine."""
        bridge = SubmissionBridge(self)
        bridge.start()
        return bridge

    def _run_pooled(
        self,
        jobs: list[BatchJob],
        pending: list[int],
        outcomes: list[JobOutcome | None],
        note_done=lambda: None,
    ) -> None:
        workers = min(self.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_job, jobs[index]): index
                for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except Exception as err:  # noqa: BLE001 — dead worker
                    outcomes[index] = JobOutcome(
                        spec_name=jobs[index].spec.name,
                        status=STATUS_ERROR,
                        key=jobs[index].key(),
                        n_tasks=len(jobs[index].spec.tasks),
                        error=f"{type(err).__name__}: {err}",
                        meta=dict(jobs[index].meta),
                    )
                note_done()


@dataclass
class Submission:
    """One accepted unit of work from :meth:`SubmissionBridge.submit`.

    ``future`` always resolves to a :class:`JobOutcome` — never raises
    — and ``disposition`` records how the submission was satisfied:

    * ``"cached"`` — served from the result cache, future already done;
    * ``"joined"`` — an identical job (same content-addressed key) is
      already computing; this submission shares its future;
    * ``"submitted"`` — shipped to a pool worker as a fresh compute;
    * ``"rejected"`` — the pre-search lint gate diagnosed the spec as
      trivially infeasible; the future is already done with an
      ``infeasible`` outcome carrying the diagnostics, and no pool
      worker was ever involved.
    """

    key: str
    job: BatchJob
    future: Future
    disposition: str

    CACHED = "cached"
    JOINED = "joined"
    SUBMITTED = "submitted"
    REJECTED = "rejected"


class SubmissionBridge:
    """Long-lived, one-at-a-time submission front end over the pool.

    :meth:`BatchEngine.run` is campaign-shaped: it blocks until one
    fixed list of jobs is done and then tears its pool down.  A
    *service* needs the complement — accept jobs forever, one at a
    time, from an event loop that must never block — so the bridge owns
    a persistent ``ProcessPoolExecutor`` and exposes exactly one
    operation: :meth:`submit`, returning a :class:`Submission` whose
    future an asyncio caller can wrap with ``asyncio.wrap_future``.

    The bridge keeps the engine's caching and dedup semantics, shifted
    from batch-scope to service-scope:

    * **cache read-through** — a hit resolves instantly and never
      touches the pool;
    * **in-flight dedup** — N concurrent submissions of one
      content-addressed key share a single compute: the first becomes
      the leader (``"submitted"``), the rest join its future
      (``"joined"``).  The map is keyed by the same fingerprint the
      cache uses, so "identical" means identical spec *and* identical
      search configuration/budget;
    * **write-through** — finished non-error outcomes land in the
      cache before waiters are woken, so an immediate resubmission of
      a just-finished job hits.

    Worker death (OOM kill, segfault) is absorbed: the affected
    submissions resolve to structured ``error`` outcomes and the broken
    pool is transparently replaced, so the next submission computes
    normally instead of inheriting a poisoned executor.

    Thread-safety: ``submit`` may be called from any thread (the
    service calls it from the event-loop thread); completion runs on
    the executor's callback thread.  All shared state is guarded by one
    lock.  Metrics land in :attr:`metrics` (a process-local
    :class:`~repro.obs.metrics.MetricsRegistry`): submission and
    disposition counters plus an ``inflight`` gauge.
    """

    def __init__(self, engine: BatchEngine):
        self.engine = engine
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        try:
            # match repro.scheduler.parallel: fork is cheap and lets
            # fault-injection env vars set by tests reach the workers
            context = get_context("fork")
        except ValueError:  # pragma: no cover — non-fork platforms
            context = get_context()
        return ProcessPoolExecutor(
            max_workers=max(1, self.engine.max_workers),
            mp_context=context,
        )

    def start(self) -> "SubmissionBridge":
        """Create the worker pool; idempotent until :meth:`shutdown`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("bridge is shut down")
            if not self._started:
                self._pool = self._new_pool()
                self._started = True
        return self

    @property
    def inflight(self) -> int:
        """Number of keys currently computing."""
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    def submit(
        self,
        item,
        *,
        timeout: float | None = None,
        progress_dir: str | None = None,
    ) -> Submission:
        """Accept one spec/job; never blocks on the compute itself.

        ``timeout`` overrides the engine's default per-job budget for
        this submission.  Budgets fold into the content-addressed key,
        so the same spec under a different budget is deliberately a
        *different* job (a timeout verdict must never shadow a longer
        search) and does not dedup against it.

        ``progress_dir`` opts a *fresh* compute into live-progress
        spooling: the worker writes rate-limited search counters to
        ``<progress_dir>/<key>.json`` (see
        :class:`repro.obs.progress.ProgressFile`).  Keyed by the same
        fingerprint as the cache, so joined submissions observe the
        leader's spool; cached hits never spool (nothing runs).  The
        path is deliberately outside the cache key.
        """
        job = self.engine._normalize(item)
        if timeout is not None:
            job = replace(job, timeout=timeout)
        self.metrics.inc("bridge.submissions")
        rejected = prelint_outcome(job)
        if rejected is not None:
            # diagnosed without the pool: resolve immediately, same
            # parent-side gate as BatchEngine.run (never cached, never
            # counted as a compute)
            self.metrics.inc("bridge.rejected")
            future: Future = Future()
            future.set_result(rejected)
            return Submission(
                rejected.key, job, future, Submission.REJECTED
            )
        key = job.key()
        with self._lock:
            if self._closed or self._pool is None:
                raise RuntimeError(
                    "bridge is not started (or already shut down)"
                )
            cache = self.engine.cache
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    self.metrics.inc("bridge.cache_hits")
                    future = Future()
                    future.set_result(
                        BatchEngine._replay(cached, job)
                    )
                    return Submission(
                        key, job, future, Submission.CACHED
                    )
            shared = self._inflight.get(key)
            if shared is not None:
                self.metrics.inc("bridge.dedup_joined")
                return Submission(key, job, shared, Submission.JOINED)
            result_future: Future = Future()
            self._inflight[key] = result_future
            self.metrics.inc("bridge.computed")
            self.metrics.max_gauge(
                "bridge.inflight_peak", len(self._inflight)
            )
            if progress_dir is not None:
                job = replace(
                    job,
                    progress_path=os.path.join(
                        progress_dir, f"{key}.json"
                    ),
                )
            pool_future = self._pool.submit(execute_job, job)
        pool_future.add_done_callback(
            lambda pf: self._complete(key, job, pf, result_future)
        )
        return Submission(key, job, result_future, Submission.SUBMITTED)

    # ------------------------------------------------------------------
    def _complete(
        self,
        key: str,
        job: BatchJob,
        pool_future: Future,
        result_future: Future,
    ) -> None:
        """Executor callback: fold any failure into a JobOutcome,
        write the cache through, then wake every waiter."""
        broken = False
        try:
            outcome = pool_future.result()
        except CancelledError:
            outcome = self._error_outcome(
                key, job, "CancelledError: bridge shut down"
            )
        except BaseException as err:  # noqa: BLE001 — dead worker
            broken = isinstance(err, BrokenExecutor)
            outcome = self._error_outcome(
                key, job, f"{type(err).__name__}: {err}"
            )
        with self._lock:
            self._inflight.pop(key, None)
            if broken and not self._closed:
                # one dead worker poisons the whole executor: replace
                # it so the *next* submission computes instead of
                # failing fast with BrokenProcessPool
                dead, self._pool = self._pool, self._new_pool()
                if dead is not None:
                    dead.shutdown(wait=False)
        cache = self.engine.cache
        if cache is not None and outcome.status != STATUS_ERROR:
            # errors stay uncached (environmental, same rule as
            # BatchEngine.run); written before set_result so a waiter
            # that instantly resubmits sees the hit
            cache.put(key, outcome.to_dict())
        self.metrics.inc(f"bridge.outcomes.{outcome.status}")
        result_future.set_result(outcome)

    @staticmethod
    def _error_outcome(key: str, job: BatchJob, message: str) -> JobOutcome:
        return JobOutcome(
            spec_name=job.spec.name,
            status=STATUS_ERROR,
            key=key,
            n_tasks=len(job.spec.tasks),
            error=message,
            meta=dict(job.meta),
        )

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and reap every worker process.

        Pending pool futures are cancelled; their waiters resolve to
        structured ``error`` outcomes (never hang).  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
