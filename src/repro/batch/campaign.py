"""Campaign runner: sweep synthesis over a workload grid.

A campaign pairs the batch engine with the synthetic workload
generator: every point of an ``n_tasks × utilization × seed`` grid
becomes one synthesis job, the engine fans the grid out over the pool,
and the result is written as JSONL (one deterministic row per point)
plus a human-readable report (status totals, feasibility matrix,
throughput, cache hit rate).

Because jobs are content-addressed, re-running a campaign — or growing
its grid — only pays for points not already in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import campaign_report
from repro.batch.engine import BatchEngine, BatchResult
from repro.batch.job import BatchJob
from repro.errors import SpecificationError
from repro.workloads import campaign_task_sets


@dataclass(frozen=True)
class CampaignGrid:
    """The swept parameter grid of a synthesis campaign."""

    n_tasks: tuple[int, ...]
    utilizations: tuple[float, ...]
    seeds: tuple[int, ...] = (0,)
    preemptive_fraction: float = 0.0
    deadline_slack: float = 1.0

    def __post_init__(self) -> None:
        if not self.n_tasks or not self.utilizations or not self.seeds:
            raise SpecificationError(
                "campaign grid needs at least one value per axis"
            )

    @property
    def size(self) -> int:
        return (
            len(self.n_tasks)
            * len(self.utilizations)
            * len(self.seeds)
        )

    def jobs(self, engine: BatchEngine) -> list[BatchJob]:
        """Materialise the grid as engine jobs, in sweep order."""
        return [
            engine.make_job(spec, meta=params)
            for params, spec in campaign_task_sets(
                self.n_tasks,
                self.utilizations,
                self.seeds,
                preemptive_fraction=self.preemptive_fraction,
                deadline_slack=self.deadline_slack,
            )
        ]


@dataclass
class CampaignResult:
    """Engine result plus the rendered report and JSONL location."""

    result: BatchResult
    report: str
    jsonl_path: str | None = None
    grid: CampaignGrid | None = None

    @property
    def outcomes(self):
        return self.result.outcomes

    @property
    def stats(self):
        return self.result.stats


def run_campaign(
    grid: CampaignGrid,
    engine: BatchEngine | None = None,
    jsonl_path: str | None = None,
) -> CampaignResult:
    """Run every grid point through the engine; optionally write JSONL.

    Row order in the JSONL file follows the sweep order of the grid, so
    two runs of the same campaign (fresh or cached) produce
    byte-identical documents as long as no point times out (timeout
    outcomes have machine-dependent state counts on first solve; cached
    re-runs replay even those verbatim).
    """
    engine = engine or BatchEngine()
    result = engine.run(grid.jobs(engine))
    if jsonl_path is not None:
        result.write_jsonl(jsonl_path)
    report = campaign_report(result.rows(), result.stats.as_dict())
    return CampaignResult(
        result=result,
        report=report,
        jsonl_path=jsonl_path,
        grid=grid,
    )
