"""Parallel multi-spec synthesis: engine, result cache, campaigns.

The seed pipeline synthesises one specification at a time in one
process; this subsystem turns it into a throughput-oriented service in
the spirit of batch formal-analysis engines:

* :class:`~repro.batch.engine.BatchEngine` fans
  compose → schedule → (optional codegen/simulate) jobs out over a
  ``ProcessPoolExecutor`` with cooperative per-job timeouts and returns
  structured per-job outcomes (``feasible`` / ``infeasible`` /
  ``timeout`` / ``error``) plus aggregate throughput stats;
* :class:`~repro.batch.cache.ResultCache` memoises outcomes under a
  content-addressed key, so repeated or grown campaigns skip every
  already-solved point;
* :func:`~repro.batch.campaign.run_campaign` sweeps
  ``n_tasks × utilization × seed`` grids of
  :func:`repro.workloads.random_task_set` workloads, emitting
  deterministic JSONL rows and an aggregate report.

Cache-key scheme
----------------

A job's key is ``sha256(canonical_json(fingerprint))`` where the
fingerprint is::

    {"v": CACHE_FORMAT_VERSION,
     "spec":      identifier-free spec content (tasks in declaration
                  order with (ph, r, c, d, p), scheduling mode, energy,
                  processor, code, relations; processors; messages),
     "composer":  ComposerOptions (block style, priority policy),
     "scheduler": effective SchedulerConfig (priority/delay mode,
                  partial order, reset policy, max_states and the
                  per-job timeout folded into max_seconds),
     "stages":    codegen target, simulate flag, store_schedule flag}

Auto-generated ``ez...`` identifiers and the specification *name* are
excluded — the key addresses semantic content, so the same task set
built twice (or under a different label) hits.  Anything that changes
what the pipeline computes — a different search budget, block style or
downstream stage — changes the key.  See :mod:`repro.batch.cache` for
the full layout and :data:`repro.batch.cache.CACHE_FORMAT_VERSION` for
invalidation on format changes.

Typical use::

    from repro.batch import BatchEngine, CampaignGrid, ResultCache
    from repro.batch import run_campaign

    engine = BatchEngine(
        max_workers=8, job_timeout=2.0, cache=ResultCache(".ezrt-cache")
    )
    grid = CampaignGrid(
        n_tasks=(4, 6, 8),
        utilizations=(0.3, 0.5, 0.7),
        seeds=tuple(range(10)),
    )
    campaign = run_campaign(grid, engine, jsonl_path="results.jsonl")
    print(campaign.report)

or, from the shell: ``ezrt batch --n-tasks 4,6,8 --utilizations
0.3,0.5,0.7 --seeds 0-9 -o results.jsonl``.
"""

from repro.batch.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    cache_key,
    job_fingerprint,
    spec_fingerprint,
)
from repro.batch.campaign import (
    CampaignGrid,
    CampaignResult,
    run_campaign,
)
from repro.batch.engine import (
    BatchEngine,
    BatchResult,
    BatchStats,
    Submission,
    SubmissionBridge,
    default_workers,
)
from repro.batch.job import (
    BatchJob,
    JobOutcome,
    STATUS_ERROR,
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_TIMEOUT,
    STATUSES,
    execute_job,
)

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchResult",
    "BatchStats",
    "CACHE_FORMAT_VERSION",
    "CampaignGrid",
    "CampaignResult",
    "JobOutcome",
    "ResultCache",
    "STATUSES",
    "STATUS_ERROR",
    "STATUS_FEASIBLE",
    "STATUS_INFEASIBLE",
    "STATUS_TIMEOUT",
    "Submission",
    "SubmissionBridge",
    "cache_key",
    "default_workers",
    "execute_job",
    "job_fingerprint",
    "run_campaign",
    "spec_fingerprint",
]
