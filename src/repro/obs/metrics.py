"""Counter/gauge/histogram registry with cross-process aggregation.

A :class:`MetricsRegistry` is process-local and lock-free (the search
loop and its callers are single-threaded per process); aggregation
across worker processes happens at the *snapshot* level: each portfolio
or work-stealing worker attaches ``registry.snapshot()`` to the stats
payload it already sends over the results queue, and the parent merges
the drained snapshots with :meth:`MetricsRegistry.merge_snapshots` —
no shared memory, no extra queue, no new failure modes.

Merge semantics per kind:

* **counters** sum (total cache hits, total steal counts);
* **gauges** keep the maximum (deepest frontier across workers; the
  per-slot wall-clock gauges carry the slot name, so distinct workers
  never collide on one key);
* **histograms** combine ``count``/``sum`` and widen ``min``/``max``.

Snapshots are plain nested dicts (JSON- and pickle-friendly), shaped
``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` — the
shape that lands on ``SchedulerResult.metrics`` and
``BatchStats.metrics``.
"""

from __future__ import annotations


class MetricsRegistry:
    """Process-local metrics; snapshots merge across processes."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins locally)."""
        self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (never lowers)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
            }
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of the current state (queue-shippable)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: dict(hist)
                for name, hist in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: dict | None) -> None:
        """Fold one snapshot into this registry (see module doc)."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.max_gauge(name, value)
        for name, hist in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(hist)
                continue
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            if hist["min"] < mine["min"]:
                mine["min"] = hist["min"]
            if hist["max"] > mine["max"]:
                mine["max"] = hist["max"]

    @classmethod
    def merge_snapshots(cls, snapshots) -> dict:
        """Merge an iterable of snapshots into one snapshot dict."""
        merged = cls()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        return merged.snapshot()


def format_metrics(snapshot: dict | None) -> str:
    """Human-readable metrics block (``ezrt schedule --profile``)."""
    if not snapshot:
        return "(no metrics recorded)"
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            shown = f"{value:g}" if isinstance(value, float) else value
            lines.append(f"  {name:<32} {shown}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<32} {gauges[name]:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"  {name:<32} count={hist['count']} "
                f"mean={mean:g} min={hist['min']:g} max={hist['max']:g}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
