"""Observability: tracing, metrics and progress for the whole pipeline.

**Overview for new contributors.**  The synthesis pipeline runs three
search engines under one loop, a multi-process portfolio racer and a
campaign-scale batch engine — this package is the shared window into
all of it, structured the way the formal-methods tooling the repository
reproduces against (Real-Time Maude and friends) treats execution
traces: as first-class analysis artifacts, not debug prints.

* :mod:`repro.obs.events` — a low-overhead span/counter recorder over
  ``time.monotonic_ns`` with a process-safe JSONL sink
  (:class:`JsonlSink`); the :data:`NULL_RECORDER` default makes every
  instrumentation point a no-op so the hot path pays nothing when
  tracing is off (gated <2% by ``benchmarks/bench_obs_overhead.py``);
* :mod:`repro.obs.trace` — converts recorded JSONL events into Chrome
  trace-event JSON viewable in Perfetto / ``chrome://tracing``, one
  thread track per portfolio worker;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  whose snapshots ship over the parallel scheduler's results queue and
  merge in the parent (landing on ``SchedulerResult.metrics`` and
  ``BatchStats.metrics``);
* :mod:`repro.obs.progress` — heartbeat streaming over the search
  core's existing ``tick``-style polling (``ezrt schedule --progress``
  / ``ezrt batch --progress``).

See ``docs/observability.md`` for the span and metric reference.
"""

from repro.obs.events import (
    NULL_RECORDER,
    JsonlSink,
    NullRecorder,
    Recorder,
)
from repro.obs.metrics import MetricsRegistry, format_metrics
from repro.obs.progress import ProgressFile, ProgressPrinter
from repro.obs.trace import (
    chrome_trace,
    read_events,
    write_chrome_trace,
)

__all__ = [
    "JsonlSink",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ProgressFile",
    "ProgressPrinter",
    "Recorder",
    "chrome_trace",
    "format_metrics",
    "read_events",
    "write_chrome_trace",
]
