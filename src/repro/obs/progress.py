"""Progress heartbeats over the search core's polling hook.

The search loop already polls a cooperative ``tick`` every 1024
expansions (first-win cancellation, shared budgets); progress streaming
reuses exactly that cadence rather than adding a thread or a timer: the
core calls the heartbeat with the live counters, and the heartbeat
rate-limits itself on wall-clock, so the cost between samples is one
monotonic read and a comparison per 1024 expansions.

A sample does three things, each optional:

* prints a ``[progress]`` line to ``stderr`` (the CLI's ``--progress``;
  stdout stays clean for reports and piping);
* emits a counter event to a :class:`~repro.obs.events.Recorder`
  (rendered as states/sec and depth curves in the Chrome trace);
* tracks the maximum observed stack depth into a
  :class:`~repro.obs.metrics.MetricsRegistry` gauge.

Per-slot liveness in a portfolio race falls out for free: every worker
carries its own printer labelled with its slot, so a stalled slot is
the one whose ``[progress]`` lines stop appearing.
"""

from __future__ import annotations

import json
import os
import sys
import time


class ProgressPrinter:
    """Rate-limited heartbeat; called as ``(visited, generated, depth)``."""

    __slots__ = (
        "label",
        "interval",
        "stream",
        "recorder",
        "metrics",
        "samples",
        "_last_time",
        "_last_visited",
    )

    def __init__(
        self,
        label: str = "search",
        interval: float = 0.5,
        stream=None,
        recorder=None,
        metrics=None,
    ):
        self.label = label
        self.interval = interval
        self.stream = stream
        self.recorder = recorder
        self.metrics = metrics
        self.samples = 0
        self._last_time = time.monotonic()
        self._last_visited = 0

    def __call__(self, visited: int, generated: int, depth: int) -> None:
        now = time.monotonic()
        elapsed = now - self._last_time
        if elapsed < self.interval:
            return
        rate = (visited - self._last_visited) / elapsed
        self._last_time = now
        self._last_visited = visited
        self.samples += 1
        stream = self.stream if self.stream is not None else sys.stderr
        print(
            f"[progress] {self.label}: {visited:,} states visited, "
            f"{rate:,.0f} states/s, depth {depth}",
            file=stream,
            flush=True,
        )
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.counter(
                "progress",
                states=visited,
                generated=generated,
                states_per_sec=round(rate),
                depth=depth,
            )
        if self.metrics is not None:
            self.metrics.inc("progress.samples")


class ProgressFile:
    """File-spooled heartbeat; called as ``(visited, generated, depth)``.

    The cross-process cousin of :class:`ProgressPrinter`: a batch pool
    worker runs the search in another process, so its heartbeat cannot
    reach the service's SSE subscribers directly.  Instead the worker
    spools rate-limited samples to a JSON file and the service's
    progress ticker reads the latest sample back (see
    :meth:`repro.service.jobs.JobManager._progress_ticker`).

    Each write is atomic (temp file + ``os.replace`` in the same
    directory), so a reader sees either the previous sample or the new
    one, never a torn line.  The payload carries the live search
    counters plus the ``slot`` label (the engine driving the search) —
    exactly what the SSE ``progress`` event forwards.
    """

    __slots__ = (
        "path",
        "slot",
        "interval",
        "samples",
        "_last_time",
        "_last_visited",
    )

    def __init__(
        self,
        path: str,
        slot: str = "search",
        interval: float = 0.25,
    ):
        self.path = path
        self.slot = slot
        self.interval = interval
        self.samples = 0
        self._last_time = time.monotonic()
        self._last_visited = 0

    def __call__(self, visited: int, generated: int, depth: int) -> None:
        now = time.monotonic()
        elapsed = now - self._last_time
        if elapsed < self.interval:
            return
        rate = (visited - self._last_visited) / elapsed
        self._last_time = now
        self._last_visited = visited
        self.samples += 1
        payload = {
            "slot": self.slot,
            "states_visited": visited,
            "states_generated": generated,
            "states_per_sec": round(rate),
            "depth": depth,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            # progress is best-effort: a full or vanished spool
            # directory must never fail the search itself
            try:
                os.unlink(tmp)
            except OSError:
                pass
