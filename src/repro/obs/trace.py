"""Export recorded JSONL events as Chrome trace-event JSON.

The output follows the Trace Event Format's JSON-object flavour
(``{"traceEvents": [...]}``) so one file opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every recorded process becomes a trace process (``"M"`` metadata
  event ``process_name``), every logical track inside it a thread
  (``thread_name``) — so a portfolio race renders as one row per
  worker slot;
* spans become complete events (``"ph": "X"``) with microsecond
  ``ts``/``dur`` (the recorder's nanoseconds divided by 1000);
* instants become ``"ph": "i"`` (thread-scoped), counter samples
  ``"ph": "C"`` — Perfetto plots those as the states/sec and depth
  curves of the progress heartbeat.

``normalize=True`` rebases timestamps to zero and renumbers pids
``1..n`` (in first-seen-timestamp order): runs of the same model then
produce structurally comparable traces, which is what the
deterministic-structure tests compare.  Track-to-tid assignment is
always deterministic (sorted track names per pid).
"""

from __future__ import annotations

import json


def read_events(path: str) -> list[dict]:
    """Parse a recorded JSONL event file.

    Unparseable lines are skipped rather than fatal: a worker killed
    mid-write (the ``terminate()`` backstop) can leave one torn tail
    line, and losing observability data must never fail the run that
    produced it.
    """
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and "ts" in event:
                events.append(event)
    return events


def chrome_trace(events: list[dict], normalize: bool = False) -> dict:
    """Convert recorded events into a Chrome trace-event document."""
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    pids = sorted({event.get("pid", 0) for event in events})
    if normalize:
        first_seen = {
            pid: min(
                event["ts"]
                for event in events
                if event.get("pid", 0) == pid
            )
            for pid in pids
        }
        pids.sort(key=lambda pid: (first_seen[pid], pid))
        pid_map = {pid: index + 1 for index, pid in enumerate(pids)}
        base_ts = min(event["ts"] for event in events)
    else:
        pid_map = {pid: pid for pid in pids}
        base_ts = 0

    tracks_of: dict[int, set[str]] = {}
    for event in events:
        tracks_of.setdefault(event.get("pid", 0), set()).add(
            event.get("track", "main")
        )
    tid_map = {
        (pid, track): tid
        for pid in pids
        for tid, track in enumerate(sorted(tracks_of[pid]), start=1)
    }

    trace_events: list[dict] = []
    for pid in pids:
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_map[pid],
                "tid": 0,
                "args": {"name": "ezrt"},
            }
        )
        for track in sorted(tracks_of[pid]):
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_map[pid],
                    "tid": tid_map[(pid, track)],
                    "args": {"name": track},
                }
            )

    for event in sorted(
        events,
        key=lambda e: (e["ts"], e.get("pid", 0), e.get("name", "")),
    ):
        pid = event.get("pid", 0)
        track = event.get("track", "main")
        ts_us = (event["ts"] - base_ts) / 1000.0
        common = {
            "name": event.get("name", "?"),
            "pid": pid_map[pid],
            "tid": tid_map[(pid, track)],
            "ts": ts_us,
        }
        kind = event.get("type")
        if kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "cat": event.get("cat", "search"),
                    "dur": event.get("dur", 0) / 1000.0,
                    "args": event.get("args", {}),
                    **common,
                }
            )
        elif kind == "instant":
            trace_events.append(
                {
                    "ph": "i",
                    "cat": event.get("cat", "search"),
                    "s": "t",
                    "args": event.get("args", {}),
                    **common,
                }
            )
        elif kind == "counter":
            trace_events.append(
                {"ph": "C", "args": event.get("values", {}), **common}
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    jsonl_path: str, out_path: str, normalize: bool = False
) -> str:
    """Convert a recorded JSONL file into a Chrome trace JSON file."""
    document = chrome_trace(read_events(jsonl_path), normalize=normalize)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return out_path
