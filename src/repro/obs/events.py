"""Span/counter recording with a process-safe JSONL sink.

Design constraints, in priority order:

1. **Zero cost when disabled.**  Instrumentation points receive the
   shared :data:`NULL_RECORDER` by default; its ``enabled`` flag is
   ``False`` so hot loops can skip their measurement closures entirely,
   and every method is a no-op for the coarse-grained call sites that
   do not bother checking.  ``benchmarks/bench_obs_overhead.py`` gates
   the disabled path at <2% of the raw search-loop baseline.
2. **Process safety without coordination.**  Portfolio/work-stealing
   workers and batch pool workers all append to one JSONL file.  The
   sink opens the file with ``O_APPEND`` and emits each event as a
   single ``os.write`` — POSIX appends are atomic per write, so lines
   from concurrent processes interleave but never tear.  The file
   descriptor is opened lazily *per pid* (a fork-inherited descriptor
   is detected by the pid check and reopened), so a recorder created
   before ``fork`` keeps working in every child.
3. **Monotonic timestamps.**  All times are ``time.monotonic_ns()``
   (never the adjustable wall clock, matching the search budget's
   timing).  Monotonic clocks are per-boot, not per-process, so spans
   from different workers on one host share a timeline; the Chrome
   exporter (:mod:`repro.obs.trace`) can rebase them to zero for
   deterministic test comparisons.

The JSONL record shapes (one JSON object per line)::

    {"type": "span",    "name", "cat", "ts", "dur", "pid", "track", "args"}
    {"type": "instant", "name", "cat", "ts",        "pid", "track", "args"}
    {"type": "counter", "name",        "ts",        "pid", "track", "values"}

``ts``/``dur`` are integer nanoseconds; ``track`` is the logical
thread-track label (one per portfolio worker) the Chrome exporter maps
to a ``tid``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager


class JsonlSink:
    """Append-only JSONL event file, safe across forked processes."""

    __slots__ = ("path", "_fd", "_pid")

    def __init__(self, path: str):
        self.path = path
        self._fd: int | None = None
        self._pid: int | None = None

    def emit(self, record: dict) -> None:
        """Write one event as a single atomic ``O_APPEND`` line."""
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            # lazy per-pid open: a descriptor inherited through fork
            # would share its offset with the parent; O_APPEND makes
            # that safe, but reopening keeps the invariant obvious and
            # covers spawn contexts where nothing was inherited
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            self._pid = pid
        line = json.dumps(record, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None and self._pid == os.getpid():
            os.close(self._fd)
        self._fd = None
        self._pid = None


class Recorder:
    """Live span/instant/counter recorder bound to one sink and track.

    ``track`` is the logical timeline label: the serial scheduler uses
    one per engine, the portfolio racer one per worker slot
    (``"w0:earliest"``), the batch engine one per job.  Reassigning
    ``recorder.track`` re-labels subsequent events — the parallel
    workers do exactly that after fork.
    """

    enabled = True

    __slots__ = ("sink", "track")

    def __init__(self, sink: JsonlSink, track: str = "main"):
        self.sink = sink
        self.track = track

    @staticmethod
    def now_ns() -> int:
        return time.monotonic_ns()

    def record_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        cat: str = "search",
        args: dict | None = None,
    ) -> None:
        """Record a completed span from explicit timestamps.

        The search core uses this for its *aggregate* spans: the
        per-call successor/candidate costs are accumulated in plain
        nanosecond counters inside the loop and emitted as one span
        each at search end, so the hot path never formats an event.
        """
        self.sink.emit(
            {
                "type": "span",
                "name": name,
                "cat": cat,
                "ts": start_ns,
                "dur": max(0, end_ns - start_ns),
                "pid": os.getpid(),
                "track": self.track,
                "args": args or {},
            }
        )

    @contextmanager
    def span(self, name: str, cat: str = "search", **args):
        """Context manager measuring one phase (compile, replay, ...)."""
        start = time.monotonic_ns()
        try:
            yield
        finally:
            self.record_span(
                name, start, time.monotonic_ns(), cat=cat, args=args
            )

    def instant(self, name: str, cat: str = "search", **args) -> None:
        """A point event (cache hit, cancellation, restart)."""
        self.sink.emit(
            {
                "type": "instant",
                "name": name,
                "cat": cat,
                "ts": time.monotonic_ns(),
                "pid": os.getpid(),
                "track": self.track,
                "args": args,
            }
        )

    def counter(self, name: str, **values) -> None:
        """A counter sample (progress heartbeats: states/sec, depth)."""
        self.sink.emit(
            {
                "type": "counter",
                "name": name,
                "ts": time.monotonic_ns(),
                "pid": os.getpid(),
                "track": self.track,
                "values": values,
            }
        )

    def close(self) -> None:
        self.sink.close()


class _NullContext:
    """Reusable no-op context manager (cheaper than nullcontext())."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """No-op recorder: the default at every instrumentation point.

    ``enabled`` is ``False`` so hot paths can skip measurement
    entirely; the methods exist so coarse call sites (one span per
    compile, per replay) need no branching at all.
    """

    enabled = False
    track = "off"

    __slots__ = ()

    @staticmethod
    def now_ns() -> int:
        return time.monotonic_ns()

    def record_span(self, *_args, **_kwargs) -> None:
        pass

    def span(self, _name: str, cat: str = "search", **_args):
        return _NULL_CONTEXT

    def instant(self, *_args, **_kwargs) -> None:
        pass

    def counter(self, *_args, **_kwargs) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled recorder — instrumentation points default to it.
NULL_RECORDER = NullRecorder()
