"""Code pack: AST rules enforcing the repository's own invariants.

Run as ``python -m repro.lint --self``, these rules pin down design
decisions that live nowhere in the type system:

* **EZC101** — no wall-clock reads (``time.time``, ``datetime.now``,
  ...) in *deterministic* modules: the batch cache/fingerprints, the
  service audit log and the JSONL writers must produce byte-identical
  output run over run, so only ``time.monotonic``/``perf_counter``
  (durations, never timestamps) are allowed there;
* **EZC102** — no blocking calls (``time.sleep``, synchronous
  ``open``/``subprocess``) lexically inside ``async def`` bodies of
  :mod:`repro.service`: one blocked coroutine stalls every connection
  on the loop;
* **EZC103** — no mutable default arguments, repository-wide;
* **EZC104** — the fingerprint drift guard: every
  :class:`~repro.scheduler.config.SchedulerConfig` field must appear
  in the cache fingerprint's ``"scheduler"`` section (or in the
  explicit exempt list), and the section must name only real fields.
  A config knob that silently misses the fingerprint collides cache
  keys across semantically different searches — the PR 4 engine-field
  bug, enforced as a rule forever.

Rules anchor on a *virtual path* (the file's path relative to the
source root, e.g. ``repro/batch/cache.py``) so the fixture corpus
under ``tests/lint_fixtures/`` can impersonate any module with a
``# lint-module: repro/service/example.py`` directive.  Findings are
suppressed per line by the ``# lint: allow CODE`` directive (see
:mod:`repro.lint.diagnostics`).
"""

from __future__ import annotations

import ast
import os
import re

from repro.lint.diagnostics import (
    ERROR,
    Diagnostic,
    allowed_codes_by_line,
)

#: Modules whose output must be run-to-run deterministic: fingerprints
#: and caches, the batch JSONL writers, the service audit log, the
#: observability sinks, and the spec codecs they all hash.
DETERMINISTIC_PREFIXES = (
    "repro/batch/",
    "repro/service/",
    "repro/obs/",
    "repro/spec/",
)

#: The asyncio service: coroutine bodies here must never block.
SERVICE_PREFIX = "repro/service/"

#: Calls that read the wall clock (EZC101).  ``time.monotonic`` and
#: ``time.perf_counter`` are deliberately absent: durations are fine,
#: timestamps are not.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Calls that block the event loop when awaited code runs them
#: (EZC102).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "socket.create_connection",
    }
)

#: Default-argument constructors that create shared mutable state
#: (EZC103), beyond the literal ``[]``/``{}``/``set()`` forms.
MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
    }
)

#: SchedulerConfig fields deliberately excluded from the cache
#: fingerprint: pure observability, no effect on any verdict or stat.
FINGERPRINT_EXEMPT_FIELDS = frozenset({"trace_jsonl", "progress"})

#: ``# lint-module: repro/...`` — fixture files impersonate a module.
#: Anchored to the line start so prose mentioning the directive (like
#: this comment) never triggers it.
MODULE_DIRECTIVE = re.compile(
    r"^#\s*lint-module:\s*(\S+)", re.MULTILINE
)
#: ``# lint-fingerprint-config: sibling.py`` — fixture files pair a
#: fake cache module with a fake config module for the drift rule.
DRIFT_DIRECTIVE = re.compile(
    r"^#\s*lint-fingerprint-config:\s*(\S+)", re.MULTILINE
)
#: ``# expect: EZC101, EZC103`` — seeded-violation markers.
EXPECT_DIRECTIVE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name → dotted origin, from the module's import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve a call target to its dotted origin name, if nameable."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class _CodeVisitor(ast.NodeVisitor):
    """Single-pass visitor driving EZC101/EZC102/EZC103."""

    def __init__(
        self,
        virtual_path: str,
        aliases: dict[str, str],
    ) -> None:
        self.virtual_path = virtual_path
        self.aliases = aliases
        self.deterministic = virtual_path.startswith(
            DETERMINISTIC_PREFIXES
        )
        self.service = virtual_path.startswith(SERVICE_PREFIX)
        self.async_depth = 0
        self.diagnostics: list[Diagnostic] = []

    # -- function scopes ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        depth, self.async_depth = self.async_depth, 0
        self.generic_visit(node)
        self.async_depth = depth

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._check_defaults(node)
        self.async_depth += 1
        self.generic_visit(node)
        self.async_depth -= 1

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> None:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set)
            ) or (
                isinstance(default, ast.Call)
                and _dotted(default.func, self.aliases)
                in MUTABLE_FACTORIES
            )
            if mutable:
                name = getattr(node, "name", "<lambda>")
                self.diagnostics.append(
                    Diagnostic(
                        code="EZC103",
                        severity=ERROR,
                        message=(
                            f"mutable default argument in "
                            f"{name!r}: the default is shared across "
                            "every call"
                        ),
                        hint="default to None and create inside",
                        file=self.virtual_path,
                        line=default.lineno,
                    )
                )

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target = _dotted(node.func, self.aliases)
        if target is not None:
            if self.deterministic and target in WALL_CLOCK_CALLS:
                self.diagnostics.append(
                    Diagnostic(
                        code="EZC101",
                        severity=ERROR,
                        message=(
                            f"wall-clock call {target}() in "
                            "deterministic module "
                            f"{self.virtual_path!r}: output must be "
                            "byte-identical run over run"
                        ),
                        hint=(
                            "use time.monotonic for durations, or "
                            "allowlist with a justification"
                        ),
                        file=self.virtual_path,
                        line=node.lineno,
                    )
                )
            if (
                self.service
                and self.async_depth > 0
                and target in BLOCKING_CALLS
            ):
                self.diagnostics.append(
                    Diagnostic(
                        code="EZC102",
                        severity=ERROR,
                        message=(
                            f"blocking call {target}() inside a "
                            "repro.service coroutine: it stalls every "
                            "connection on the event loop"
                        ),
                        hint=(
                            "await an async equivalent or move the "
                            "work to an executor"
                        ),
                        file=self.virtual_path,
                        line=node.lineno,
                    )
                )
        self.generic_visit(node)


def lint_source(source: str, virtual_path: str) -> list[Diagnostic]:
    """Run the per-file code rules over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [
            Diagnostic(
                code="EZC100",
                severity=ERROR,
                message=f"file does not parse: {err.msg}",
                file=virtual_path,
                line=err.lineno or 0,
            )
        ]
    visitor = _CodeVisitor(virtual_path, _import_aliases(tree))
    visitor.visit(tree)
    allowed = allowed_codes_by_line(source)
    return [
        diagnostic
        for diagnostic in visitor.diagnostics
        if diagnostic.code not in allowed.get(diagnostic.line, ())
    ]


# ---------------------------------------------------------------------------
# EZC104: the fingerprint drift guard
# ---------------------------------------------------------------------------
def _config_fields(tree: ast.AST, class_name: str) -> list[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                statement.target.id
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and not statement.target.id.startswith("_")
            ]
    return []


def _section_keys(
    tree: ast.AST, function_name: str, section: str
) -> tuple[list[str], int] | None:
    """Keys of the ``section`` dict literal inside ``function_name``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == function_name
        ):
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Dict):
                    continue
                for key, value in zip(inner.keys, inner.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == section
                        and isinstance(value, ast.Dict)
                    ):
                        return (
                            [
                                entry.value
                                for entry in value.keys
                                if isinstance(entry, ast.Constant)
                            ],
                            value.lineno,
                        )
    return None


def fingerprint_drift(
    config_path: str,
    cache_path: str,
    config_class: str = "SchedulerConfig",
    fingerprint_function: str = "job_fingerprint",
    section: str = "scheduler",
    exempt: frozenset[str] = FINGERPRINT_EXEMPT_FIELDS,
) -> list[Diagnostic]:
    """Cross-check config dataclass fields against the fingerprint.

    Reported against ``cache_path`` (the fingerprint is what must
    follow the config, not the other way around).
    """
    with open(config_path, encoding="utf-8") as handle:
        config_tree = ast.parse(handle.read())
    with open(cache_path, encoding="utf-8") as handle:
        cache_source = handle.read()
    cache_tree = ast.parse(cache_source)
    fields = _config_fields(config_tree, config_class)
    found = _section_keys(cache_tree, fingerprint_function, section)
    anchor = os.path.basename(cache_path)
    if not fields or found is None:
        return [
            Diagnostic(
                code="EZC104",
                severity=ERROR,
                message=(
                    f"fingerprint drift guard cannot see "
                    f"{config_class} fields or the "
                    f"{fingerprint_function}() {section!r} section"
                ),
                hint="keep both as plain literals the guard can parse",
                file=anchor,
            )
        ]
    keys, line = found
    diagnostics: list[Diagnostic] = []
    for name in fields:
        if name not in keys and name not in exempt:
            diagnostics.append(
                Diagnostic(
                    code="EZC104",
                    severity=ERROR,
                    message=(
                        f"{config_class}.{name} is missing from the "
                        f"{section!r} fingerprint section: two "
                        "configs differing only in it would collide "
                        "on one cache key"
                    ),
                    hint=(
                        "add the field to the fingerprint (and bump "
                        "the cache format version) or exempt it "
                        "explicitly"
                    ),
                    file=anchor,
                    line=line,
                )
            )
    for name in keys:
        if name not in fields:
            diagnostics.append(
                Diagnostic(
                    code="EZC104",
                    severity=ERROR,
                    message=(
                        f"fingerprint {section!r} section lists "
                        f"{name!r}, which is not a {config_class} "
                        "field"
                    ),
                    hint="remove the stale key from the fingerprint",
                    file=anchor,
                    line=line,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# File and tree drivers
# ---------------------------------------------------------------------------
def virtual_path_of(path: str, root: str | None = None) -> str:
    """The rule-anchoring path: directive override, else root-relative."""
    with open(path, encoding="utf-8") as handle:
        head = handle.read(4096)
    directive = MODULE_DIRECTIVE.search(head)
    if directive:
        return directive.group(1)
    if root is not None:
        return os.path.relpath(path, root).replace(os.sep, "/")
    return os.path.basename(path)


def lint_file(path: str, root: str | None = None) -> list[Diagnostic]:
    """Per-file rules plus any directive-declared drift pairing."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    diagnostics = lint_source(source, virtual_path_of(path, root))
    drift = DRIFT_DIRECTIVE.search(source)
    if drift:
        sibling = os.path.join(os.path.dirname(path), drift.group(1))
        diagnostics.extend(fingerprint_drift(sibling, path))
    return diagnostics


def lint_tree(root: str) -> list[Diagnostic]:
    """Lint every ``*.py`` under ``root`` plus the repo drift guard.

    ``root`` is the import root (the directory holding ``repro/``),
    so virtual paths come out as ``repro/batch/cache.py``.
    """
    diagnostics: list[Diagnostic] = []
    for directory, _subdirs, files in sorted(os.walk(root)):
        for name in sorted(files):
            if name.endswith(".py"):
                diagnostics.extend(
                    lint_file(os.path.join(directory, name), root)
                )
    config_path = os.path.join(root, "repro", "scheduler", "config.py")
    cache_path = os.path.join(root, "repro", "batch", "cache.py")
    if os.path.exists(config_path) and os.path.exists(cache_path):
        diagnostics.extend(fingerprint_drift(config_path, cache_path))
    return diagnostics


# ---------------------------------------------------------------------------
# Seeded-violation fixtures: every rule must fire where planted
# ---------------------------------------------------------------------------
def expected_codes(source: str) -> set[tuple[int, str]]:
    """``(line, code)`` pairs declared by ``# expect:`` markers."""
    expected: set[tuple[int, str]] = set()
    for number, line in enumerate(source.splitlines(), start=1):
        marker = EXPECT_DIRECTIVE.search(line)
        if marker:
            for code in marker.group(1).split(","):
                code = code.strip()
                if code:
                    expected.add((number, code))
    return expected


def check_fixture(path: str) -> list[str]:
    """Compare a fixture's findings against its ``# expect:`` markers.

    Returns human-readable problems; empty means the file produced
    exactly its planted diagnostics — every rule fired, and nothing
    else did.
    """
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    expected = expected_codes(source)
    found = {
        (diagnostic.line, diagnostic.code)
        for diagnostic in lint_file(path)
    }
    name = os.path.basename(path)
    problems = [
        f"{name}:{line}: expected {code} was not reported"
        for line, code in sorted(expected - found)
    ]
    problems.extend(
        f"{name}:{line}: unexpected {code} reported"
        for line, code in sorted(found - expected)
    )
    return problems


def check_fixture_dir(directory: str) -> list[str]:
    """Run :func:`check_fixture` over every ``*.py`` in a directory."""
    problems: list[str] = []
    names = [
        name
        for name in sorted(os.listdir(directory))
        if name.endswith(".py")
    ]
    if not names:
        return [f"{directory}: no fixture files found"]
    for name in names:
        problems.extend(check_fixture(os.path.join(directory, name)))
    return problems
