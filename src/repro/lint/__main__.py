"""``python -m repro.lint`` — the code pack's command line.

Three modes:

* ``--self [--root src]`` — lint the whole source tree (per-file
  rules plus the fingerprint drift guard); exit 1 on *any*
  diagnostic, so CI can require a clean repo;
* ``--self-test DIR`` — run the seeded-violation fixture corpus:
  every ``# expect:`` marker must fire and nothing unexpected may,
  proving each rule both catches its violation and stays quiet
  otherwise;
* ``FILE ...`` — lint individual files (fixtures resolve their
  ``# lint-module:`` impersonation directives as usual).

Spec linting lives in the main CLI: ``ezrt lint spec.xml``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.lint.coderules import (
    check_fixture_dir,
    lint_file,
    lint_tree,
)
from repro.lint.diagnostics import Diagnostic, format_report


def _default_root() -> str:
    """The checkout's ``src`` directory, resolved from this package."""
    package = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(package))


def _emit(diagnostics: list[Diagnostic], as_json: bool) -> None:
    if as_json:
        print(
            json.dumps(
                [d.to_dict() for d in diagnostics],
                sort_keys=True,
                indent=2,
            )
        )
    elif diagnostics:
        print(format_report(diagnostics))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="repository-invariant linter (code pack)",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="python files to lint individually",
    )
    parser.add_argument(
        "--self",
        action="store_true",
        dest="self_lint",
        help="lint the source tree (zero diagnostics required)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="source root for --self (default: the installed src/)",
    )
    parser.add_argument(
        "--self-test",
        metavar="DIR",
        default=None,
        help="verify the seeded-violation fixture corpus in DIR",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    if args.self_test is not None:
        problems = check_fixture_dir(args.self_test)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(
                f"fixture self-test FAILED: {len(problems)} problem(s)",
                file=sys.stderr,
            )
            return 1
        print(f"fixture self-test ok: {args.self_test}")
        return 0

    if args.self_lint:
        root = args.root or _default_root()
        diagnostics = lint_tree(root)
        _emit(diagnostics, args.json)
        if diagnostics:
            print(
                f"self-lint FAILED: {len(diagnostics)} diagnostic(s) "
                f"under {root}",
                file=sys.stderr,
            )
            return 1
        if not args.json:
            print(f"self-lint ok: {root}")
        return 0

    if not args.files:
        parser.error("pass files, --self or --self-test DIR")
    diagnostics = []
    for path in args.files:
        diagnostics.extend(lint_file(path))
    _emit(diagnostics, args.json)
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
