"""The shared diagnostic model of :mod:`repro.lint`.

Every rule in both packs — the spec pack
(:mod:`repro.lint.specrules`) and the code pack
(:mod:`repro.lint.coderules`) — reports findings as
:class:`Diagnostic` values: a *stable code*, a severity, a
human-readable message, the location (a model element for spec rules,
a ``file:line`` for code rules) and a fix hint.  Codes are API: tests,
CI gates, the service's 422 payloads and allowlist comments all match
on them, so a code is never renamed or reused once released.

Code ranges
-----------

========  ==========================================================
``EZS1xx``  specification rules (timing, relations, infeasibility)
``EZT2xx``  compiled time-Petri-net rules (structure, token caps)
``EZG3xx``  engine/configuration compatibility rules
``EZC1xx``  source-code rules (``python -m repro.lint --self``)
========  ==========================================================

Allowlisting
------------

A code-pack diagnostic is suppressed by an inline comment on the
flagged line or the line directly above it::

    # lint: allow EZC101 — cross-process mtime aging
    age = max(0.0, time.time() - os.path.getmtime(path))

The justification text after the code is mandatory by convention (the
comment documents *why* the invariant does not apply), but only the
code itself is matched.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)

#: ``# lint: allow EZC101`` — the inline suppression directive.
ALLOW_DIRECTIVE = re.compile(r"#\s*lint:\s*allow\s+(EZ[A-Z]\d{3})")


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: stable rule identifier (``EZS101``, ``EZC103``, ...).
        severity: ``"error"`` (gates verdicts / fails CI) or
            ``"warning"`` (surfaced, never gates).
        message: human-readable statement of the finding.
        hint: how to fix or silence it (may be empty).
        element: the model element the spec pack anchors to
            (``task 'A'``, ``transition 't_x'``); empty for code
            diagnostics.
        file: source path the code pack anchors to; empty for spec
            diagnostics.
        line: 1-based source line for code diagnostics, 0 otherwise.
    """

    code: str
    severity: str
    message: str
    hint: str = ""
    element: str = ""
    file: str = ""
    line: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )

    @property
    def location(self) -> str:
        """Where the finding anchors: element, ``file:line`` or ``-``."""
        if self.element:
            return self.element
        if self.file:
            return f"{self.file}:{self.line}" if self.line else self.file
        return "-"

    def to_dict(self) -> dict[str, object]:
        """Machine-readable payload (service 422s, ``--json`` output)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "element": self.element,
            "file": self.file,
            "line": self.line,
        }

    def format(self) -> str:
        """One-line human rendering: ``CODE severity location: message``."""
        text = f"{self.code} {self.severity} {self.location}: {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text


def errors(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset (what gates verdicts)."""
    return [d for d in diagnostics if d.severity == ERROR]


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity == ERROR for d in diagnostics)


def format_report(diagnostics: list[Diagnostic]) -> str:
    """Multi-line report, one :meth:`Diagnostic.format` line each."""
    return "\n".join(d.format() for d in diagnostics)


def allowed_codes_by_line(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the codes allowlisted *for* them.

    A directive on line ``n`` suppresses matching diagnostics on line
    ``n`` and line ``n + 1``, so the directive can share the flagged
    line or sit in a comment directly above it.
    """
    allowed: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        for code in ALLOW_DIRECTIVE.findall(line):
            allowed.setdefault(number, set()).add(code)
            allowed.setdefault(number + 1, set()).add(code)
    return allowed


@dataclass
class LintReport:
    """Aggregated outcome of one runner invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return errors(self.diagnostics)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def extend(self, more: list[Diagnostic]) -> None:
        self.diagnostics.extend(more)

    def format(self) -> str:
        return format_report(self.diagnostics)

    def to_dicts(self) -> list[dict[str, object]]:
        return [d.to_dict() for d in self.diagnostics]
