"""Spec pack: static diagnosis of specifications, nets and configs.

Three rule families, all pure functions returning
:class:`~repro.lint.diagnostics.Diagnostic` lists:

* **specification rules** (``EZS1xx``) — the well-formedness rules of
  :mod:`repro.spec.validation` re-surfaced with stable codes, plus
  *necessary-condition infeasibility*: cheap checks that prove a spec
  unschedulable without searching (processor/bus overutilisation,
  precedence chains that cannot meet a deadline).  These reuse the
  classical bounds of :mod:`repro.analysis.utilization`;
* **net rules** (``EZT2xx``) — structural checks on a compiled time
  Petri net: transitions that can never fire, places that can never be
  marked, token counts that threaten the packed kernel engine's
  ``uint16`` cap;
* **configuration rules** (``EZG3xx``) — engine/knob combinations the
  scheduler would reject at construction time, checkable on raw
  strings *before* a :class:`~repro.scheduler.config.SchedulerConfig`
  is built (so ``ezrt lint --engine stateclass --delay-mode full``
  can diagnose instead of crash).

:func:`presearch_diagnostics` is the fast-fail gate wired into
:func:`repro.scheduler.dfs.find_schedule`,
:meth:`repro.batch.engine.BatchEngine.run`,
:meth:`repro.batch.engine.SubmissionBridge.submit` and the service's
``POST /jobs``: error-severity findings there mean the search verdict
is already known to be infeasible, so none of those layers spends pool
or search time on the spec.  It deliberately runs only the O(tasks)
rules — the structural net rules need a compile and belong to
``ezrt lint``.
"""

from __future__ import annotations

from repro.analysis.utilization import necessary_feasible, total_utilization
from repro.lint.diagnostics import ERROR, WARNING, Diagnostic, has_errors
from repro.spec.model import EzRTSpec
from repro.spec.timing import instance_count, schedule_period
from repro.spec.validation import validate_spec
from repro.tpn.dbm import MAX_BOUND
from repro.tpn.interval import INF
from repro.tpn.kernel import MAX_TOKENS
from repro.tpn.net import CompiledNet

#: Utilisation slack below which ``U > capacity`` is treated as noise
#: (mirrors :func:`repro.analysis.utilization.necessary_feasible`).
_EPSILON = 1e-12

#: Generic "specification invalid" fallback for validator messages the
#: classifier has no dedicated code for (future validator rules land
#: here until they get one).
GENERIC_INVALID = "EZS100"


# ---------------------------------------------------------------------------
# Validation bridge: stable codes for repro.spec.validation messages
# ---------------------------------------------------------------------------
def classify_problem(problem: str) -> str:
    """Map a :func:`repro.spec.validation.validate_spec` message to its
    stable diagnostic code.

    The mapping is by message shape; ``tests/test_validation.py``
    asserts every validator error path classifies to the right code,
    so validator wording and lint codes cannot drift apart.
    """
    if "requires c <= d <= p" in problem:
        return "EZS103"
    if "release window" in problem:
        return "EZS104"
    if problem.startswith("duplicate"):
        return "EZS107"
    if (
        "precedes unknown task" in problem
        or "precedes itself" in problem
        or "excludes unknown task" in problem
        or "excludes itself" in problem
        or "is not symmetric" in problem
    ):
        return "EZS108"
    if "precedence cycle" in problem or (
        problem.startswith("precedence")
        and "different periods" in problem
    ):
        return "EZS109"
    if (
        problem.startswith("message")
        or "unknown sender" in problem
        or "unknown receiver" in problem
        or "precedes unknown message" in problem
    ):
        return "EZS110"
    if "undeclared processor" in problem:
        return "EZS111"
    return GENERIC_INVALID


def validation_diagnostics(spec: EzRTSpec) -> list[Diagnostic]:
    """Well-formedness problems as coded diagnostics (all errors)."""
    return [
        Diagnostic(
            code=classify_problem(problem),
            severity=ERROR,
            message=problem,
            hint="fix the specification; see docs/linting.md",
            element=f"spec {spec.name!r}",
        )
        for problem in validate_spec(spec)
    ]


# ---------------------------------------------------------------------------
# Necessary-condition infeasibility (the fast-fail gate's rules)
# ---------------------------------------------------------------------------
def _utilization_diagnostics(spec: EzRTSpec) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    processors = spec.processor_names() or ("proc0",)
    # with one processor the per-processor loop below reports the same
    # overload with a sharper element, so the global bound would only
    # duplicate it
    if len(processors) > 1 and not necessary_feasible(
        spec, processors=len(processors)
    ):
        diagnostics.append(
            Diagnostic(
                code="EZS101",
                severity=ERROR,
                message=(
                    f"total utilisation "
                    f"{total_utilization(spec):.3f} exceeds the "
                    f"{len(processors)} available processor(s); no "
                    "schedule can exist"
                ),
                hint=(
                    "lower computation times, raise periods or add "
                    "processors"
                ),
                element=f"spec {spec.name!r}",
            )
        )
    by_processor: dict[str, float] = {}
    for task in spec.tasks:
        by_processor[task.processor] = (
            by_processor.get(task.processor, 0.0) + task.utilization
        )
    for processor, load in sorted(by_processor.items()):
        if load > 1.0 + _EPSILON:
            diagnostics.append(
                Diagnostic(
                    code="EZS101",
                    severity=ERROR,
                    message=(
                        f"utilisation {load:.3f} on processor "
                        f"{processor!r} exceeds 1.0; its task set is "
                        "unschedulable on any policy"
                    ),
                    hint=(
                        "move tasks to another processor or relax "
                        "their (c, p)"
                    ),
                    element=f"processor {processor!r}",
                )
            )
    by_bus: dict[str, float] = {}
    known = set(spec.task_names())
    for message in spec.messages:
        if message.sender is None or message.sender not in known:
            continue
        period = spec.task(message.sender).period
        by_bus[message.bus] = (
            by_bus.get(message.bus, 0.0)
            + message.communication / period
        )
    for bus, load in sorted(by_bus.items()):
        if load > 1.0 + _EPSILON:
            diagnostics.append(
                Diagnostic(
                    code="EZS102",
                    severity=ERROR,
                    message=(
                        f"utilisation {load:.3f} on bus {bus!r} "
                        "exceeds 1.0; the transfers cannot all fit "
                        "in one hyper-period"
                    ),
                    hint=(
                        "split messages across buses or shorten "
                        "transfers"
                    ),
                    element=f"bus {bus!r}",
                )
            )
    return diagnostics


def _chain_diagnostics(spec: EzRTSpec) -> list[Diagnostic]:
    """EZS106: a precedence chain's earliest completion beats no
    deadline.

    The bound ignores resource contention entirely — it is the DAG
    longest path of ``phase + release`` starts, computation times and
    message transfer delays — so exceeding the deadline is a proof of
    infeasibility, never a heuristic.  Validation guarantees matched
    periods along precedence edges, so checking the first instance of
    every task suffices (later instances shift both sides by ``k·p``).
    """
    known = set(spec.task_names())
    predecessors: dict[str, list[tuple[str, int]]] = {
        name: [] for name in known
    }
    for before, after in spec.precedence_pairs():
        if before in known and after in known:
            predecessors[after].append((before, 0))
    for message in spec.messages:
        if (
            message.sender in known
            and message.precedes is not None
            and message.precedes in known
        ):
            predecessors[message.precedes].append(
                (
                    message.sender,
                    message.communication + message.grant_bus,
                )
            )
    completion: dict[str, float] = {}
    visiting: set[str] = set()

    def earliest_completion(name: str) -> float:
        if name in completion:
            return completion[name]
        if name in visiting:  # cycle: validation reports it (EZS109)
            return 0.0
        visiting.add(name)
        task = spec.task(name)
        start = float(task.phase + task.release)
        for before, delay in predecessors[name]:
            start = max(start, earliest_completion(before) + delay)
        visiting.discard(name)
        completion[name] = start + task.computation
        return completion[name]

    diagnostics: list[Diagnostic] = []
    for task in spec.tasks:
        finish = earliest_completion(task.name)
        if finish > task.phase + task.deadline + _EPSILON:
            diagnostics.append(
                Diagnostic(
                    code="EZS106",
                    severity=ERROR,
                    message=(
                        f"precedence chain forces earliest completion "
                        f"{finish:g} past the deadline "
                        f"{task.phase + task.deadline} of task "
                        f"{task.name!r}; no schedule can exist"
                    ),
                    hint=(
                        "shorten the chain's computation/transfer "
                        "times or extend the deadline"
                    ),
                    element=f"task {task.name!r}",
                )
            )
    return diagnostics


def _laxity_diagnostics(spec: EzRTSpec) -> list[Diagnostic]:
    """EZS105: zero-slack tasks (feasible, but brittle to jitter)."""
    return [
        Diagnostic(
            code="EZS105",
            severity=WARNING,
            message=(
                f"task {task.name!r} has zero laxity (d - r - c = 0): "
                "its only admissible start time is its release"
            ),
            hint="any dispatcher overhead makes this deadline miss",
            element=f"task {task.name!r}",
        )
        for task in spec.tasks
        if task.laxity == 0
    ]


def infeasibility_diagnostics(spec: EzRTSpec) -> list[Diagnostic]:
    """Necessary-condition infeasibility errors plus slack warnings.

    Assumes a validation-clean spec (unknown relation targets would
    raise); callers holding unvalidated specs run
    :func:`validation_diagnostics` first and stop on its errors.
    """
    diagnostics = _utilization_diagnostics(spec)
    diagnostics.extend(_chain_diagnostics(spec))
    diagnostics.extend(_laxity_diagnostics(spec))
    return diagnostics


def token_cap_diagnostics(
    spec: EzRTSpec, engine: str | None = None
) -> list[Diagnostic]:
    """EZT203 (spec level): instance counts near the kernel token cap.

    A task with ``N = PS / p`` instances marks instance-counting
    places with up to ``N`` tokens over the hyper-period; the packed
    kernel engine stores markings as ``uint16`` words and refuses
    loudly mid-search past :data:`repro.tpn.kernel.MAX_TOKENS`.  This
    surfaces the overflow *before* the search (and before a compile
    that would unroll the instances).
    """
    if not spec.tasks:
        return []
    period = schedule_period(spec)
    diagnostics: list[Diagnostic] = []
    for task in spec.tasks:
        instances = instance_count(task, period)
        if instances > MAX_TOKENS:
            kernel = engine == "kernel"
            diagnostics.append(
                Diagnostic(
                    code="EZT203",
                    severity=WARNING,
                    message=(
                        f"task {task.name!r} has {instances} instances "
                        f"in the hyper-period {period}, beyond the "
                        f"packed kernel's {MAX_TOKENS}-token place cap"
                        + (
                            "; the kernel engine will abort mid-search"
                            if kernel
                            else ""
                        )
                    ),
                    hint=(
                        "harmonise the periods to shrink the "
                        "hyper-period, or use a non-kernel engine"
                    ),
                    element=f"task {task.name!r}",
                )
            )
    return diagnostics


def dbm_bound_diagnostics(
    spec: EzRTSpec, engine: str | None = None
) -> list[Diagnostic]:
    """EZT204 (spec level): timing magnitudes near the DBM bound cap.

    The packed DBM core of the dense-time state-class engine stores
    difference bounds in native 64-bit words with
    :data:`repro.tpn.dbm.MAX_BOUND` as the static-interval cap — the
    headroom that keeps closure sums provably below the ``DINF``
    sentinel.  Every compiled transition interval is built from task
    timings (phases, deadlines, periods) and message transfer times,
    so a spec field past the cap compiles into an interval the
    :class:`~repro.tpn.dbm.DbmEngine` refuses at construction.  This
    surfaces the overflow *before* the compile, mirroring the
    EZT203 token-cap rule.
    """
    if not spec.tasks:
        return []
    stateclass = engine == "stateclass"
    tail = (
        "; the state-class engine will refuse the net"
        if stateclass
        else ""
    )
    hint = (
        "rescale the time unit (divide all timings by a common "
        "factor) or use a discrete-time engine"
    )
    diagnostics: list[Diagnostic] = []
    for task in spec.tasks:
        worst = max(task.period, task.phase + task.deadline)
        if worst > MAX_BOUND:
            diagnostics.append(
                Diagnostic(
                    code="EZT204",
                    severity=WARNING,
                    message=(
                        f"task {task.name!r} has timing magnitude "
                        f"{worst}, beyond the packed DBM's "
                        f"{MAX_BOUND} bound cap" + tail
                    ),
                    hint=hint,
                    element=f"task {task.name!r}",
                )
            )
    for message in spec.messages:
        transfer = message.communication + message.grant_bus
        if transfer > MAX_BOUND:
            diagnostics.append(
                Diagnostic(
                    code="EZT204",
                    severity=WARNING,
                    message=(
                        f"message {message.name!r} has transfer time "
                        f"{transfer}, beyond the packed DBM's "
                        f"{MAX_BOUND} bound cap" + tail
                    ),
                    hint=hint,
                    element=f"message {message.name!r}",
                )
            )
    if not diagnostics:
        # individually-small periods can still multiply into a
        # hyper-period past the cap (co-prime periods); the unrolled
        # instance offsets inherit that magnitude
        period = schedule_period(spec)
        if period > MAX_BOUND:
            diagnostics.append(
                Diagnostic(
                    code="EZT204",
                    severity=WARNING,
                    message=(
                        f"hyper-period {period} exceeds the packed "
                        f"DBM's {MAX_BOUND} bound cap" + tail
                    ),
                    hint=(
                        "harmonise the periods to shrink the "
                        "hyper-period, or use a discrete-time engine"
                    ),
                    element=f"spec {spec.name!r}",
                )
            )
    return diagnostics


def presearch_diagnostics(
    spec: EzRTSpec, engine: str | None = None
) -> list[Diagnostic]:
    """The fast-fail gate: cheap diagnostics run before every search.

    Error severity ⇒ the spec is provably infeasible and the caller
    should return a diagnosed infeasible verdict without searching;
    warnings ride along on the result.  O(tasks + relations): never
    compiles, never searches.

    Ill-formed specs are deliberately *not* gated: an invalid spec is
    the composer's error to raise (status ``error``, not a feasibility
    verdict), and the infeasibility rules assume validity — so the
    gate stands aside and lets the pipeline fail the authoritative
    way.  ``ezrt lint`` reports such specs through
    :func:`validation_diagnostics` instead.
    """
    if validate_spec(spec):
        return []
    diagnostics = infeasibility_diagnostics(spec)
    if engine == "kernel":
        diagnostics.extend(token_cap_diagnostics(spec, engine=engine))
    elif engine == "stateclass":
        diagnostics.extend(dbm_bound_diagnostics(spec, engine=engine))
    return diagnostics


# ---------------------------------------------------------------------------
# Net rules (EZT2xx): structural checks on a compiled TPN
# ---------------------------------------------------------------------------
def net_diagnostics(
    net: CompiledNet, engine: str | None = None
) -> list[Diagnostic]:
    """Structurally dead transitions, unreachable places, token caps.

    Potential reachability is the usual monotone over-approximation:
    a place is *potentially markable* if initially marked or in the
    postset of a potentially fireable transition; a transition is
    *potentially fireable* once every preset place is potentially
    markable.  Transitions outside the fixpoint can never fire in any
    run (EZT201); unmarkable places are dead weight (EZT202).
    """
    markable = {
        index for index, tokens in enumerate(net.m0) if tokens > 0
    }
    fireable: set[int] = set()
    changed = True
    while changed:
        changed = False
        for index in range(len(net.transition_names)):
            if index in fireable:
                continue
            if all(place in markable for place, _weight in net.pre[index]):
                fireable.add(index)
                changed = True
                for place, _weight in net.post[index]:
                    markable.add(place)
    diagnostics: list[Diagnostic] = []
    for index, name in enumerate(net.transition_names):
        if index not in fireable:
            diagnostics.append(
                Diagnostic(
                    code="EZT201",
                    severity=ERROR,
                    message=(
                        f"transition {name!r} is structurally dead: "
                        "some preset place can never be marked"
                    ),
                    hint=(
                        "remove the transition or supply its missing "
                        "input tokens"
                    ),
                    element=f"transition {name!r}",
                )
            )
    for index, name in enumerate(net.place_names):
        if index not in markable:
            diagnostics.append(
                Diagnostic(
                    code="EZT202",
                    severity=WARNING,
                    message=(
                        f"place {name!r} can never be marked: no "
                        "initial token and no fireable producer"
                    ),
                    hint="dead structure; remove it or feed it",
                    element=f"place {name!r}",
                )
            )
    for index, tokens in enumerate(net.m0):
        if tokens > MAX_TOKENS:
            diagnostics.append(
                Diagnostic(
                    code="EZT203",
                    severity=ERROR if engine == "kernel" else WARNING,
                    message=(
                        f"place {net.place_names[index]!r} starts with "
                        f"{tokens} tokens, beyond the packed kernel's "
                        f"{MAX_TOKENS}-token cap"
                    ),
                    hint=(
                        "shrink the initial marking or use a "
                        "non-kernel engine"
                    ),
                    element=f"place {net.place_names[index]!r}",
                )
            )
    for index, name in enumerate(net.transition_names):
        lft = net.lft[index]
        worst = net.eft[index] if lft == INF else max(
            net.eft[index], int(lft)
        )
        if worst > MAX_BOUND:
            diagnostics.append(
                Diagnostic(
                    code="EZT204",
                    severity=(
                        ERROR if engine == "stateclass" else WARNING
                    ),
                    message=(
                        f"transition {name!r} has static interval "
                        f"bound {worst}, beyond the packed DBM's "
                        f"{MAX_BOUND} bound cap"
                    ),
                    hint=(
                        "rescale the time unit or use a "
                        "discrete-time engine"
                    ),
                    element=f"transition {name!r}",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Configuration rules (EZG3xx): engine/knob compatibility on raw strings
# ---------------------------------------------------------------------------
def config_diagnostics(
    engine: str | None = None,
    delay_mode: str | None = None,
    parallel: int = 0,
    parallel_mode: str | None = None,
) -> list[Diagnostic]:
    """Engine/configuration incompatibilities, pre-construction.

    Accepts raw strings (``None`` = knob not set) so callers can lint
    a configuration *before* :class:`SchedulerConfig.__post_init__`
    gets the chance to raise.
    """
    from repro.scheduler.config import (
        DELAY_MODES,
        ENGINES,
        PARALLEL_MODES,
    )

    diagnostics: list[Diagnostic] = []
    for label, value, options in (
        ("engine", engine, ENGINES),
        ("delay_mode", delay_mode, DELAY_MODES),
        ("parallel_mode", parallel_mode, PARALLEL_MODES),
    ):
        if value is not None and value not in options:
            diagnostics.append(
                Diagnostic(
                    code="EZG303",
                    severity=ERROR,
                    message=(
                        f"unknown {label} {value!r}; expected one of "
                        f"{options}"
                    ),
                    hint=f"pick a supported {label}",
                    element=f"config.{label}",
                )
            )
    if engine == "stateclass" and delay_mode not in (None, "earliest"):
        diagnostics.append(
            Diagnostic(
                code="EZG301",
                severity=ERROR,
                message=(
                    f"delay_mode {delay_mode!r} has no effect on the "
                    "dense-time state-class engine: a state class "
                    "already covers every dense firing delay"
                ),
                hint="keep the default delay_mode='earliest'",
                element="config.delay_mode",
            )
        )
    if (
        parallel >= 2
        and parallel_mode == "worksteal"
        and engine not in (None, "incremental")
    ):
        diagnostics.append(
            Diagnostic(
                code="EZG302",
                severity=ERROR,
                message=(
                    f"work-stealing mode cannot drive the {engine!r} "
                    "engine: the shared visited filter runs on the "
                    "incremental engine's FastState hashes"
                ),
                hint=(
                    "use engine='incremental' or "
                    "parallel_mode='portfolio'"
                ),
                element="config.parallel_mode",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# The whole spec pack behind one call (what `ezrt lint` runs)
# ---------------------------------------------------------------------------
def lint_spec(
    spec: EzRTSpec,
    engine: str | None = None,
    delay_mode: str | None = None,
    parallel: int = 0,
    parallel_mode: str | None = None,
    compile_net: bool = True,
) -> list[Diagnostic]:
    """Run every spec-pack rule against one specification.

    Validation errors short-circuit the deeper rules (an ill-formed
    spec cannot be compiled or utilisation-analysed meaningfully), and
    a token-cap finding skips the compile (unrolling the offending
    hyper-period is exactly the explosion being diagnosed).
    """
    diagnostics = validation_diagnostics(spec)
    if not has_errors(diagnostics):
        diagnostics.extend(infeasibility_diagnostics(spec))
        cap = token_cap_diagnostics(spec, engine=engine)
        diagnostics.extend(cap)
        diagnostics.extend(dbm_bound_diagnostics(spec, engine=engine))
        if compile_net and not cap and not has_errors(diagnostics):
            from repro.blocks.composer import compose

            diagnostics.extend(
                net_diagnostics(compose(spec).compiled(), engine=engine)
            )
    diagnostics.extend(
        config_diagnostics(
            engine=engine,
            delay_mode=delay_mode,
            parallel=parallel,
            parallel_mode=parallel_mode,
        )
    )
    return diagnostics
