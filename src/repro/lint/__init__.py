"""``repro.lint`` — static analysis for specs and for the codebase.

Two rule packs behind one diagnostic model:

* the **spec pack** (:mod:`repro.lint.specrules`) diagnoses
  specifications, compiled nets and scheduler configurations before
  any search runs — ``ezrt lint`` is its CLI, and its
  :func:`~repro.lint.specrules.presearch_diagnostics` subset gates
  :func:`repro.scheduler.dfs.find_schedule`, the batch engine and the
  service's ``POST /jobs``;
* the **code pack** (:mod:`repro.lint.coderules`) enforces repository
  invariants over the source tree itself — run it as
  ``python -m repro.lint --self``.

See ``docs/linting.md`` for the rule table and workflows.
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    LintReport,
    errors,
    format_report,
    has_errors,
)
from repro.lint.coderules import (
    check_fixture_dir,
    fingerprint_drift,
    lint_file,
    lint_source,
    lint_tree,
)
from repro.lint.specrules import (
    classify_problem,
    config_diagnostics,
    dbm_bound_diagnostics,
    infeasibility_diagnostics,
    lint_spec,
    net_diagnostics,
    presearch_diagnostics,
    token_cap_diagnostics,
    validation_diagnostics,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "LintReport",
    "check_fixture_dir",
    "classify_problem",
    "config_diagnostics",
    "dbm_bound_diagnostics",
    "errors",
    "fingerprint_drift",
    "format_report",
    "has_errors",
    "infeasibility_diagnostics",
    "lint_file",
    "lint_source",
    "lint_spec",
    "lint_tree",
    "net_diagnostics",
    "presearch_diagnostics",
    "token_cap_diagnostics",
    "validation_diagnostics",
]
