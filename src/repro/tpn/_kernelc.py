"""Optional compiled core of the packed kernel engine.

This module owns the native half of :mod:`repro.tpn.kernel`: a small C
translation unit (embedded below as a string, so the sdist needs no
extra data files) compiled on demand through cffi's API mode into a
shared object cached next to this package.  Everything degrades
gracefully — the kernel engine asks :func:`load` for the compiled
module and falls back to its pure-Python core whenever the answer is
``None``:

* ``EZRT_PURE=1`` in the environment force-disables the compiled core
  (CI runs the whole test suite once in this mode);
* a missing cffi, a missing C compiler, an unwritable cache directory
  or any other build/import failure is swallowed after recording the
  exception on :data:`LOAD_ERROR` for diagnostics.

The C core operates *in place* on the same packed buffers the Python
side owns (``array('H')`` marking and clock vectors), so
there is no per-state marshalling: one successor computation is two
buffer copies on the Python side plus a single foreign call.

Build caching: the shared object lands in ``_kernelc_build/<digest>/``
beside this file (or under the system temp directory when the package
is not writable), keyed by a digest of the C source, so editing the
source never picks up a stale binary and concurrent builders (pytest
workers, portfolio processes) can only race to produce identical
files — the final ``os.replace`` is atomic.

CI builds eagerly via ``python -m repro.tpn._kernelc``; see
``pyproject.toml``'s ``native`` extra for the cffi pin.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile

#: Last build/import failure, for diagnostics (``None`` = no failure).
LOAD_ERROR: Exception | None = None

#: Environment variable that force-disables the compiled core.
PURE_ENV = "EZRT_PURE"

_MODULE_NAME = "_ezrt_kernel"

# The foreign function surface, shared between ffi.cdef and the
# translation unit below.
CDEF = """
typedef struct kn_net kn_net;
kn_net *kn_net_new(int32_t num_places, int32_t num_transitions,
                   const int32_t *pre_off, const int32_t *pre_place,
                   const int32_t *pre_w,
                   const int32_t *delta_off, const int32_t *delta_place,
                   const int32_t *delta_d,
                   const int32_t *aff_off, const int32_t *aff_t,
                   const int32_t *pc_off, const int32_t *pc_t,
                   const int32_t *eft, const int32_t *lft,
                   const int32_t *prio, const uint8_t *flags);
void kn_net_free(kn_net *net);
uint64_t kn_hash(const kn_net *net, const uint16_t *mark,
                 const uint16_t *clk);
int32_t kn_successor(const kn_net *net, const uint16_t *old_mark,
                     const uint16_t *old_clk, uint16_t *mark,
                     uint16_t *clk, uint64_t *hash_io, int32_t t,
                     int32_t q, int32_t intermediate);
int32_t kn_candidates(const kn_net *net, const uint16_t *clk,
                      int32_t strict, int32_t partial_order,
                      int32_t *out, int32_t *reduced);
int32_t kn_window(const kn_net *net, const uint16_t *clk,
                  int32_t *out, int32_t *ceiling_out);
int32_t kn_expand(const kn_net *net, const uint16_t *clk,
                  int32_t strict, int32_t partial_order,
                  int32_t full, int32_t *out, int32_t cap,
                  int32_t *reduced);
"""

# The successor/firable/min-DUB inner loop over the packed buffers.
# Semantics are line-for-line the pure-Python core of
# repro.tpn.kernel.KernelEngine (which mirrors the checked reference
# engine of repro.tpn.state); the two are locked together by the
# native-vs-pure differential suite in tests/test_kernel_engine.py.
# DIS (0xFFFF) marks a disabled transition's clock; lft < 0 encodes an
# unbounded LFT; flag bits: 1 = immediate [0,0], 2 = deadline-miss,
# 4 = structurally conflict-free.
SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define KN_DIS 0xFFFFu
#define KN_INF_CEILING INT32_MAX

typedef struct kn_net {
    int32_t P, T;
    const int32_t *pre_off, *pre_place, *pre_w;
    const int32_t *delta_off, *delta_place, *delta_d;
    const int32_t *aff_off, *aff_t;
    const int32_t *pc_off, *pc_t;
    const int32_t *eft, *lft, *prio;
    const uint8_t *flags;
    uint16_t *scratch; /* P words: intermediate-marking reference */
    int32_t *cand;     /* 2T words: pre-expansion candidate pairs */
} kn_net;

kn_net *kn_net_new(int32_t num_places, int32_t num_transitions,
                   const int32_t *pre_off, const int32_t *pre_place,
                   const int32_t *pre_w,
                   const int32_t *delta_off, const int32_t *delta_place,
                   const int32_t *delta_d,
                   const int32_t *aff_off, const int32_t *aff_t,
                   const int32_t *pc_off, const int32_t *pc_t,
                   const int32_t *eft, const int32_t *lft,
                   const int32_t *prio, const uint8_t *flags)
{
    kn_net *net = (kn_net *)malloc(sizeof(kn_net));
    if (!net)
        return NULL;
    net->P = num_places;
    net->T = num_transitions;
    net->pre_off = pre_off;
    net->pre_place = pre_place;
    net->pre_w = pre_w;
    net->delta_off = delta_off;
    net->delta_place = delta_place;
    net->delta_d = delta_d;
    net->aff_off = aff_off;
    net->aff_t = aff_t;
    net->pc_off = pc_off;
    net->pc_t = pc_t;
    net->eft = eft;
    net->lft = lft;
    net->prio = prio;
    net->flags = flags;
    net->scratch = (uint16_t *)malloc(
        (num_places ? (size_t)num_places : 1) * sizeof(uint16_t));
    net->cand = (int32_t *)malloc(
        2 * (num_transitions ? (size_t)num_transitions : 1)
        * sizeof(int32_t));
    if (!net->scratch || !net->cand) {
        free(net->scratch);
        free(net->cand);
        free(net);
        return NULL;
    }
    return net;
}

void kn_net_free(kn_net *net)
{
    if (net) {
        free(net->scratch);
        free(net->cand);
        free(net);
    }
}

/* splitmix64 finalizer: the functional Zobrist key generator.  No
 * tables — the key of (kind, index, value) is the mix of one packed
 * word, identical to repro.tpn.kernel._mix on the Python side. */
static uint64_t kn_mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

static uint64_t kn_zm(int32_t p, uint32_t v)
{
    return kn_mix(((uint64_t)1 << 62) ^ ((uint64_t)p << 20) ^ v);
}

static uint64_t kn_zc(int32_t t, uint32_t v)
{
    return kn_mix(((uint64_t)2 << 62) ^ ((uint64_t)t << 20) ^ v);
}

uint64_t kn_hash(const kn_net *net, const uint16_t *mark,
                 const uint16_t *clk)
{
    uint64_t h = 0;
    int32_t i;
    for (i = 0; i < net->P; i++)
        h ^= kn_zm(i, mark[i]);
    for (i = 0; i < net->T; i++)
        h ^= kn_zc(i, clk[i]);
    return h;
}

/* Definition 3.1 over the packed buffers.  `mark`/`clk` arrive as
 * copies of `old_mark`/`old_clk` and are mutated in place; the state
 * hash is maintained incrementally (XOR out the old word, XOR in the
 * new one).  Returns 0 on success, 1 on marking overflow (> 0xFFFF
 * tokens in a place), 2 on clock overflow (>= 0xFFFF). */
int32_t kn_successor(const kn_net *net, const uint16_t *old_mark,
                     const uint16_t *old_clk, uint16_t *mark,
                     uint16_t *clk, uint64_t *hash_io, int32_t t,
                     int32_t q, int32_t intermediate)
{
    uint64_t h = *hash_io;
    int32_t i, j;
    const uint16_t *ref = NULL;

    for (i = net->delta_off[t]; i < net->delta_off[t + 1]; i++) {
        int32_t p = net->delta_place[i];
        int32_t nv = (int32_t)mark[p] + net->delta_d[i];
        if (nv < 0 || nv > 0xFFFF)
            return 1;
        h ^= kn_zm(p, mark[p]) ^ kn_zm(p, (uint32_t)nv);
        mark[p] = (uint16_t)nv;
    }

    if (q) {
        int32_t T = net->T;
        for (j = 0; j < T; j++) {
            uint32_t v = clk[j];
            if (v != KN_DIS) {
                uint32_t nv = v + (uint32_t)q;
                if (nv >= KN_DIS)
                    return 2;
                h ^= kn_zc(j, v) ^ kn_zc(j, nv);
                clk[j] = (uint16_t)nv;
            }
        }
    }

    if (intermediate) {
        /* enabledness transiently re-checked against m - W(., t) */
        memcpy(net->scratch, old_mark,
               (size_t)net->P * sizeof(uint16_t));
        for (i = net->pre_off[t]; i < net->pre_off[t + 1]; i++)
            net->scratch[net->pre_place[i]] -=
                (uint16_t)net->pre_w[i];
        ref = net->scratch;
    }

    for (i = net->aff_off[t]; i < net->aff_off[t + 1]; i++) {
        int32_t tk = net->aff_t[i];
        uint32_t oldc = old_clk[tk];
        int enabled_now = 1;
        for (j = net->pre_off[tk]; j < net->pre_off[tk + 1]; j++) {
            if (mark[net->pre_place[j]] < net->pre_w[j]) {
                enabled_now = 0;
                break;
            }
        }
        if (!enabled_now) {
            if (oldc != KN_DIS) {
                h ^= kn_zc(tk, clk[tk]) ^ kn_zc(tk, KN_DIS);
                clk[tk] = (uint16_t)KN_DIS;
            }
        } else if (oldc == KN_DIS) {
            /* newly enabled: clock resets to zero (the bulk advance
             * skipped disabled entries, so clk[tk] is still DIS) */
            h ^= kn_zc(tk, KN_DIS) ^ kn_zc(tk, 0u);
            clk[tk] = 0;
        } else {
            int reset = (tk == t);
            if (!reset && ref) {
                for (j = net->pre_off[tk]; j < net->pre_off[tk + 1];
                     j++) {
                    if (ref[net->pre_place[j]] < net->pre_w[j]) {
                        reset = 1;
                        break;
                    }
                }
            }
            if (reset) {
                uint32_t cur = clk[tk];
                if (cur) {
                    h ^= kn_zc(tk, cur) ^ kn_zc(tk, 0u);
                    clk[tk] = 0;
                }
            }
            /* else persistent: the bulk advance already set it */
        }
    }
    *hash_io = h;
    return 0;
}

/* The full earliest-mode candidate enumeration: min-DUB ceiling,
 * firing window, optional strict priority filter, optional forced-
 * immediate partial-order reduction, (delay, priority, index) order.
 * `out` receives (transition, lower) pairs; returns the count. */
int32_t kn_candidates(const kn_net *net, const uint16_t *clk,
                      int32_t strict, int32_t partial_order,
                      int32_t *out, int32_t *reduced)
{
    int32_t T = net->T;
    int32_t ceiling = KN_INF_CEILING;
    int32_t tk, k, n = 0;

    *reduced = 0;
    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t l;
        if (v == KN_DIS)
            continue;
        l = net->lft[tk];
        if (l < 0)
            continue; /* unbounded LFT */
        l -= (int32_t)v;
        if (l < ceiling)
            ceiling = l;
    }
    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t lo;
        if (v == KN_DIS || (net->flags[tk] & 2))
            continue; /* disabled or deadline-miss */
        lo = net->eft[tk] - (int32_t)v;
        if (lo < 0)
            lo = 0;
        if (lo <= ceiling) {
            out[2 * n] = tk;
            out[2 * n + 1] = lo;
            n++;
        }
    }
    if (n == 0)
        return 0;

    if (strict) {
        int32_t best = net->prio[out[0]];
        int32_t m = 0;
        for (k = 1; k < n; k++)
            if (net->prio[out[2 * k]] < best)
                best = net->prio[out[2 * k]];
        for (k = 0; k < n; k++) {
            if (net->prio[out[2 * k]] == best) {
                out[2 * m] = out[2 * k];
                out[2 * m + 1] = out[2 * k + 1];
                m++;
            }
        }
        n = m;
    }

    if (partial_order && n > 1) {
        for (k = 0; k < n; k++) {
            int32_t tc = out[2 * k];
            int32_t l, m2, ok = 1;
            if (out[2 * k + 1] != 0 || !(net->flags[tc] & 4))
                continue; /* not zero-delay or not conflict-free */
            l = net->lft[tc];
            if (l < 0 || l - (int32_t)clk[tc] > 0)
                continue; /* not forced at this instant */
            for (m2 = net->pc_off[tc]; m2 < net->pc_off[tc + 1];
                 m2++) {
                if (clk[net->pc_t[m2]] != KN_DIS) {
                    ok = 0; /* an enabled transition consumes t's out */
                    break;
                }
            }
            if (ok) {
                out[0] = tc;
                out[1] = 0;
                *reduced = 1;
                return 1;
            }
        }
    }

    if (n > 1) {
        /* insertion sort by (lower, priority, index); candidate
         * lists are window-sized, typically < 16 entries */
        for (k = 1; k < n; k++) {
            int32_t tc = out[2 * k], lo = out[2 * k + 1];
            int32_t pk = net->prio[tc];
            int32_t m2 = k - 1;
            while (m2 >= 0) {
                int32_t tm = out[2 * m2], lm = out[2 * m2 + 1];
                int32_t pm = net->prio[tm];
                if (lm > lo ||
                    (lm == lo &&
                     (pm > pk || (pm == pk && tm > tc)))) {
                    out[2 * m2 + 2] = tm;
                    out[2 * m2 + 3] = lm;
                    m2--;
                } else {
                    break;
                }
            }
            out[2 * m2 + 2] = tc;
            out[2 * m2 + 3] = lo;
        }
    }
    return n;
}

/* Raw firing window for the delay-enumeration modes: ceiling +
 * unfiltered (transition, lower) pairs in ascending index order.
 * `ceiling_out` is -1 when no enabled transition bounds the window. */
int32_t kn_window(const kn_net *net, const uint16_t *clk,
                  int32_t *out, int32_t *ceiling_out)
{
    int32_t T = net->T;
    int32_t ceiling = KN_INF_CEILING;
    int32_t tk, n = 0;

    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t l;
        if (v == KN_DIS)
            continue;
        l = net->lft[tk];
        if (l < 0)
            continue;
        l -= (int32_t)v;
        if (l < ceiling)
            ceiling = l;
    }
    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t lo;
        if (v == KN_DIS || (net->flags[tk] & 2))
            continue;
        lo = net->eft[tk] - (int32_t)v;
        if (lo < 0)
            lo = 0;
        if (lo <= ceiling) {
            out[2 * n] = tk;
            out[2 * n + 1] = lo;
            n++;
        }
    }
    *ceiling_out = (ceiling == KN_INF_CEILING) ? -1 : ceiling;
    return n;
}

/* The full candidate pipeline of the delay-enumeration modes
 * ("extremes" when `full` is 0, "full" when 1): window, strict
 * priority filter, forced-immediate partial-order reduction, the
 * delay expansion against the min-DUB ceiling and the
 * (delay, priority, index) sort — everything the Python fallback
 * composes from kn_window + order_and_expand, in one call.  An
 * unbounded ceiling collapses to earliest-only ordering, exactly
 * like repro.scheduler.core.order_and_expand.  `out` receives
 * (transition, delay) pairs; returns the count, or -needed when
 * `cap` pairs are not enough (the caller grows the buffer and
 * retries). */
int32_t kn_expand(const kn_net *net, const uint16_t *clk,
                  int32_t strict, int32_t partial_order,
                  int32_t full, int32_t *out, int32_t cap,
                  int32_t *reduced)
{
    int32_t T = net->T;
    int32_t ceiling = KN_INF_CEILING;
    int32_t tk, k, n = 0, needed, m, q;

    *reduced = 0;
    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t l;
        if (v == KN_DIS)
            continue;
        l = net->lft[tk];
        if (l < 0)
            continue;
        l -= (int32_t)v;
        if (l < ceiling)
            ceiling = l;
    }
    for (tk = 0; tk < T; tk++) {
        uint32_t v = clk[tk];
        int32_t lo;
        if (v == KN_DIS || (net->flags[tk] & 2))
            continue;
        lo = net->eft[tk] - (int32_t)v;
        if (lo < 0)
            lo = 0;
        if (lo <= ceiling) {
            net->cand[2 * n] = tk;
            net->cand[2 * n + 1] = lo;
            n++;
        }
    }
    if (n == 0)
        return 0;

    if (strict) {
        int32_t best = net->prio[net->cand[0]];
        int32_t m2 = 0;
        for (k = 1; k < n; k++)
            if (net->prio[net->cand[2 * k]] < best)
                best = net->prio[net->cand[2 * k]];
        for (k = 0; k < n; k++) {
            if (net->prio[net->cand[2 * k]] == best) {
                net->cand[2 * m2] = net->cand[2 * k];
                net->cand[2 * m2 + 1] = net->cand[2 * k + 1];
                m2++;
            }
        }
        n = m2;
    }

    if (partial_order && n > 1) {
        for (k = 0; k < n; k++) {
            int32_t tc = net->cand[2 * k];
            int32_t l, m2, ok = 1;
            if (net->cand[2 * k + 1] != 0 || !(net->flags[tc] & 4))
                continue;
            l = net->lft[tc];
            if (l < 0 || l - (int32_t)clk[tc] > 0)
                continue;
            for (m2 = net->pc_off[tc]; m2 < net->pc_off[tc + 1];
                 m2++) {
                if (clk[net->pc_t[m2]] != KN_DIS) {
                    ok = 0;
                    break;
                }
            }
            if (ok) {
                /* the reduced pick still goes through the delay
                 * expansion below, like the Python pipeline */
                net->cand[0] = tc;
                net->cand[1] = 0;
                n = 1;
                *reduced = 1;
                break;
            }
        }
    }

    if (ceiling == KN_INF_CEILING) {
        /* nothing finite to enumerate: earliest-style output */
        if (n > cap)
            return -n;
        for (k = 0; k < n; k++) {
            out[2 * k] = net->cand[2 * k];
            out[2 * k + 1] = net->cand[2 * k + 1];
        }
        for (k = 1; k < n; k++) {
            int32_t tc = out[2 * k], lo = out[2 * k + 1];
            int32_t pk = net->prio[tc];
            int32_t m2 = k - 1;
            while (m2 >= 0) {
                int32_t tm = out[2 * m2], lm = out[2 * m2 + 1];
                int32_t pm = net->prio[tm];
                if (lm > lo ||
                    (lm == lo &&
                     (pm > pk || (pm == pk && tm > tc)))) {
                    out[2 * m2 + 2] = tm;
                    out[2 * m2 + 3] = lm;
                    m2--;
                } else {
                    break;
                }
            }
            out[2 * m2 + 2] = tc;
            out[2 * m2 + 3] = lo;
        }
        return n;
    }

    needed = 0;
    for (k = 0; k < n; k++) {
        int32_t lo = net->cand[2 * k + 1];
        needed += full ? (ceiling - lo + 1)
                       : (ceiling == lo ? 1 : 2);
    }
    if (needed > cap)
        return -needed;
    m = 0;
    for (k = 0; k < n; k++) {
        int32_t tc = net->cand[2 * k], lo = net->cand[2 * k + 1];
        if (full) {
            for (q = lo; q <= ceiling; q++) {
                out[2 * m] = tc;
                out[2 * m + 1] = q;
                m++;
            }
        } else {
            out[2 * m] = tc;
            out[2 * m + 1] = lo;
            m++;
            if (ceiling != lo) {
                out[2 * m] = tc;
                out[2 * m + 1] = ceiling;
                m++;
            }
        }
    }
    /* insertion sort by (delay, priority, index) */
    for (k = 1; k < m; k++) {
        int32_t tc = out[2 * k], qd = out[2 * k + 1];
        int32_t pk = net->prio[tc];
        int32_t m2 = k - 1;
        while (m2 >= 0) {
            int32_t tm = out[2 * m2], qm = out[2 * m2 + 1];
            int32_t pm = net->prio[tm];
            if (qm > qd ||
                (qm == qd &&
                 (pm > pk || (pm == pk && tm > tc)))) {
                out[2 * m2 + 2] = tm;
                out[2 * m2 + 3] = qm;
                m2--;
            } else {
                break;
            }
        }
        out[2 * m2 + 2] = tc;
        out[2 * m2 + 3] = qd;
    }
    return m;
}
"""


def _digest() -> str:
    payload = (CDEF + SOURCE).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:12]


def _cache_dirs() -> list[str]:
    """Candidate build directories, most preferred first."""
    here = os.path.dirname(os.path.abspath(__file__))
    tag = f"{_digest()}-py{sys.version_info[0]}{sys.version_info[1]}"
    dirs = [os.path.join(here, "_kernelc_build", tag)]
    override = os.environ.get("EZRT_KERNEL_CACHE")
    if override:
        dirs.insert(0, os.path.join(override, tag))
    dirs.append(
        os.path.join(
            tempfile.gettempdir(),
            f"ezrt-kernel-{os.getuid() if hasattr(os, 'getuid') else 0}",
            tag,
        )
    )
    return dirs


def _find_built() -> str | None:
    for cache in _cache_dirs():
        if not os.path.isdir(cache):
            continue
        for entry in sorted(os.listdir(cache)):
            if entry.startswith(_MODULE_NAME) and entry.endswith(".so"):
                return os.path.join(cache, entry)
    return None


def build(verbose: bool = False) -> str:
    """Compile the core into the first writable cache dir; returns the
    shared-object path.  Raises on any failure (callers that want the
    graceful path go through :func:`load`)."""
    existing = _find_built()
    if existing:
        return existing
    from cffi import FFI

    last_error: Exception | None = None
    for cache in _cache_dirs():
        try:
            os.makedirs(cache, exist_ok=True)
            ffi = FFI()
            ffi.cdef(CDEF)
            ffi.set_source(_MODULE_NAME, SOURCE)
            with tempfile.TemporaryDirectory(
                prefix="ezrt-kernel-build-"
            ) as tmp:
                so_path = ffi.compile(tmpdir=tmp, verbose=verbose)
                target = os.path.join(cache, os.path.basename(so_path))
                # atomic within a filesystem; fall back to a plain copy
                # when tempdir and cache live on different mounts
                try:
                    os.replace(so_path, target)
                except OSError:
                    import shutil

                    shutil.copy2(so_path, target)
            return target
        except Exception as exc:  # try the next candidate dir
            last_error = exc
    raise RuntimeError(
        f"could not build the kernel native core: {last_error}"
    ) from last_error


_loaded: tuple[object | None] | None = None


def native_module():
    """The compiled extension module (``.ffi`` / ``.lib``), or ``None``.

    Build failures are recorded on :data:`LOAD_ERROR` and never raised;
    the result is cached per process.  The ``EZRT_PURE`` gate is *not*
    applied here — :func:`load` checks it per call so tests can flip
    the environment variable without reloading the process.
    """
    global _loaded, LOAD_ERROR
    if _loaded is not None:
        return _loaded[0]
    try:
        path = _find_built() or build()
        spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {path}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _loaded = (module,)
    except Exception as exc:
        LOAD_ERROR = exc
        _loaded = (None,)
    return _loaded[0]


def load():
    """The compiled module, or ``None`` (pure-Python fallback).

    ``None`` when ``EZRT_PURE=1`` is set or the build/import failed.
    """
    if os.environ.get(PURE_ENV) == "1":
        return None
    return native_module()


def available() -> bool:
    """Whether the compiled core is usable right now."""
    return load() is not None


if __name__ == "__main__":  # pragma: no cover - CI eager build
    print(build(verbose=True))
