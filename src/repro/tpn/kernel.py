"""Packed-buffer TLTS successor engine — the native search kernel.

**Overview for new contributors.**  The discrete search engines of
this repository represent a state as Python tuples
(:class:`repro.tpn.state.State`, :class:`repro.tpn.fastengine.FastState`);
every successor allocates fresh tuples and every comparison walks
boxed ints.  This module is the fourth engine
(``PreRuntimeScheduler(engine="kernel")``): the same Definition 3.1
semantics over *packed flat buffers* —

* the marking is an ``array('H')``, one unsigned 16-bit word per place
  (token counts are capped at 65535 — comfortably past the paper
  models' tick-counter places; the engine raises loudly on overflow
  instead of silently wrapping);
* the clock vector is an ``array('H')`` of unsigned 16-bit words with
  :data:`DIS` (``0xFFFF``) marking disabled transitions (clocks are
  capped at 65534 — a search that deep raises rather than corrupting
  parity);
* the enabled set is implicit in the clock buffer (``clk[t] != DIS``)
  and maintained branchlessly from :attr:`CompiledNet.affected`;
* the 64-bit state key is a functional Zobrist hash (splitmix64 of a
  packed ``(kind, index, value)`` word — no tables) maintained
  *incrementally* across firings: XOR out the old word, XOR in the new
  one.

The successor/firable/min-DUB inner loop runs in one of two cores over
the *same* buffer layout:

* the optional C core (:mod:`repro.tpn._kernelc`, built lazily via
  cffi with graceful degradation) — one foreign call per successor,
  operating in place on the Python-owned buffers;
* the pure-Python core in this file — line-for-line the same
  semantics, used when the compiled core is unavailable or
  ``EZRT_PURE=1`` force-disables it.

Both cores produce bit-identical states *and hashes* (the Zobrist mix
is implemented identically on both sides), which the differential
suite in ``tests/test_kernel_engine.py`` asserts; engine-level parity
against the checked reference semantics rides the same randomized
sweeps that lock the incremental engine.
"""

from __future__ import annotations

from array import array

from repro.errors import SchedulingError
from repro.tpn import _kernelc
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet
from repro.tpn.state import DISABLED, RESET_POLICIES, State

#: Disabled-clock sentinel in the packed ``array('H')`` clock buffer.
DIS = 0xFFFF

#: Largest storable token count / clock value (loud overflow above).
MAX_TOKENS = 0xFFFF
MAX_CLOCK = DIS - 1

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """splitmix64 finalizer — identical to ``kn_mix`` in the C core."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _zm(p: int, v: int) -> int:
    """Zobrist word of place ``p`` holding ``v`` tokens."""
    return _mix((1 << 62) ^ (p << 20) ^ v)


def _zc(t: int, v: int) -> int:
    """Zobrist word of transition ``t``'s clock value ``v``."""
    return _mix((2 << 62) ^ (t << 20) ^ v)


class KernelState:
    """A TLTS state as two packed buffers plus its 64-bit Zobrist key.

    Identity (equality) lives entirely in the buffer contents, exactly
    like the tuple-based states; ``__hash__`` returns the precomputed
    incremental key, so set membership never walks the buffers on the
    non-colliding path.  ``marking`` is indexable (``marking[p]``), so
    the compiled marking predicates (:meth:`CompiledNet.is_final`,
    :meth:`CompiledNet.has_missed_deadline`) work unchanged.
    """

    __slots__ = ("marking", "clk", "_hash")

    def __init__(self, marking: array, clk: array, key: int):
        self.marking = marking
        self.clk = clk
        self._hash = key

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KernelState):
            return NotImplemented
        return self.marking == other.marking and self.clk == other.clk

    def __repr__(self) -> str:
        return (
            f"KernelState(m={self.marking.tolist()}, "
            f"c={self.clk.tolist()})"
        )

    @property
    def hash64(self) -> int:
        """The incremental 64-bit Zobrist key, as a public value."""
        return self._hash

    def clocks_tuple(self) -> tuple[int, ...]:
        """Dense clock tuple with :data:`repro.tpn.state.DISABLED`
        markers — the representation reorder policies read."""
        return tuple(
            DISABLED if v == DIS else v for v in self.clk
        )

    def to_state(self) -> State:
        """Convert to the reference dataclass representation."""
        return State(tuple(self.marking), self.clocks_tuple())

    def export(self) -> tuple[bytes, bytes]:
        """Minimal picklable form: the two raw buffers.

        Cheaper to ship than the object (two ``bytes`` blobs); the
        receiving side rebuilds the hash with
        :meth:`KernelEngine.revive`.
        """
        return (self.marking.tobytes(), self.clk.tobytes())


class _NativeCore:
    """Per-net handle on the compiled core: flattened CSR arrays plus
    preallocated output buffers, all kept alive for the net pointer's
    lifetime."""

    __slots__ = (
        "ffi",
        "lib",
        "net_ptr",
        "_keepalive",
        "_out",
        "_red",
        "_ceil",
        "_hash_io",
        "_xout",
        "_xcap",
    )

    def __init__(self, module, net: CompiledNet):
        ffi = module.ffi
        lib = module.lib
        self.ffi = ffi
        self.lib = lib

        def csr(rows, pair_index):
            off = array("i", [0])
            flat_a = array("i")
            flat_b = array("i") if pair_index else None
            for row in rows:
                if pair_index:
                    for a, b in row:
                        flat_a.append(a)
                        flat_b.append(b)
                else:
                    for a in row:
                        flat_a.append(a)
                off.append(len(flat_a))
            return off, flat_a, flat_b

        pre_off, pre_place, pre_w = csr(net.pre, True)
        d_off, d_place, d_d = csr(net.delta, True)
        aff_off, aff_t, _ = csr(net.affected, False)
        pc_off, pc_t, _ = csr(
            [sorted(s) for s in net.post_conflicts], False
        )
        eft = array("i", net.eft)
        lft = array(
            "i", [-1 if b == INF else int(b) for b in net.lft]
        )
        prio = array("i", net.priority)
        flags = bytearray(net.num_transitions)
        for t in range(net.num_transitions):
            flags[t] = (
                (1 if net.immediate[t] else 0)
                | (2 if t in net.miss_transitions else 0)
                | (4 if net.conflict_free[t] else 0)
            )

        def ptr(a):
            return ffi.from_buffer("int32_t[]", a)

        # the cffi buffer views (and the arrays they view) must stay
        # alive as long as the C net reads them
        self._keepalive = [
            pre_off, pre_place, pre_w, d_off, d_place, d_d,
            aff_off, aff_t, pc_off, pc_t, eft, lft, prio, flags,
        ]
        buffers = [
            ptr(pre_off), ptr(pre_place), ptr(pre_w),
            ptr(d_off), ptr(d_place), ptr(d_d),
            ptr(aff_off), ptr(aff_t), ptr(pc_off), ptr(pc_t),
            ptr(eft), ptr(lft), ptr(prio),
            ffi.from_buffer("uint8_t[]", flags),
        ]
        self._keepalive.extend(buffers)
        raw = lib.kn_net_new(
            net.num_places, net.num_transitions, *buffers
        )
        if raw == ffi.NULL:
            raise MemoryError("kn_net_new failed")
        self.net_ptr = ffi.gc(raw, lib.kn_net_free)
        self._out = ffi.new(
            "int32_t[]", 2 * max(1, net.num_transitions)
        )
        self._red = ffi.new("int32_t *")
        self._ceil = ffi.new("int32_t *")
        self._hash_io = ffi.new("uint64_t *")
        # expansion output of the delay-enumeration modes; grows on
        # demand (the "full" policy emits one pair per integer delay)
        self._xcap = max(64, 4 * net.num_transitions)
        self._xout = ffi.new("int32_t[]", 2 * self._xcap)

    def full_hash(self, mark: array, clk: array) -> int:
        ffi = self.ffi
        return self.lib.kn_hash(
            self.net_ptr,
            ffi.from_buffer("uint16_t[]", mark),
            ffi.from_buffer("uint16_t[]", clk),
        )

    def successor(self, om, oc, nm, nc, key, t, q, intermediate):
        ffi = self.ffi
        hio = self._hash_io
        hio[0] = key
        status = self.lib.kn_successor(
            self.net_ptr,
            ffi.from_buffer("uint16_t[]", om),
            ffi.from_buffer("uint16_t[]", oc),
            ffi.from_buffer("uint16_t[]", nm),
            ffi.from_buffer("uint16_t[]", nc),
            hio,
            t,
            q,
            intermediate,
        )
        return status, hio[0]

    def candidates(self, clk, strict, partial_order):
        out = self._out
        n = self.lib.kn_candidates(
            self.net_ptr,
            self.ffi.from_buffer("uint16_t[]", clk),
            strict,
            partial_order,
            out,
            self._red,
        )
        return (
            [(out[2 * i], out[2 * i + 1]) for i in range(n)],
            bool(self._red[0]),
        )

    def expand(self, clk, strict, partial_order, full):
        clk_ptr = self.ffi.from_buffer("uint16_t[]", clk)
        while True:
            n = self.lib.kn_expand(
                self.net_ptr,
                clk_ptr,
                strict,
                partial_order,
                full,
                self._xout,
                self._xcap,
                self._red,
            )
            if n >= 0:
                break
            self._xcap = -n
            self._xout = self.ffi.new("int32_t[]", 2 * self._xcap)
        out = self._xout
        return (
            [(out[2 * i], out[2 * i + 1]) for i in range(n)],
            bool(self._red[0]),
        )

    def window(self, clk):
        out = self._out
        n = self.lib.kn_window(
            self.net_ptr,
            self.ffi.from_buffer("uint16_t[]", clk),
            out,
            self._ceil,
        )
        ceiling = self._ceil[0]
        return (
            INF if ceiling < 0 else ceiling,
            [(out[2 * i], out[2 * i + 1]) for i in range(n)],
        )


class KernelEngine:
    """Packed-buffer successor computation over a compiled net.

    Same semantics as the reference :class:`~repro.tpn.state.StateEngine`
    (Definition 3.1, both clock-reset policies), same locality as the
    incremental engine (enabledness re-checks limited to
    ``affected[t]``), but states are flat buffers and — when the
    compiled core is available — the whole inner loop is one foreign
    call.  ``native`` records which core is live.
    """

    __slots__ = (
        "net",
        "reset_policy",
        "native",
        "_core",
        "_intermediate",
        "_pre",
        "_delta",
        "_affected",
        "_eft",
        "_lft_i",
        "_prio",
        "_miss",
        "_conflict_free",
        "_post_conflicts",
        "_num_transitions",
        "_zm_cache",
        "_zc_cache",
    )

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        if reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        self.net = net
        self.reset_policy = reset_policy
        self._intermediate = reset_policy == "intermediate"
        self._pre = net.pre
        self._delta = net.delta
        self._affected = net.affected
        self._eft = net.eft
        # integer LFT vector with -1 encoding the unbounded bound, the
        # packed analogue of the float INF convention
        self._lft_i = tuple(
            -1 if b == INF else int(b) for b in net.lft
        )
        self._prio = net.priority
        self._miss = net.miss_transitions
        self._conflict_free = net.conflict_free
        self._post_conflicts = net.post_conflicts
        self._num_transitions = net.num_transitions
        self._zm_cache: dict[int, int] = {}
        self._zc_cache: dict[int, int] = {}
        self._core = None
        if net.num_transitions and net.num_places:
            module = _kernelc.load()
            if module is not None:
                self._core = _NativeCore(module, net)
        self.native = self._core is not None

    # ------------------------------------------------------------------
    # Zobrist hashing (pure side; the C core mirrors these bit for bit)
    # ------------------------------------------------------------------
    def _zm(self, p: int, v: int) -> int:
        key = (p << 20) ^ v
        cache = self._zm_cache
        word = cache.get(key)
        if word is None:
            word = _mix((1 << 62) ^ key)
            cache[key] = word
        return word

    def _zc(self, t: int, v: int) -> int:
        key = (t << 20) ^ v
        cache = self._zc_cache
        word = cache.get(key)
        if word is None:
            word = _mix((2 << 62) ^ key)
            cache[key] = word
        return word

    def full_hash(self, mark: array, clk: array) -> int:
        """The 64-bit Zobrist key of a packed state, from scratch."""
        if self._core is not None:
            return self._core.full_hash(mark, clk)
        zm = self._zm
        zc = self._zc
        h = 0
        for p, v in enumerate(mark):
            h ^= zm(p, v)
        for t, v in enumerate(clk):
            h ^= zc(t, v)
        return h

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def initial(self) -> KernelState:
        net = self.net
        if any(v > MAX_TOKENS for v in net.m0):
            raise SchedulingError(
                "kernel engine: initial marking exceeds the packed "
                f"token cap ({MAX_TOKENS} per place)"
            )
        mark = array("H", net.m0)
        pre = self._pre
        clk = array(
            "H",
            (
                0
                if all(mark[p] >= w for p, w in pre[t])
                else DIS
                for t in range(self._num_transitions)
            ),
        )
        return KernelState(mark, clk, self.full_hash(mark, clk))

    def revive(self, marking: bytes, clocks: bytes) -> KernelState:
        """Rebuild a state from :meth:`KernelState.export` buffers."""
        mark = array("H")
        mark.frombytes(marking)
        clk = array("H")
        clk.frombytes(clocks)
        return KernelState(mark, clk, self.full_hash(mark, clk))

    def lift(self, state: State) -> KernelState:
        """Wrap a reference :class:`State` into packed buffers."""
        if any(v > MAX_TOKENS for v in state.marking):
            raise SchedulingError(
                "kernel engine: marking exceeds the packed token cap"
            )
        mark = array("H", state.marking)
        clk = array(
            "H",
            (DIS if v == DISABLED else v for v in state.clocks),
        )
        return KernelState(mark, clk, self.full_hash(mark, clk))

    # ------------------------------------------------------------------
    # Firing rule (Definition 3.1, packed)
    # ------------------------------------------------------------------
    def successor(self, state: KernelState, t: int, q: int) -> KernelState:
        """Fire ``t`` after delay ``q`` on copies of the packed buffers."""
        om = state.marking
        oc = state.clk
        nm = array("H", om)
        nc = array("H", oc)
        core = self._core
        if core is not None:
            status, key = core.successor(
                om, oc, nm, nc, state._hash, t, q,
                1 if self._intermediate else 0,
            )
            if status:
                self._overflow(status, t)
            return KernelState(nm, nc, key)
        return self._successor_pure(state, om, oc, nm, nc, t, q)

    def _overflow(self, status: int, t: int) -> None:
        name = self.net.transition_names[t]
        if status == 1:
            raise SchedulingError(
                f"kernel engine: firing {name!r} overflows the packed "
                f"token cap ({MAX_TOKENS} per place)"
            )
        raise SchedulingError(
            f"kernel engine: clock overflow past {MAX_CLOCK} while "
            f"firing {name!r} (use another engine for searches this "
            "deep in time)"
        )

    def _successor_pure(
        self, state, om, oc, nm, nc, t: int, q: int
    ) -> KernelState:
        zm = self._zm
        zc = self._zc
        h = state._hash

        for p, d in self._delta[t]:
            old = nm[p]
            nv = old + d
            if nv < 0 or nv > MAX_TOKENS:
                self._overflow(1, t)
            h ^= zm(p, old) ^ zm(p, nv)
            nm[p] = nv

        if q:
            for tk in range(self._num_transitions):
                v = nc[tk]
                if v != DIS:
                    nv = v + q
                    if nv >= DIS:
                        self._overflow(2, t)
                    h ^= zc(tk, v) ^ zc(tk, nv)
                    nc[tk] = nv

        pre = self._pre
        if self._intermediate:
            ref = array("H", om)
            for place, weight in pre[t]:
                ref[place] -= weight
        else:
            ref = None

        for tk in self._affected[t]:
            oldc = oc[tk]
            enabled_now = True
            for place, weight in pre[tk]:
                if nm[place] < weight:
                    enabled_now = False
                    break
            if not enabled_now:
                if oldc != DIS:
                    h ^= zc(tk, nc[tk]) ^ zc(tk, DIS)
                    nc[tk] = DIS
            elif oldc == DIS:
                # newly enabled: clock resets to zero (the bulk
                # advance skipped disabled entries)
                h ^= zc(tk, DIS) ^ zc(tk, 0)
                nc[tk] = 0
            else:
                reset = tk == t
                if not reset and ref is not None:
                    for place, weight in pre[tk]:
                        if ref[place] < weight:
                            reset = True
                            break
                if reset:
                    cur = nc[tk]
                    if cur:
                        h ^= zc(tk, cur) ^ zc(tk, 0)
                        nc[tk] = 0
                # else persistent: the bulk advance already set it

        return KernelState(nm, nc, h)

    # ------------------------------------------------------------------
    # Firing window / candidate enumeration
    # ------------------------------------------------------------------
    def candidates(
        self, state: KernelState, strict: bool, partial_order: bool
    ) -> tuple[list[tuple[int, int]], bool]:
        """Earliest-mode candidates, fully ordered, plus the
        reduction flag.

        The min-DUB ceiling, the firing window, the optional strict
        priority filter, the forced-immediate partial-order reduction
        and the ``(delay, priority, index)`` ordering all run inside
        one core call; the returned flag records whether the reduction
        collapsed the window to a single forced firing.
        """
        core = self._core
        if core is not None:
            return core.candidates(
                state.clk, 1 if strict else 0, 1 if partial_order else 0
            )
        return self._candidates_pure(state.clk, strict, partial_order)

    def _candidates_pure(self, clk, strict, partial_order):
        lft = self._lft_i
        eft = self._eft
        miss = self._miss

        ceiling = -1  # sentinel: unbounded
        for tk, v in enumerate(clk):
            if v == DIS:
                continue
            bound = lft[tk]
            if bound < 0:
                continue
            bound -= v
            if ceiling < 0 or bound < ceiling:
                ceiling = bound

        cands: list[tuple[int, int]] = []
        for tk, v in enumerate(clk):
            if v == DIS or tk in miss:
                continue
            lo = eft[tk] - v
            if lo < 0:
                lo = 0
            if ceiling < 0 or lo <= ceiling:
                cands.append((tk, lo))
        if not cands:
            return cands, False

        prio = self._prio
        if strict:
            best = min(prio[t] for t, _lo in cands)
            cands = [(t, lo) for t, lo in cands if prio[t] == best]

        if partial_order and len(cands) > 1:
            reduced = self.forced_immediate(cands, clk)
            if reduced is not None:
                return [reduced], True

        if len(cands) > 1:
            expanded = [(lo, prio[t], t) for t, lo in cands]
            expanded.sort()
            cands = [(t, lo) for lo, _p, t in expanded]
        return cands, False

    def forced_immediate(
        self, cands: list[tuple[int, int]], clk
    ) -> tuple[int, int] | None:
        """Partial-order reduction pick on the packed clock buffer.

        The packed analogue of
        :func:`repro.scheduler.core.forced_immediate` (which reads
        enabledness as ``clocks[t] >= 0`` and cannot run on the
        ``0xFFFF``-sentinel encoding): a zero-delay, structurally
        conflict-free candidate whose dynamic upper bound is zero and
        whose postset feeds no enabled transition fires alone.
        """
        conflict_free = self._conflict_free
        post_conflicts = self._post_conflicts
        lft = self._lft_i
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            bound = lft[t]
            if bound < 0 or bound - clk[t] > 0:
                continue  # not forced at this instant
            for other in post_conflicts[t]:
                if clk[other] != DIS:
                    break  # an enabled transition consumes from t•
            else:
                return (t, 0)
        return None

    def expand(
        self,
        state: KernelState,
        strict: bool,
        partial_order: bool,
        delay_mode: str,
    ) -> tuple[list[tuple[int, int]], bool] | None:
        """Native candidate pipeline of the delay-enumeration modes
        (``"extremes"`` / ``"full"``), or ``None`` without a compiled
        core.

        One foreign call covers the window, the strict filter, the
        packed partial-order reduction, the delay expansion against
        the min-DUB ceiling and the ``(delay, priority, index)``
        ordering — the exact composition the adapter's Python
        fallback builds from :meth:`window` plus
        :func:`repro.scheduler.core.order_and_expand`.
        """
        core = self._core
        if core is None:
            return None
        return core.expand(
            state.clk,
            1 if strict else 0,
            1 if partial_order else 0,
            1 if delay_mode == "full" else 0,
        )

    def window(
        self, state: KernelState
    ) -> tuple[float, list[tuple[int, int]]]:
        """``(min DUB, raw [(t, DLB(t)), ...])`` for the
        delay-enumeration modes — no filter, no reduction, no sort
        beyond the ascending index order of the scan."""
        core = self._core
        if core is not None:
            return core.window(state.clk)
        clk = state.clk
        lft = self._lft_i
        eft = self._eft
        miss = self._miss
        ceiling = -1
        for tk, v in enumerate(clk):
            if v == DIS:
                continue
            bound = lft[tk]
            if bound < 0:
                continue
            bound -= v
            if ceiling < 0 or bound < ceiling:
                ceiling = bound
        cands: list[tuple[int, int]] = []
        for tk, v in enumerate(clk):
            if v == DIS or tk in miss:
                continue
            lo = eft[tk] - v
            if lo < 0:
                lo = 0
            if ceiling < 0 or lo <= ceiling:
                cands.append((tk, lo))
        return (INF if ceiling < 0 else ceiling, cands)
