"""Marking utilities.

The engine represents a marking ``m_i`` as a plain ``tuple[int, ...]`` in
place insertion order (paper: ``m_i ∈ N^{|P|}``) — tuples hash fast and
keep the visited-state set compact.  :class:`MarkingView` wraps such a
vector with the place names of its net for ergonomic, name-addressed
inspection in tests, reports and the CLI.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import NetConstructionError
from repro.tpn.net import CompiledNet


class MarkingView(Mapping[str, int]):
    """Read-only, name-addressed view over a marking vector.

    Behaves as a mapping from place name to token count::

        view = MarkingView(net, state.marking)
        assert view["p_proc"] == 1
        assert view.marked() == ("p_proc", "p_start")
    """

    __slots__ = ("_net", "_vector")

    def __init__(self, net: CompiledNet, vector: tuple[int, ...]):
        if len(vector) != net.num_places:
            raise NetConstructionError(
                f"marking has {len(vector)} entries for a net with "
                f"{net.num_places} places"
            )
        self._net = net
        self._vector = vector

    @classmethod
    def from_dict(
        cls, net: CompiledNet, tokens: Mapping[str, int]
    ) -> "MarkingView":
        """Build a view (and vector) from a sparse name->count mapping."""
        vector = [0] * net.num_places
        for name, count in tokens.items():
            if name not in net.place_index:
                raise NetConstructionError(f"unknown place {name!r}")
            if count < 0:
                raise NetConstructionError(
                    f"negative token count for place {name!r}"
                )
            vector[net.place_index[name]] = count
        return cls(net, tuple(vector))

    @property
    def vector(self) -> tuple[int, ...]:
        """The underlying dense vector (place insertion order)."""
        return self._vector

    def __getitem__(self, name: str) -> int:
        try:
            return self._vector[self._net.place_index[name]]
        except KeyError:
            raise NetConstructionError(f"unknown place {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._net.place_names)

    def __len__(self) -> int:
        return len(self._vector)

    def marked(self) -> tuple[str, ...]:
        """Names of all places holding at least one token."""
        return tuple(
            name
            for name, count in zip(self._net.place_names, self._vector)
            if count > 0
        )

    def total_tokens(self) -> int:
        """Sum of all token counts (useful for conservation checks)."""
        return sum(self._vector)

    def as_dict(self, sparse: bool = True) -> dict[str, int]:
        """Dict form; ``sparse=True`` omits empty places."""
        items = zip(self._net.place_names, self._vector)
        if sparse:
            return {name: count for name, count in items if count > 0}
        return dict(items)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={count}" for name, count in self.as_dict().items()
        )
        return f"MarkingView({inner})"
