"""Incremental TLTS successor engine — the state-space hot path.

**Overview for new contributors.**  Every feasibility verdict in this
repository is a depth-first search whose inner loop asks one question
millions of times: "given this state, what happens when transition
``t`` fires after delay ``q``?".  This module answers it in O(degree)
instead of O(net size) by carrying derived views (enabled set, timer
queues) alongside each state and updating them surgically.  If you are
tracing a search bug, start at :meth:`IncrementalEngine.successor`
(the firing rule) and :meth:`IncrementalEngine.window` (which
transitions may fire next); the slow-but-obvious reference semantics
lives in :mod:`repro.tpn.state`, and the two are locked together by a
randomized equivalence suite.  The parallel scheduler builds on two
small extras here: states round-trip through their canonical
``(marking, clocks)`` pair (:meth:`FastState.export` /
:meth:`IncrementalEngine.revive`), which is how subtree jobs travel to
worker processes as a :class:`SubtreeJob`.

:class:`repro.tpn.state.StateEngine` implements Definition 3.1 the way
the paper states it: every firing rebuilds the dense clock vector by
rescanning the preset of *every* transition, which makes one expansion
O(|T|·|P|).  The structural truth is much cheaper: firing ``t`` can only
change the enabledness of transitions whose preset intersects the places
``t`` touches — its out-degree neighbourhood, precomputed once per net
as :attr:`CompiledNet.affected`.

This module exploits that locality plus one temporal invariant.  Under
strong semantics every enabled clock advances *uniformly*, so the
quantities ``EFT(t) − c(t)`` (the dynamic lower bound) and
``LFT(t) − c(t)`` (the dynamic upper bound) of all persistent
transitions shift by the same ``−q`` per firing.  Storing them as
``value + shift`` against a per-state epoch makes them *constant* while
a transition stays enabled:

* :class:`FastState` carries, besides the canonical ``(m, c)`` pair and
  its precomputed hash, four derived views maintained by O(degree)
  surgery instead of O(|T|) rescans: the ascending enabled set, the
  enabled immediate ``[0,0]`` transitions, and two epoch-shifted timer
  queues sorted by dynamic lower/upper bound;
* :class:`IncrementalEngine` computes successors by marking surgery on
  ``delta[t]``, one clock pass over the enabled set only when ``q > 0``,
  and enabledness re-checks limited to ``affected[t]``.  The ``min
  DUB`` ceiling is read in O(1) from the upper-bound queue (an enabled
  immediate pins it to exactly 0), and the fireable window is extracted
  as a prefix of the lower-bound queue — O(|FT(s)|), not O(|T|).

The engine is semantics-identical to the reference :class:`StateEngine`
under both clock-reset policies — the randomized equivalence suite
(``tests/test_fastengine.py``) and the hot-path benchmark cross-validate
successors, visited-state counts and feasibility verdicts against the
checked reference implementation.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet
from repro.tpn.state import (
    DISABLED,
    FiringCandidate,
    RESET_POLICIES,
    State,
)
from repro.errors import SchedulingError


class FastState:
    """A TLTS state ``(m, c)`` optimised for the search hot path.

    Identity (equality and the precomputed hash) lives entirely in the
    canonical ``(marking, clocks)`` pair, exactly like the reference
    :class:`~repro.tpn.state.State`.  The remaining slots are views
    derived from it, carried along so successor computation never
    rescans the net:

    * ``enabled`` — ascending tuple of enabled transitions (``ET(m)``);
    * ``imms`` — ascending tuple of the enabled immediate ``[0,0]``
      transitions; non-empty pins the ``min DUB`` ceiling to exactly 0;
    * ``tlb`` — ``(EFT(t) − c(t) + shift, t)`` pairs for the enabled
      non-immediate transitions, ascending: the firing-window prefix;
    * ``tub`` — ``(LFT(t) − c(t) + shift, t)`` pairs for those with a
      finite LFT, ascending: ``tub[0]`` yields ``min DUB`` in O(1);
    * ``shift`` — the epoch that makes the queue entries invariant
      under uniform clock advance (grows by ``q`` per firing).
    """

    __slots__ = (
        "marking",
        "clocks",
        "enabled",
        "imms",
        "tlb",
        "tub",
        "shift",
        "_hash",
    )

    def __init__(
        self,
        marking: tuple[int, ...],
        clocks: tuple[int, ...],
        enabled: tuple[int, ...],
        imms: tuple[int, ...],
        tlb: tuple[tuple[int, int], ...],
        tub: tuple[tuple[float, int], ...],
        shift: int,
    ):
        self.marking = marking
        self.clocks = clocks
        self.enabled = enabled
        self.imms = imms
        self.tlb = tlb
        self.tub = tub
        self.shift = shift
        self._hash = hash((marking, clocks))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FastState):
            return NotImplemented
        return (
            self.marking == other.marking and self.clocks == other.clocks
        )

    def __repr__(self) -> str:
        return f"FastState(m={self.marking}, c={self.clocks})"

    def key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Canonical hashable key, interchangeable with :meth:`State.key`."""
        return (self.marking, self.clocks)

    @property
    def hash64(self) -> int:
        """The precomputed canonical-pair hash, as a public value.

        This is the compaction key the cross-process visited filter
        claims (:class:`repro.scheduler.parallel.SharedVisitedFilter`)
        and the :meth:`repro.scheduler.core.IncrementalAdapter.state_key`
        contract; exposed for the orchestration layers so they need not
        reach into the slot.
        """
        return self._hash

    def to_state(self) -> State:
        """Convert to the reference dataclass representation."""
        return State(self.marking, self.clocks)

    def export(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Minimal picklable form: the canonical ``(marking, clocks)``.

        The derived views are cheaper to recompute on the receiving
        side (:meth:`IncrementalEngine.revive`) than to serialise, so
        cross-process handoff ships only the canonical pair.
        """
        return (self.marking, self.clocks)


@dataclass(frozen=True)
class SubtreeJob:
    """One unit of work-stealing search: a frontier state plus its path.

    Produced by :func:`repro.scheduler.parallel.split_frontier` from a
    DFS ``_Frame`` prefix and shipped to worker processes.  Everything
    is plain tuples of ints, so pickling cost is proportional to the
    net size, not to the search done so far:

    * ``prefix`` — the ``(transition, delay, absolute_time)`` firings
      that lead from the initial state to this subtree root; prepended
      to any schedule found below the root;
    * ``marking`` / ``clocks`` — the root's canonical pair, revived
      into a :class:`FastState` by the worker
      (:meth:`IncrementalEngine.revive`);
    * ``now`` — the absolute time at the root (sum of prefix delays).
    """

    prefix: tuple[tuple[int, int, int], ...]
    marking: tuple[int, ...]
    clocks: tuple[int, ...]
    now: int


def export_job(
    state: FastState,
    now: int,
    prefix: tuple[tuple[int, int, int], ...],
) -> SubtreeJob:
    """Freeze a frontier state into a picklable :class:`SubtreeJob`."""
    marking, clocks = state.export()
    return SubtreeJob(tuple(prefix), marking, clocks, now)


class IncrementalEngine:
    """O(degree) successor computation over a compiled net.

    Drop-in fast path for the reference :class:`StateEngine`: same
    semantics (Definition 3.1, both clock-reset policies), different
    complexity class.  All methods are pure functions of their inputs —
    the DFS scheduler backtracks freely over immutable states.
    """

    __slots__ = (
        "net",
        "reset_policy",
        "_intermediate",
        "_pre",
        "_delta",
        "_affected",
        "_immediate",
        "_eft",
        "_lft",
    )

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        if reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        self.net = net
        self.reset_policy = reset_policy
        self._intermediate = reset_policy == "intermediate"
        # hoisted hot-row views (one attribute hop instead of two)
        self._pre = net.pre
        self._delta = net.delta
        self._affected = net.affected
        self._immediate = net.immediate
        self._eft = net.eft
        self._lft = net.lft

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _derive(
        self,
        marking: tuple[int, ...],
        clocks: tuple[int, ...],
    ) -> FastState:
        """Build a state computing every derived view by full scan."""
        immediate = self._immediate
        eft = self._eft
        lft = self._lft
        enabled: list[int] = []
        imms: list[int] = []
        tlb: list[tuple[int, int]] = []
        tub: list[tuple[float, int]] = []
        for t, clock in enumerate(clocks):
            if clock < 0:
                continue
            enabled.append(t)
            if immediate[t]:
                imms.append(t)
            else:
                tlb.append((eft[t] - clock, t))
                bound = lft[t]
                if bound != INF:
                    tub.append((bound - clock, t))
        tlb.sort()
        tub.sort()
        return FastState(
            marking,
            clocks,
            tuple(enabled),
            tuple(imms),
            tuple(tlb),
            tuple(tub),
            0,
        )

    def initial(self) -> FastState:
        """``s0 = (m0, c0)``; the only full enabledness scan per search."""
        net = self.net
        marking = net.m0
        clocks = tuple(
            0
            if all(marking[p] >= w for p, w in net.pre[t])
            else DISABLED
            for t in range(net.num_transitions)
        )
        return self._derive(marking, clocks)

    def lift(self, state: State) -> FastState:
        """Wrap a reference :class:`State` (recovers the derived views)."""
        return self._derive(state.marking, state.clocks)

    def revive(
        self,
        marking: tuple[int, ...],
        clocks: tuple[int, ...],
    ) -> FastState:
        """Rebuild a full :class:`FastState` from its canonical pair.

        Inverse of :meth:`FastState.export`; one O(|T|) scan, paid once
        per cross-process handoff instead of per successor.
        """
        return self._derive(marking, clocks)

    # ------------------------------------------------------------------
    # Firing rule (Definition 3.1, incremental)
    # ------------------------------------------------------------------
    def successor(self, state: FastState, t: int, q: int) -> FastState:
        """Fire ``t`` after delay ``q`` touching only ``affected[t]``.

        Cost: marking surgery on ``delta[t]``, one clock-advance pass
        over the enabled set when ``q > 0``, and enabledness re-checks
        for the out-degree neighbourhood of ``t``.  Transitions outside
        ``affected[t]`` keep their enabledness by construction; their
        timer-queue entries are epoch-invariant, so the derived views
        update by bisect surgery on exactly the transitions that
        changed.
        """
        old_marking = state.marking
        delta = self._delta[t]
        if delta:
            m = list(old_marking)
            for place, d in delta:
                m[place] += d
            new_marking = tuple(m)
        else:
            new_marking = old_marking

        old_clocks = state.clocks
        clocks = list(old_clocks)
        if q:
            # persistent clocks advance in one pass over the enabled
            # set (disabled entries stay DISABLED untouched)
            for tk in state.enabled:
                clocks[tk] += q

        pre = self._pre
        eft = self._eft
        lft = self._lft
        immediate = self._immediate
        old_shift = state.shift
        shift = old_shift + q
        # lazily materialised copies of the derived views
        en: list[int] | None = None
        im: list[int] | None = None
        lb: list[tuple[int, int]] | None = None
        ub: list[tuple[float, int]] | None = None

        if self._intermediate:
            reference = list(old_marking)
            for place, weight in pre[t]:
                reference[place] -= weight
        else:
            reference = None

        for tk in self._affected[t]:
            for place, weight in pre[tk]:
                if new_marking[place] < weight:
                    # tk disabled after the firing
                    oc = old_clocks[tk]
                    if oc >= 0:
                        clocks[tk] = DISABLED
                        if en is None:
                            en = list(state.enabled)
                        del en[bisect_left(en, tk)]
                        if immediate[tk]:
                            if im is None:
                                im = list(state.imms)
                            del im[bisect_left(im, tk)]
                        else:
                            if lb is None:
                                lb = list(state.tlb)
                            del lb[
                                bisect_left(
                                    lb, (eft[tk] - oc + old_shift, tk)
                                )
                            ]
                            bound = lft[tk]
                            if bound != INF:
                                if ub is None:
                                    ub = list(state.tub)
                                del ub[
                                    bisect_left(
                                        ub, (bound - oc + old_shift, tk)
                                    )
                                ]
                    break
            else:
                # tk enabled after the firing
                oc = old_clocks[tk]
                if oc < 0:
                    # newly enabled: clock resets to zero
                    clocks[tk] = 0
                    if en is None:
                        en = list(state.enabled)
                    insort(en, tk)
                    if immediate[tk]:
                        if im is None:
                            im = list(state.imms)
                        insort(im, tk)
                    else:
                        if lb is None:
                            lb = list(state.tlb)
                        insort(lb, (eft[tk] + shift, tk))
                        bound = lft[tk]
                        if bound != INF:
                            if ub is None:
                                ub = list(state.tub)
                            insort(ub, (bound + shift, tk))
                    continue
                reset = tk == t
                if not reset and reference is not None:
                    # intermediate-marking semantics: transiently
                    # losing the tokens also resets the clock
                    for place, weight in pre[tk]:
                        if reference[place] < weight:
                            reset = True
                            break
                if reset:
                    clocks[tk] = 0
                    if not immediate[tk] and (oc or q):
                        # requeue at the zero-clock bounds
                        if lb is None:
                            lb = list(state.tlb)
                        del lb[
                            bisect_left(
                                lb, (eft[tk] - oc + old_shift, tk)
                            )
                        ]
                        insort(lb, (eft[tk] + shift, tk))
                        bound = lft[tk]
                        if bound != INF:
                            if ub is None:
                                ub = list(state.tub)
                            del ub[
                                bisect_left(
                                    ub, (bound - oc + old_shift, tk)
                                )
                            ]
                            insort(ub, (bound + shift, tk))
                # else: persistent — the bulk advance already set the
                # clock and the queue entries are epoch-invariant

        return FastState(
            new_marking,
            tuple(clocks),
            state.enabled if en is None else tuple(en),
            state.imms if im is None else tuple(im),
            state.tlb if lb is None else tuple(lb),
            state.tub if ub is None else tuple(ub),
            shift,
        )

    # ------------------------------------------------------------------
    # Firing window (O(1) ceiling, output-sized candidate extraction)
    # ------------------------------------------------------------------
    def min_dub(self, state: FastState) -> float:
        """``min_{t_k ∈ ET(m)} DUB(t_k)`` in O(1).

        An enabled immediate transition pins the ceiling to exactly 0
        (its clock is always 0 and no DUB is ever negative under strong
        semantics); otherwise the head of the upper-bound queue holds
        the minimum, and with no finite-LFT transition enabled the
        ceiling is unbounded.
        """
        if state.imms:
            return 0
        tub = state.tub
        if tub:
            return tub[0][0] - state.shift
        return INF

    def window(
        self, state: FastState
    ) -> tuple[float, list[tuple[int, int]]]:
        """``(min DUB, [(t, DLB(t)), ...])`` in ascending ``t`` order.

        The window condition (strong semantics) keeps transitions whose
        earliest admissible delay does not exceed the global ceiling —
        extracted as a prefix of the lower-bound queue.
        """
        ceiling = self.min_dub(state)
        shift = state.shift
        bound = shift + ceiling
        eligible = [(t, 0) for t in state.imms]
        for v, tk in state.tlb:
            if v > bound:
                break
            lower = v - shift
            eligible.append((tk, lower if lower > 0 else 0))
        eligible.sort()
        return ceiling, eligible

    def fireable(
        self, state: FastState, priority_filter: bool = True
    ) -> list[FiringCandidate]:
        """``FT(s)`` — same contract as :meth:`StateEngine.fireable`."""
        ceiling, eligible = self.window(state)
        candidates = [
            FiringCandidate(t, lower, ceiling) for t, lower in eligible
        ]
        if priority_filter and candidates:
            priorities = self.net.priority
            best = min(priorities[c.transition] for c in candidates)
            candidates = [
                c for c in candidates if priorities[c.transition] == best
            ]
        return candidates
