"""Static timing intervals for time Petri net transitions.

A time Petri net (Merlin/Faber, paper Section 3.1) attaches to every
transition ``t`` a static firing interval ``I(t) = [EFT(t), LFT(t)]``:
once ``t`` has been continuously enabled for ``EFT(t)`` time units it may
fire, and it must fire no later than ``LFT(t)`` units after enabling
(strong semantics) unless it is disabled first.

The reproduction uses the paper's discrete-time model: bounds are
non-negative integers, with ``INF`` (``math.inf``) allowed as an upper
bound for transitions that are never forced to fire.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import NetConstructionError

#: Unbounded latest-firing-time marker.  Stored as ``math.inf`` so that
#: comparisons against integer clocks work without special cases.
INF = math.inf

_INTERVAL_RE = re.compile(
    r"^\s*[\[\(]\s*(\d+)\s*,\s*(\d+|inf|oo|w|∞)\s*[\]\)]\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed static firing interval ``[eft, lft]`` in discrete time.

    Attributes:
        eft: earliest firing time (non-negative integer).
        lft: latest firing time (integer ``>= eft``) or :data:`INF`.
    """

    eft: int
    lft: float  # int in practice; float only to admit INF

    def __post_init__(self) -> None:
        if not isinstance(self.eft, int) or isinstance(self.eft, bool):
            raise NetConstructionError(
                f"EFT must be an integer, got {self.eft!r}"
            )
        if self.eft < 0:
            raise NetConstructionError(f"EFT must be >= 0, got {self.eft}")
        if self.lft != INF:
            if not isinstance(self.lft, int) or isinstance(self.lft, bool):
                raise NetConstructionError(
                    f"LFT must be an integer or INF, got {self.lft!r}"
                )
            if self.lft < self.eft:
                raise NetConstructionError(
                    f"interval is inverted: EFT={self.eft} > LFT={self.lft}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: int) -> "TimeInterval":
        """The punctual interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def zero(cls) -> "TimeInterval":
        """The immediate interval ``[0, 0]`` used by structural transitions."""
        return cls(0, 0)

    @classmethod
    def unbounded(cls, eft: int = 0) -> "TimeInterval":
        """The interval ``[eft, INF]`` (never forced to fire)."""
        return cls(eft, INF)

    @classmethod
    def parse(cls, text: str) -> "TimeInterval":
        """Parse ``"[a, b]"`` notation; ``b`` may be ``inf``/``oo``/``w``.

        >>> TimeInterval.parse("[3, 7]")
        TimeInterval(eft=3, lft=7)
        >>> TimeInterval.parse("[0, inf]").is_unbounded
        True
        """
        match = _INTERVAL_RE.match(text)
        if match is None:
            raise NetConstructionError(f"cannot parse interval {text!r}")
        eft = int(match.group(1))
        raw_lft = match.group(2).lower()
        lft: float
        if raw_lft in {"inf", "oo", "w", "∞"}:
            lft = INF
        else:
            lft = int(raw_lft)
        return cls(eft, lft)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_punctual(self) -> bool:
        """True for ``[a, a]`` intervals (a single admissible firing time)."""
        return self.lft == self.eft

    @property
    def is_immediate(self) -> bool:
        """True for the ``[0, 0]`` interval."""
        return self.eft == 0 and self.lft == 0

    @property
    def is_unbounded(self) -> bool:
        """True when the latest firing time is infinite."""
        return self.lft == INF

    @property
    def width(self) -> float:
        """``lft - eft`` (``INF`` for unbounded intervals)."""
        return self.lft - self.eft

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.eft <= value <= self.lft

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        """Intersection with ``other``, or ``None`` when disjoint."""
        eft = max(self.eft, other.eft)
        lft = min(self.lft, other.lft)
        if eft > lft:
            return None
        return TimeInterval(eft, int(lft) if lft != INF else INF)

    def shift(self, delta: int) -> "TimeInterval":
        """Translate both bounds by ``delta`` (clamping EFT at zero)."""
        eft = max(0, self.eft + delta)
        lft = self.lft if self.lft == INF else max(eft, self.lft + delta)
        return TimeInterval(eft, lft)

    def iter_values(self) -> range:
        """All admissible integer firing times (bounded intervals only)."""
        if self.is_unbounded:
            raise NetConstructionError(
                "cannot enumerate an unbounded interval"
            )
        return range(self.eft, int(self.lft) + 1)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        upper = "inf" if self.is_unbounded else str(int(self.lft))
        return f"[{self.eft}, {upper}]"
