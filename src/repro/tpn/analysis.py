"""Structural and behavioural analysis of time Petri nets.

Supporting substrate (DESIGN.md S2): place/transition invariants via the
incidence matrix, conservation and boundedness checks, deadlock detection
on an explored state space, and structural classification (state machine
/ marked graph / free choice).  These checks back the validation story
the paper attributes to the underlying formal model ("it ensures that
system's properties are satisfied").

Invariant computation uses integer Gaussian elimination over rationals
(fractions) so results are exact; numpy is used only as an optional
accelerator for the incidence matrix product checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.tpn.net import CompiledNet, TimePetriNet
from repro.tpn.reachability import ReachabilityGraph, explore


def incidence_matrix(net: TimePetriNet) -> list[list[int]]:
    """The incidence matrix ``C`` with ``C[p][t] = W(t,p) − W(p,t)``.

    Rows are places, columns transitions, both in insertion order.
    """
    places = net.place_names
    transitions = net.transition_names
    matrix = [[0] * len(transitions) for _ in places]
    p_index = {p: i for i, p in enumerate(places)}
    for j, t in enumerate(transitions):
        for p, w in net.preset(t).items():
            matrix[p_index[p]][j] -= w
        for p, w in net.postset(t).items():
            matrix[p_index[p]][j] += w
    return matrix


def _nullspace_basis(
    rows: list[list[int]],
) -> list[list[Fraction]]:
    """Rational basis of ``{x : rows · x = 0}`` via Gaussian elimination."""
    if not rows:
        return []
    num_cols = len(rows[0])
    matrix = [[Fraction(v) for v in row] for row in rows]
    pivots: list[int] = []
    rank = 0
    for col in range(num_cols):
        pivot_row = None
        for r in range(rank, len(matrix)):
            if matrix[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        matrix[rank], matrix[pivot_row] = matrix[pivot_row], matrix[rank]
        pivot = matrix[rank][col]
        matrix[rank] = [v / pivot for v in matrix[rank]]
        for r in range(len(matrix)):
            if r != rank and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [
                    a - factor * b for a, b in zip(matrix[r], matrix[rank])
                ]
        pivots.append(col)
        rank += 1
        if rank == len(matrix):
            break
    free_cols = [c for c in range(num_cols) if c not in pivots]
    basis: list[list[Fraction]] = []
    for free in free_cols:
        vec = [Fraction(0)] * num_cols
        vec[free] = Fraction(1)
        for r, pivot_col in enumerate(pivots):
            vec[pivot_col] = -matrix[r][free]
        basis.append(vec)
    return basis


def _integerise(vec: list[Fraction]) -> list[int]:
    """Scale a rational vector to the smallest integer multiple."""
    denominators = [v.denominator for v in vec]
    lcm = 1
    for d in denominators:
        g = _gcd(lcm, d)
        lcm = lcm // g * d
    ints = [int(v * lcm) for v in vec]
    g = 0
    for v in ints:
        g = _gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    return ints


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a if a else 1


def place_invariants(net: TimePetriNet) -> list[dict[str, int]]:
    """P-invariants: integer vectors ``y`` with ``yᵀ·C = 0``.

    Each invariant is returned as a sparse name->coefficient mapping.
    For every reachable marking ``m``, ``y·m = y·m0`` — the classic
    token-conservation laws (e.g. the processor place plus all "task is
    running" places of the paper's blocks carry exactly one token).
    """
    matrix = incidence_matrix(net)
    # P-invariants are nullspace vectors of Cᵀ (rows = transitions).
    transposed = [list(col) for col in zip(*matrix)] if matrix else []
    basis = _nullspace_basis(transposed) if transposed else []
    names = net.place_names
    result = []
    for vec in basis:
        ints = _integerise(vec)
        result.append(
            {names[i]: v for i, v in enumerate(ints) if v != 0}
        )
    return result


def transition_invariants(net: TimePetriNet) -> list[dict[str, int]]:
    """T-invariants: integer vectors ``x`` with ``C·x = 0``.

    A T-invariant describes a firing-count vector that reproduces a
    marking; the hyperperiod firing counts of the paper's task blocks
    form one (firing every instance of every task returns the net to a
    recurrent marking).
    """
    matrix = incidence_matrix(net)
    basis = _nullspace_basis(matrix) if matrix else []
    names = net.transition_names
    result = []
    for vec in basis:
        ints = _integerise(vec)
        result.append(
            {names[i]: v for i, v in enumerate(ints) if v != 0}
        )
    return result


def invariant_value(
    invariant: dict[str, int], marking: dict[str, int]
) -> int:
    """Evaluate ``y·m`` for a sparse invariant and sparse marking."""
    return sum(
        coeff * marking.get(place, 0) for place, coeff in invariant.items()
    )


def is_conservative(net: TimePetriNet) -> bool:
    """Whether some strictly positive P-invariant covers all places.

    Conservative nets are structurally bounded.  We check whether the
    all-ones vector is an invariant (strict conservation) — sufficient
    for the simple resource nets used in tests.
    """
    matrix = incidence_matrix(net)
    for j in range(len(net.transition_names)):
        if sum(matrix[i][j] for i in range(len(matrix))) != 0:
            return False
    return True


@dataclass
class BehaviouralReport:
    """Summary of a bounded behavioural exploration."""

    states_explored: int
    complete: bool
    bounded: bool
    bound: int
    deadlock_states: int
    final_marking_reachable: bool | None

    def __str__(self) -> str:
        completeness = "complete" if self.complete else "truncated"
        lines = [
            f"states explored : {self.states_explored} ({completeness})",
            f"k-bounded       : {self.bound if self.bounded else 'no'}",
            f"deadlock states : {self.deadlock_states}",
        ]
        if self.final_marking_reachable is not None:
            lines.append(
                f"M_F reachable   : {self.final_marking_reachable}"
            )
        return "\n".join(lines)


def behavioural_report(
    net: CompiledNet,
    max_states: int = 10_000,
    earliest_only: bool = False,
) -> BehaviouralReport:
    """Explore the TLTS and summarise boundedness/deadlock/reachability.

    Boundedness here is *observed* boundedness over the explored prefix;
    a truncated exploration cannot prove a net bounded, and the report
    says so via ``complete``.
    """
    graph = explore(
        net, max_states=max_states, earliest_only=earliest_only
    )
    bound = graph.max_tokens()
    reaches_final = None
    if any(v is not None for v in net.final_marking):
        reaches_final = any(
            net.is_final(s.marking) for s in graph.states
        )
    return BehaviouralReport(
        states_explored=graph.num_states,
        complete=graph.complete,
        bounded=graph.complete,
        bound=bound,
        deadlock_states=len(graph.deadlocks),
        final_marking_reachable=reaches_final,
    )


def classify(net: TimePetriNet) -> dict[str, bool]:
    """Structural classification of the untimed skeleton.

    Returns flags for the classic subclasses:

    * ``state_machine`` — every transition has exactly one input and one
      output place (weights 1);
    * ``marked_graph`` — every place has exactly one producer and one
      consumer;
    * ``free_choice`` — whenever two transitions share an input place,
      their presets are identical;
    * ``ordinary`` — all arc weights are 1.
    """
    ordinary = all(arc.weight == 1 for arc in net.arcs())
    state_machine = ordinary and all(
        len(net.preset(t)) == 1 and len(net.postset(t)) == 1
        for t in net.transition_names
    )
    marked_graph = ordinary and all(
        len(net.place_preset(p)) == 1 and len(net.place_postset(p)) == 1
        for p in net.place_names
    )
    free_choice = True
    presets = {t: frozenset(net.preset(t)) for t in net.transition_names}
    for p in net.place_names:
        consumers = list(net.place_postset(p))
        for i in range(len(consumers)):
            for j in range(i + 1, len(consumers)):
                if presets[consumers[i]] != presets[consumers[j]]:
                    free_choice = False
    return {
        "ordinary": ordinary,
        "state_machine": state_machine,
        "marked_graph": marked_graph,
        "free_choice": free_choice and ordinary,
    }


def check_invariants_on_graph(
    net: TimePetriNet, graph: ReachabilityGraph
) -> list[str]:
    """Cross-validate P-invariants against an explored state space.

    Returns a list of violation descriptions (empty when all invariant
    values are constant across explored states) — used by property tests
    to validate the firing rule against linear algebra.
    """
    invariants = place_invariants(net)
    names = net.place_names
    violations: list[str] = []
    if not graph.states:
        return violations
    for inv in invariants:
        coeffs = [inv.get(p, 0) for p in names]
        reference = sum(
            c * v for c, v in zip(coeffs, graph.states[0].marking)
        )
        for state in graph.states[1:]:
            value = sum(c * v for c, v in zip(coeffs, state.marking))
            if value != reference:
                violations.append(
                    f"invariant {inv} broke: {value} != {reference}"
                )
                break
    return violations
