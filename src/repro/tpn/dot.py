"""Graphviz DOT export for nets and reachability graphs.

The ezRealtime GUI renders nets graphically; in this reproduction the
equivalent inspection path is DOT output (viewable with ``dot -Tpng`` or
any Graphviz front-end).  Only plain-text generation happens here — no
Graphviz dependency.
"""

from __future__ import annotations

from repro.tpn.net import CompiledNet, TimePetriNet
from repro.tpn.reachability import ReachabilityGraph


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def net_to_dot(net: TimePetriNet, rankdir: str = "LR") -> str:
    """Render the net structure as a DOT digraph.

    Places are circles annotated with their initial marking; transitions
    are boxes annotated with their static interval and (non-zero)
    priority; arc labels show weights greater than one.
    """
    lines = [
        f'digraph "{_escape(net.name)}" {{',
        f"  rankdir={rankdir};",
        "  node [fontsize=10];",
    ]
    for place in net.places:
        tokens = f"\\n●×{place.marking}" if place.marking else ""
        fill = ' style=filled fillcolor="#ffdddd"' if (
            place.role == "deadline-miss"
        ) else ""
        lines.append(
            f'  "{_escape(place.name)}" [shape=circle '
            f'label="{_escape(place.label)}{tokens}"{fill}];'
        )
    for t in net.transitions:
        prio = f"\\nπ={t.priority}" if t.priority else ""
        lines.append(
            f'  "{_escape(t.name)}" [shape=box '
            f'label="{_escape(t.label)}\\n{t.interval}{prio}"];'
        )
    for arc in net.arcs():
        weight = f' [label="{arc.weight}"]' if arc.weight > 1 else ""
        lines.append(
            f'  "{_escape(arc.source)}" -> "{_escape(arc.target)}"{weight};'
        )
    lines.append("}")
    return "\n".join(lines)


def reachability_to_dot(
    net: CompiledNet, graph: ReachabilityGraph, max_states: int = 200
) -> str:
    """Render (a prefix of) a reachability graph as DOT.

    States are labelled with their marked places; edges with the fired
    transition and its delay.  ``max_states`` caps the output size so
    large graphs stay viewable.
    """
    lines = [
        f'digraph "{_escape(net.name)}_states" {{',
        "  node [shape=ellipse fontsize=9];",
    ]
    shown = min(len(graph.states), max_states)
    for i in range(shown):
        marking = graph.states[i].marking
        label = ",".join(
            f"{net.place_names[p]}:{v}"
            for p, v in enumerate(marking)
            if v
        )
        shape = ' peripheries=2' if net.is_final(marking) else ""
        lines.append(f'  s{i} [label="s{i}\\n{_escape(label)}"{shape}];')
    for i in range(shown):
        for t, q, j in graph.edges[i]:
            if j >= shown:
                continue
            name = net.transition_names[t]
            lines.append(
                f'  s{i} -> s{j} [label="{_escape(name)},{q}" fontsize=8];'
            )
    if shown < len(graph.states):
        lines.append(
            f'  more [shape=plaintext label="... '
            f'{len(graph.states) - shown} more states"];'
        )
    lines.append("}")
    return "\n".join(lines)
