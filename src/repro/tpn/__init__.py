"""Time Petri net substrate (paper Section 3.1).

Public surface:

* :class:`TimeInterval`, :data:`INF` — static firing intervals;
* :class:`Place`, :class:`Transition`, :class:`Arc`,
  :class:`TimePetriNet`, :func:`net_union` — net construction;
* :class:`CompiledNet` — frozen index-based view;
* :class:`MarkingView` — name-addressed marking inspection;
* :class:`State`, :class:`StateEngine`, :class:`FiringCandidate` — the
  checked reference semantics (Definition 3.1,
  ``ET``/``FT``/``DLB``/``DUB``);
* :class:`FastState`, :class:`IncrementalEngine` — the O(degree)
  incremental successor engine driving the search/reachability/
  simulation hot paths;
* :class:`TLTS`, :class:`Run`, :class:`Action` — labeled runs and the
  feasibility predicate (Definition 3.2);
* :func:`explore`, :class:`ReachabilityGraph` — bounded state-space
  enumeration;
* analysis helpers (invariants, conservation, classification) and DOT
  export.
"""

from repro.tpn.analysis import (
    BehaviouralReport,
    behavioural_report,
    check_invariants_on_graph,
    classify,
    incidence_matrix,
    invariant_value,
    is_conservative,
    place_invariants,
    transition_invariants,
)
from repro.tpn.dot import net_to_dot, reachability_to_dot
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.interval import INF, TimeInterval
from repro.tpn.marking import MarkingView
from repro.tpn.net import (
    Arc,
    CompiledNet,
    Place,
    ROLE_ARRIVAL,
    ROLE_COMPUTE,
    ROLE_DEADLINE_MISS,
    ROLE_DEADLINE_OK,
    ROLE_EXCLUSION,
    ROLE_FINISH,
    ROLE_FORK,
    ROLE_GRANT,
    ROLE_JOIN,
    ROLE_MESSAGE,
    ROLE_PHASE,
    ROLE_PRECEDENCE,
    ROLE_RELEASE,
    TimePetriNet,
    Transition,
    net_union,
)
from repro.tpn.reachability import (
    ReachabilityGraph,
    explore,
    find_state,
    reachable_markings,
)
from repro.tpn.stateclass import (
    RealizedSchedule,
    StateClass,
    StateClassEngine,
    StateClassGraph,
    build_state_class_graph,
    realize_firing_sequence,
)
from repro.tpn.state import (
    DISABLED,
    FiringCandidate,
    RESET_POLICIES,
    State,
    StateEngine,
)
from repro.tpn.tlts import TLTS, Action, Run

__all__ = [
    "Action",
    "Arc",
    "BehaviouralReport",
    "CompiledNet",
    "DISABLED",
    "FastState",
    "FiringCandidate",
    "INF",
    "IncrementalEngine",
    "MarkingView",
    "Place",
    "ROLE_ARRIVAL",
    "ROLE_COMPUTE",
    "ROLE_DEADLINE_MISS",
    "ROLE_DEADLINE_OK",
    "ROLE_EXCLUSION",
    "ROLE_FINISH",
    "ROLE_FORK",
    "ROLE_GRANT",
    "ROLE_JOIN",
    "ROLE_MESSAGE",
    "ROLE_PHASE",
    "ROLE_PRECEDENCE",
    "ROLE_RELEASE",
    "RESET_POLICIES",
    "ReachabilityGraph",
    "Run",
    "State",
    "RealizedSchedule",
    "StateClass",
    "StateClassEngine",
    "StateClassGraph",
    "StateEngine",
    "TLTS",
    "TimeInterval",
    "TimePetriNet",
    "Transition",
    "behavioural_report",
    "build_state_class_graph",
    "check_invariants_on_graph",
    "classify",
    "explore",
    "find_state",
    "incidence_matrix",
    "invariant_value",
    "is_conservative",
    "net_to_dot",
    "net_union",
    "place_invariants",
    "reachability_to_dot",
    "reachable_markings",
    "realize_firing_sequence",
    "transition_invariants",
]
