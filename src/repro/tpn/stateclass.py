"""State-class graph construction and search support (Berthomieu–Diaz).

The discrete-time TLTS of :mod:`repro.tpn.state` enumerates integer
clock valuations; the classical *state-class* abstraction instead
groups states by marking plus a difference-bound system over the firing
times of enabled transitions, making the dense-time behaviour of a
bounded TPN finite.  The class graph answers marking-reachability and
firability questions independently of the discrete engine, and — since
PR 4 — drives the scheduler's third engine
(``PreRuntimeScheduler(engine="stateclass")``): on models with wide
firing intervals the discrete TLTS visits every integer clock
valuation while one DBM covers them all, so searching classes shrinks
the explored space by orders of magnitude.

Implementation: a class is ``(marking, D)`` where ``D`` is a canonical
difference-bound matrix (DBM) over ``θ_0 = 0`` and one variable per
enabled transition, with ``D[i][j]`` bounding ``θ_i − θ_j``.  Firing
``t`` requires ``θ_t ≤ θ_u`` for every enabled ``u`` to stay
satisfiable; successors keep persistent transitions' differences and
give newly enabled ones their static intervals.  Because every added
firing constraint points *into* the fired variable, firability and the
dense firing window of a transition read directly off the canonical
matrix (:meth:`StateClassEngine.firable`,
:meth:`StateClassEngine.fire_window`) without re-closing it.

The scheduler-facing half of this module concretises a class-graph
path back to integer time: :func:`realize_firing_sequence` rebuilds
the exact difference-constraint system of the timed run (enabling
episodes per clock-reset policy, EFT lower bounds, strong-semantics
LFT caps), solves it for the earliest integer firing dates, and
reports per-firing dense windows ``[earliest, latest]`` — the
Berthomieu–Diaz soundness theorem guarantees the system is satisfiable
for any path of the class graph, and integer bounds make the least
solution integral.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet
from repro.tpn.state import RESET_POLICIES

#: Matrix entries are integers or :data:`INF` (``math.inf``).  The
#: alias admits ``float`` only for the INF sentinel: every finite bound
#: is an ``int`` (static intervals are integral and the closure only
#: adds finite integers), and :func:`_canonical` guards INF operands so
#: no arithmetic can smuggle a spurious finite float in.
Bound = int | float


def _canonical(matrix: list[list[Bound]]) -> list[list[Bound]] | None:
    """Floyd–Warshall closure; ``None`` when inconsistent.

    INF propagation guard: a path through an unbounded entry is no
    path at all, so both operands are checked *before* the addition —
    ``INF + bound`` (or worse, ``INF − INF = nan``) can never reach a
    cell and every finite entry stays an exact integer.
    """
    n = len(matrix)
    dist = [row[:] for row in matrix]
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            d_ik = dist[i][k]
            if d_ik == INF:
                continue  # no finite path i -> k: nothing to relax
            row_i = dist[i]
            for j in range(n):
                d_kj = row_k[j]
                if d_kj == INF:
                    continue  # guard the second operand too
                candidate = d_ik + d_kj
                if candidate < row_i[j]:
                    row_i[j] = candidate
    for i in range(n):
        if dist[i][i] < 0:
            return None
    return dist


@dataclass(frozen=True)
class StateClass:
    """A Berthomieu–Diaz state class.

    ``enabled`` lists the transition indices in DBM variable order
    (variable 0 is the zero reference); ``dbm`` is the canonical
    matrix, stored as a tuple of tuples for hashability.
    """

    marking: tuple[int, ...]
    enabled: tuple[int, ...]
    dbm: tuple[tuple[Bound, ...], ...]

    def bounds_of(self, transition: int) -> tuple[Bound, Bound]:
        """Earliest/latest relative firing time of an enabled transition."""
        try:
            var = self.enabled.index(transition) + 1
        except ValueError:
            raise SchedulingError(
                f"transition {transition} is not enabled in this class"
            ) from None
        lower = -self.dbm[0][var]
        upper = self.dbm[var][0]
        return (lower, upper)


@dataclass
class StateClassGraph:
    """The (possibly truncated) state-class graph."""

    classes: list[StateClass] = field(default_factory=list)
    index: dict[StateClass, int] = field(default_factory=dict)
    edges: list[list[tuple[int, int]]] = field(default_factory=list)
    complete: bool = True

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def markings(self) -> set[tuple[int, ...]]:
        return {c.marking for c in self.classes}


class StateClassEngine:
    """Constructs state classes for a compiled net.

    ``reset_policy`` selects which transitions count as *persistent*
    across a firing (keeping their accumulated bounds) and mirrors the
    discrete engines: ``"paper"`` compares the full markings before and
    after the firing, ``"intermediate"`` additionally requires
    enabledness at the intermediate marking ``m − W(·, t)`` (a
    transition that loses its tokens to the firing and regains them
    from the output arcs is newly enabled and gets its static interval
    back).
    """

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        if reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        self.net = net
        self.reset_policy = reset_policy

    # ------------------------------------------------------------------
    def initial_class(self) -> StateClass:
        marking = self.net.m0
        enabled = tuple(self._enabled(marking))
        size = len(enabled) + 1
        matrix: list[list[Bound]] = [
            [INF] * size for _ in range(size)
        ]
        for i in range(size):
            matrix[i][i] = 0
        for var, t in enumerate(enabled, start=1):
            matrix[var][0] = self.net.lft[t]  # θ_t ≤ LFT
            matrix[0][var] = -self.net.eft[t]  # −θ_t ≤ −EFT
        closed = _canonical(matrix)
        if closed is None:
            raise SchedulingError("initial class is inconsistent")
        return StateClass(
            marking,
            enabled,
            tuple(tuple(row) for row in closed),
        )

    def _enabled(self, marking: tuple[int, ...]) -> list[int]:
        result = []
        for t in range(self.net.num_transitions):
            ok = True
            for place, weight in self.net.pre[t]:
                if marking[place] < weight:
                    ok = False
                    break
            if ok:
                result.append(t)
        return result

    # ------------------------------------------------------------------
    def firable(self, cls: StateClass) -> list[int]:
        """Transitions firable from the class (dense-time semantics).

        ``t`` may fire first iff adding ``θ_t ≤ θ_u`` for every enabled
        ``u`` keeps the DBM satisfiable.  All added edges point into
        ``t``'s variable, so any new negative cycle uses exactly one of
        them — the check collapses to a column scan of the canonical
        matrix: firable iff ``D[u][t] ≥ 0`` for every ``u``.
        """
        dbm = cls.dbm
        size = len(cls.enabled) + 1
        result = []
        for var, t in enumerate(cls.enabled, start=1):
            for u in range(1, size):
                if dbm[u][var] < 0:
                    break
            else:
                result.append(t)
        return result

    def fire_window(
        self, cls: StateClass, transition: int
    ) -> tuple[int, Bound] | None:
        """Dense window of relative times at which ``transition`` can
        fire *next* from this class, or ``None`` when it cannot.

        The lower end is the transition's own earliest time (the added
        ``θ_t ≤ θ_u`` edges leave no path out of ``t``, so its lower
        bound cannot tighten); the upper end additionally respects
        every other enabled transition's latest time (paths routed
        through the added edges), i.e. the strong-semantics ceiling.
        """
        try:
            var = cls.enabled.index(transition) + 1
        except ValueError:
            return None
        dbm = cls.dbm
        size = len(cls.enabled) + 1
        upper = dbm[var][0]
        for u in range(1, size):
            if dbm[u][var] < 0:
                return None
            bound = dbm[u][0]
            if bound < upper:
                upper = bound
        lower = -dbm[0][var]
        return (lower, upper)

    def fire(self, cls: StateClass, transition: int) -> StateClass:
        """Successor class after firing ``transition``."""
        successor = self.try_fire(cls, transition)
        if successor is None:
            raise SchedulingError(
                f"transition "
                f"{self.net.transition_names[transition]!r} is not "
                "firable from this class"
            )
        return successor

    def try_fire(
        self, cls: StateClass, transition: int
    ) -> StateClass | None:
        """Successor class, or ``None`` when the firing is infeasible.

        The non-raising firing rule the scheduler's state-class
        adapter (:class:`repro.scheduler.core.StateClassAdapter`) and
        the graph builder drive; :meth:`fire` is the raising wrapper
        for callers that know the transition is firable.
        """
        if transition not in cls.enabled:
            return None
        size = len(cls.enabled) + 1
        var_t = cls.enabled.index(transition) + 1
        dbm = cls.dbm
        # Adding θ_t − θ_u ≤ 0 for every other enabled u keeps the
        # system satisfiable iff no negative cycle uses one of the new
        # edges; every such edge leaves var_t, so a minimal cycle is
        # var_t → u (weight 0) plus a closed-matrix path u → var_t —
        # the firability test collapses to a column scan (and doubles
        # as the consistency check the full re-closure used to do).
        col_t = [row[var_t] for row in dbm]
        for var_u in range(1, size):
            if col_t[var_u] < 0:
                return None
        # Incremental closure (ROADMAP "DBM closure cost"): the input
        # is already canonical, so instead of a fresh O(n³)
        # Floyd–Warshall only the entries affected by the new edges
        # need repair.  All edges emanate from var_t with weight 0, so
        # the new shortest distance out of var_t is the column-wise
        # minimum over every enabled row, and any other entry can only
        # improve by routing through var_t exactly once:
        #   D'[i][j] = min(D[i][j], D[i][var_t] + D'[var_t][j])
        # (a path using two new edges re-enters var_t through a
        # non-negative cycle, so one hop suffices) — O(n²) total.
        row_t = list(dbm[var_t])
        for var_u in range(1, size):
            if var_u == var_t:
                continue
            row_u = dbm[var_u]
            for j in range(size):
                if row_u[j] < row_t[j]:
                    row_t[j] = row_u[j]
        closed: list[list[Bound]] = [None] * size  # type: ignore[list-item]
        for i in range(size):
            if i == var_t:
                closed[i] = row_t
                continue
            row_i = list(dbm[i])
            d_it = col_t[i]
            if d_it != INF:
                for j in range(size):
                    d_tj = row_t[j]
                    if d_tj == INF:
                        continue
                    candidate = d_it + d_tj
                    if candidate < row_i[j]:
                        row_i[j] = candidate
            closed[i] = row_i

        # new marking
        marking = list(cls.marking)
        for place, delta in self.net.delta[transition]:
            marking[place] += delta
        new_marking = tuple(marking)

        old_enabled = cls.enabled
        new_enabled = tuple(self._enabled(new_marking))
        persistent = self._persistent(
            cls.marking, new_enabled, old_enabled, transition
        )
        new_size = len(new_enabled) + 1
        # The successor matrix can be written down already closed, so
        # the trailing O(n³) re-closure of earlier revisions is gone:
        #
        # * the persistent block (origin row/column against the new
        #   origin θ_t plus pairwise differences) is a *projection* of
        #   the closed matrix onto {var_t} ∪ persistent — its entries
        #   are genuine all-pairs shortest distances, so the triangle
        #   inequality already holds inside the block;
        # * a newly enabled transition carries only its static
        #   interval against the origin, so every shortest path in or
        #   out of its variable routes through variable 0 — the cross
        #   entries are exactly ``D[i][0] + D[0][j]``; no such path
        #   can tighten the persistent block either, because
        #   ``D[i][0] − EFT_u + LFT_u + D[0][j] ≥ D[i][0] + D[0][j]``;
        # * consistency is inherited: the projection of a consistent
        #   matrix is consistent and ``LFT − EFT ≥ 0`` keeps every new
        #   diagonal path non-negative, so (unlike the re-closure
        #   path) this construction cannot return ``None``.
        fresh: list[list[Bound]] = [
            [INF] * new_size for _ in range(new_size)
        ]
        for i in range(new_size):
            fresh[i][i] = 0
        new_vars: list[int] = []
        for new_var, t in enumerate(new_enabled, start=1):
            if t in persistent:
                old_var = old_enabled.index(t) + 1
                # θ'_u = θ_u − θ_t: bounds against the new origin
                fresh[new_var][0] = closed[old_var][var_t]
                fresh[0][new_var] = closed[var_t][old_var]
            else:
                fresh[new_var][0] = self.net.lft[t]
                fresh[0][new_var] = -self.net.eft[t]
                new_vars.append(new_var)
        # pairwise differences among persistent transitions (the
        # projection's interior)
        for i_var, t_i in enumerate(new_enabled, start=1):
            if t_i not in persistent:
                continue
            old_i = old_enabled.index(t_i) + 1
            for j_var, t_j in enumerate(new_enabled, start=1):
                if t_j not in persistent or i_var == j_var:
                    continue
                old_j = old_enabled.index(t_j) + 1
                fresh[i_var][j_var] = closed[old_i][old_j]
        # cross entries of newly enabled variables: via the origin
        for nv in new_vars:
            up = fresh[nv][0]
            down = fresh[0][nv]
            for j in range(1, new_size):
                if j == nv:
                    continue
                if up != INF and fresh[0][j] != INF:
                    candidate = up + fresh[0][j]
                    if candidate < fresh[nv][j]:
                        fresh[nv][j] = candidate
                d_j0 = fresh[j][0]
                if d_j0 != INF:
                    candidate = d_j0 + down
                    if candidate < fresh[j][nv]:
                        fresh[j][nv] = candidate
        return StateClass(
            new_marking,
            new_enabled,
            tuple(tuple(row) for row in fresh),
        )

    def _persistent(
        self,
        old_marking: tuple[int, ...],
        new_enabled: tuple[int, ...],
        old_enabled: tuple[int, ...],
        transition: int,
    ) -> set[int]:
        """Transitions that keep their accumulated firing bounds.

        ``"paper"`` (Definition 3.1 read on full markings): enabled
        before and after, and not the fired transition itself.
        ``"intermediate"``: additionally enabled at ``m − W(·, t)``.
        """
        persistent = {
            t
            for t in new_enabled
            if t in old_enabled and t != transition
        }
        if self.reset_policy == "intermediate" and persistent:
            intermediate = list(old_marking)
            for place, weight in self.net.pre[transition]:
                intermediate[place] -= weight
            pre = self.net.pre
            survivors = set()
            for t in persistent:
                for place, weight in pre[t]:
                    if intermediate[place] < weight:
                        break
                else:
                    survivors.add(t)
            persistent = survivors
        return persistent


def build_state_class_graph(
    net: CompiledNet,
    max_classes: int = 10_000,
    reset_policy: str = "paper",
) -> StateClassGraph:
    """Enumerate the state-class graph up to ``max_classes``."""
    engine = StateClassEngine(net, reset_policy=reset_policy)
    graph = StateClassGraph()
    initial = engine.initial_class()
    graph.classes.append(initial)
    graph.index[initial] = 0
    graph.edges.append([])
    frontier: deque[int] = deque([0])
    while frontier:
        i = frontier.popleft()
        cls = graph.classes[i]
        for t in engine.firable(cls):
            successor = engine.try_fire(cls, t)
            if successor is None:
                continue
            j = graph.index.get(successor)
            if j is None:
                if len(graph.classes) >= max_classes:
                    graph.complete = False
                    continue
                j = len(graph.classes)
                graph.classes.append(successor)
                graph.index[successor] = j
                graph.edges.append([])
                frontier.append(j)
            graph.edges[i].append((t, j))
    return graph


# ----------------------------------------------------------------------
# Concretisation: from a class-graph path back to integer time
# ----------------------------------------------------------------------
@dataclass
class RealizedSchedule:
    """A class-graph path made concrete.

    ``schedule`` carries the scheduler's usual
    ``(transition name, delay, absolute time)`` triples — the earliest
    integer realisation of the dense run, ready for the reference
    replay, schedule extraction and code generation.  ``windows``
    pairs every firing with its dense absolute window
    ``(name, earliest, latest)``: the projection of the run's firing-
    date polyhedron on that firing (``latest`` is :data:`INF` when
    nothing ever forces it).
    """

    schedule: list[tuple[str, int, int]]
    windows: list[tuple[str, int, Bound]]


def _sequence_constraints(
    net: CompiledNet, sequence: list[int], reset_policy: str
):
    """Difference constraints of the timed run firing ``sequence``.

    Returns ``(lower_at, uppers)`` over firing dates ``τ_0 = 0,
    τ_1..τ_n``: ``lower_at[k] = (e, eft)`` encodes ``τ_k ≥ τ_e + eft``
    (the fired transition's EFT against its enabling step) and each
    ``(k, e, lft)`` in ``uppers`` encodes ``τ_k ≤ τ_e + lft`` (strong
    semantics: no step may overrun an armed transition's LFT).  Per
    enabling episode only the *last* armed step is emitted — firing
    dates are monotone, so it implies the earlier ones.
    """
    if reset_policy not in RESET_POLICIES:
        raise SchedulingError(
            f"unknown reset policy {reset_policy!r}; "
            f"expected one of {RESET_POLICIES}"
        )
    pre = net.pre
    eft = net.eft
    lft = net.lft
    num_transitions = net.num_transitions
    intermediate_policy = reset_policy == "intermediate"

    def enabled_in(marking: list[int], t: int) -> bool:
        for place, weight in pre[t]:
            if marking[place] < weight:
                return False
        return True

    marking = list(net.m0)
    enabled_since: dict[int, int] = {
        t: 0 for t in range(num_transitions) if enabled_in(marking, t)
    }
    lower_at: list[tuple[int, int]] = [(0, 0)]  # 1-indexed; slot 0 unused
    uppers: list[tuple[int, int, int]] = []

    for step, fired in enumerate(sequence, start=1):
        if fired not in enabled_since:
            raise SchedulingError(
                f"sequence fires disabled transition "
                f"{net.transition_names[fired]!r} at step {step}"
            )
        lower_at.append((enabled_since[fired], eft[fired]))

        if intermediate_policy:
            intermediate = list(marking)
            for place, weight in pre[fired]:
                intermediate[place] -= weight
        for place, delta in net.delta[fired]:
            marking[place] += delta

        survivors: dict[int, int] = {}
        for u, since in enabled_since.items():
            persists = (
                u != fired
                and enabled_in(marking, u)
                and (
                    not intermediate_policy
                    or enabled_in(intermediate, u)
                )
            )
            if persists:
                survivors[u] = since
            else:
                # episode ends at this step: u was armed in the
                # pre-marking, so step `step` must respect its LFT
                if lft[u] != INF:
                    uppers.append((step, since, int(lft[u])))
        enabled_since = survivors
        for u in range(num_transitions):
            if u not in enabled_since and enabled_in(marking, u):
                enabled_since[u] = step

    # episodes still open after the last firing constrained it too
    n = len(sequence)
    for u, since in enabled_since.items():
        if since < n and lft[u] != INF:
            uppers.append((n, since, int(lft[u])))
    return lower_at, uppers


def _least_times(
    n: int,
    lower_at: list[tuple[int, int]],
    uppers: list[tuple[int, int, int]],
) -> list[int]:
    """Earliest integer firing dates satisfying the constraints.

    Chaotic iteration of the monotone repair operators: a forward
    sweep raises each date to its lower bounds, an upper-bound sweep
    raises the *enabling* date of any overrun LFT (delaying the
    enabling is the only way to relax the cap).  Every repair is the
    minimum any solution must satisfy, so values never overshoot the
    least solution; Bellman–Ford's bound makes ``n + 2`` full passes a
    proof of a negative cycle — impossible for a genuine class-graph
    path, hence the loud error.
    """
    tau = [0] * (n + 1)
    for _ in range(n + 2):
        changed = False
        for k in range(1, n + 1):
            e, bound = lower_at[k]
            value = tau[k - 1]
            lower = tau[e] + bound
            if lower > value:
                value = lower
            if value > tau[k]:
                tau[k] = value
                changed = True
        for k, e, cap in uppers:
            need = tau[k] - cap
            if need > tau[e]:
                tau[e] = need
                changed = True
        if not changed:
            return tau
    raise SchedulingError(
        "firing sequence admits no integer timing (inconsistent "
        "difference system) — the state-class path is unsound"
    )


def _greatest_times(
    n: int,
    lower_at: list[tuple[int, int]],
    uppers: list[tuple[int, int, int]],
) -> list[Bound]:
    """Latest firing dates (``INF`` where nothing forces a firing)."""
    tau: list[Bound] = [INF] * (n + 1)
    tau[0] = 0
    for _ in range(n + 2):
        changed = False
        for k, e, cap in uppers:
            if tau[e] != INF:
                bound = tau[e] + cap
                if bound < tau[k]:
                    tau[k] = bound
                    changed = True
        for k in range(n, 0, -1):
            value = tau[k]
            if value == INF:
                continue
            if value < tau[k - 1]:
                tau[k - 1] = value
                changed = True
            e, bound = lower_at[k]
            cap = value - bound
            if cap < tau[e]:
                tau[e] = cap
                changed = True
        if not changed:
            break
    return tau


def realize_firing_sequence(
    net: CompiledNet, sequence: list[int], reset_policy: str = "paper"
) -> RealizedSchedule:
    """Concretise a class-graph firing sequence to integer time.

    Builds the run's difference-constraint system (per the clock-reset
    policy), solves it for the earliest integer firing dates and the
    dense per-firing windows, and returns the scheduler-shaped
    triples.  Raises :class:`SchedulingError` when the sequence is
    structurally or temporally infeasible — which a path of a
    correctly built state-class graph never is.
    """
    lower_at, uppers = _sequence_constraints(net, sequence, reset_policy)
    n = len(sequence)
    earliest = _least_times(n, lower_at, uppers)
    latest = _greatest_times(n, lower_at, uppers)
    names = net.transition_names
    schedule: list[tuple[str, int, int]] = []
    windows: list[tuple[str, int, Bound]] = []
    for k, fired in enumerate(sequence, start=1):
        schedule.append(
            (names[fired], earliest[k] - earliest[k - 1], earliest[k])
        )
        windows.append((names[fired], earliest[k], latest[k]))
    return RealizedSchedule(schedule=schedule, windows=windows)
