"""State-class graph construction (Berthomieu–Diaz).

The discrete-time TLTS of :mod:`repro.tpn.state` enumerates integer
clock valuations; the classical *state-class* abstraction instead
groups states by marking plus a difference-bound system over the firing
times of enabled transitions, making the dense-time behaviour of a
bounded TPN finite.  ezRealtime's scheduler does not need it (the
paper's model is discrete-time), but a credible TPN substrate offers
it: the class graph answers marking-reachability and firability
questions independently of the discrete engine, and the test-suite uses
that independence to cross-validate the firing rule (integer firing
times are known to suffice for marking reachability in TPNs with
integer bounds, so both explorations must see the same markings).

Implementation: a class is ``(marking, D)`` where ``D`` is a canonical
difference-bound matrix (DBM) over ``θ_0 = 0`` and one variable per
enabled transition, with ``D[i][j]`` bounding ``θ_i − θ_j``.  Firing
``t`` requires ``θ_t ≤ θ_u`` for every enabled ``u`` to stay
satisfiable; successors keep persistent transitions' differences and
give newly enabled ones their static intervals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet

#: Matrix entries are integers or INF.
Bound = float


def _canonical(matrix: list[list[Bound]]) -> list[list[Bound]] | None:
    """Floyd–Warshall closure; ``None`` when inconsistent."""
    n = len(matrix)
    dist = [row[:] for row in matrix]
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            d_ik = dist[i][k]
            if d_ik == INF:
                continue
            row_i = dist[i]
            for j in range(n):
                if row_k[j] == INF:
                    continue
                candidate = d_ik + row_k[j]
                if candidate < row_i[j]:
                    row_i[j] = candidate
    for i in range(n):
        if dist[i][i] < 0:
            return None
    return dist


@dataclass(frozen=True)
class StateClass:
    """A Berthomieu–Diaz state class.

    ``enabled`` lists the transition indices in DBM variable order
    (variable 0 is the zero reference); ``dbm`` is the canonical
    matrix, stored as a tuple of tuples for hashability.
    """

    marking: tuple[int, ...]
    enabled: tuple[int, ...]
    dbm: tuple[tuple[Bound, ...], ...]

    def bounds_of(self, transition: int) -> tuple[Bound, Bound]:
        """Earliest/latest relative firing time of an enabled transition."""
        try:
            var = self.enabled.index(transition) + 1
        except ValueError:
            raise SchedulingError(
                f"transition {transition} is not enabled in this class"
            ) from None
        lower = -self.dbm[0][var]
        upper = self.dbm[var][0]
        return (lower, upper)


@dataclass
class StateClassGraph:
    """The (possibly truncated) state-class graph."""

    classes: list[StateClass] = field(default_factory=list)
    index: dict[StateClass, int] = field(default_factory=dict)
    edges: list[list[tuple[int, int]]] = field(default_factory=list)
    complete: bool = True

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def markings(self) -> set[tuple[int, ...]]:
        return {c.marking for c in self.classes}


class StateClassEngine:
    """Constructs state classes for a compiled net."""

    def __init__(self, net: CompiledNet):
        self.net = net

    # ------------------------------------------------------------------
    def initial_class(self) -> StateClass:
        marking = self.net.m0
        enabled = tuple(self._enabled(marking))
        size = len(enabled) + 1
        matrix: list[list[Bound]] = [
            [INF] * size for _ in range(size)
        ]
        for i in range(size):
            matrix[i][i] = 0
        for var, t in enumerate(enabled, start=1):
            matrix[var][0] = self.net.lft[t]  # θ_t ≤ LFT
            matrix[0][var] = -self.net.eft[t]  # −θ_t ≤ −EFT
        closed = _canonical(matrix)
        if closed is None:
            raise SchedulingError("initial class is inconsistent")
        return StateClass(
            marking,
            enabled,
            tuple(tuple(row) for row in closed),
        )

    def _enabled(self, marking: tuple[int, ...]) -> list[int]:
        result = []
        for t in range(self.net.num_transitions):
            ok = True
            for place, weight in self.net.pre[t]:
                if marking[place] < weight:
                    ok = False
                    break
            if ok:
                result.append(t)
        return result

    # ------------------------------------------------------------------
    def firable(self, cls: StateClass) -> list[int]:
        """Transitions firable from the class (dense-time semantics)."""
        result = []
        for t in cls.enabled:
            if self._fire(cls, t, check_only=True) is not None:
                result.append(t)
        return result

    def fire(self, cls: StateClass, transition: int) -> StateClass:
        """Successor class after firing ``transition``."""
        successor = self._fire(cls, transition, check_only=False)
        if successor is None:
            raise SchedulingError(
                f"transition "
                f"{self.net.transition_names[transition]!r} is not "
                "firable from this class"
            )
        return successor

    def _fire(
        self, cls: StateClass, transition: int, check_only: bool
    ) -> StateClass | None:
        if transition not in cls.enabled:
            return None
        size = len(cls.enabled) + 1
        var_t = cls.enabled.index(transition) + 1
        # add θ_t − θ_u ≤ 0 for every other enabled u
        matrix = [list(row) for row in cls.dbm]
        for var_u in range(1, size):
            if var_u != var_t and matrix[var_t][var_u] > 0:
                matrix[var_t][var_u] = 0
        closed = _canonical(matrix)
        if closed is None:
            return None
        if check_only:
            return cls

        # new marking
        marking = list(cls.marking)
        for place, delta in self.net.delta[transition]:
            marking[place] += delta
        new_marking = tuple(marking)

        old_enabled = cls.enabled
        new_enabled = tuple(self._enabled(new_marking))
        # persistence per the paper's rule: enabled before and after,
        # and not the fired transition itself
        persistent = {
            t
            for t in new_enabled
            if t in old_enabled and t != transition
        }
        new_size = len(new_enabled) + 1
        fresh: list[list[Bound]] = [
            [INF] * new_size for _ in range(new_size)
        ]
        for i in range(new_size):
            fresh[i][i] = 0
        for new_var, t in enumerate(new_enabled, start=1):
            if t in persistent:
                old_var = old_enabled.index(t) + 1
                # θ'_u = θ_u − θ_t: bounds against the new origin
                fresh[new_var][0] = closed[old_var][var_t]
                fresh[0][new_var] = closed[var_t][old_var]
            else:
                fresh[new_var][0] = self.net.lft[t]
                fresh[0][new_var] = -self.net.eft[t]
        # preserve pairwise differences among persistent transitions
        for i_var, t_i in enumerate(new_enabled, start=1):
            if t_i not in persistent:
                continue
            old_i = old_enabled.index(t_i) + 1
            for j_var, t_j in enumerate(new_enabled, start=1):
                if t_j not in persistent or i_var == j_var:
                    continue
                old_j = old_enabled.index(t_j) + 1
                fresh[i_var][j_var] = closed[old_i][old_j]
        final = _canonical(fresh)
        if final is None:
            return None
        return StateClass(
            new_marking,
            new_enabled,
            tuple(tuple(row) for row in final),
        )


def build_state_class_graph(
    net: CompiledNet, max_classes: int = 10_000
) -> StateClassGraph:
    """Enumerate the state-class graph up to ``max_classes``."""
    engine = StateClassEngine(net)
    graph = StateClassGraph()
    initial = engine.initial_class()
    graph.classes.append(initial)
    graph.index[initial] = 0
    graph.edges.append([])
    frontier: deque[int] = deque([0])
    while frontier:
        i = frontier.popleft()
        cls = graph.classes[i]
        for t in engine.firable(cls):
            successor = engine._fire(cls, t, check_only=False)
            if successor is None:
                continue
            j = graph.index.get(successor)
            if j is None:
                if len(graph.classes) >= max_classes:
                    graph.complete = False
                    continue
                j = len(graph.classes)
                graph.classes.append(successor)
                graph.index[successor] = j
                graph.edges.append([])
                frontier.append(j)
            graph.edges[i].append((t, j))
    return graph
