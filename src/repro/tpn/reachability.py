"""Bounded reachability exploration of the TLTS.

A generic breadth-first/depth-first explorer over the timed state space,
independent of the scheduler.  It exists for analysis and testing: small
nets can be exhaustively enumerated to check boundedness, deadlocks and
reachability of markings, and property-based tests drive it over random
nets to cross-validate the firing rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.net import CompiledNet
from repro.tpn.state import State


@dataclass
class ReachabilityGraph:
    """Explicit timed reachability graph (possibly truncated).

    Attributes:
        states: explored states in discovery order.
        index: state -> position in ``states``.
        edges: adjacency: ``edges[i]`` lists ``(t, q, j)`` successors.
        complete: False when a limit stopped the exploration early.
        deadlocks: indices of states with an empty fireable set.
    """

    states: list[State] = field(default_factory=list)
    index: dict[State, int] = field(default_factory=dict)
    edges: list[list[tuple[int, int, int]]] = field(default_factory=list)
    complete: bool = True
    deadlocks: list[int] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_edges(self) -> int:
        return sum(len(row) for row in self.edges)

    def max_tokens(self) -> int:
        """Largest token count observed in any place of any state."""
        return max(
            (max(s.marking) for s in self.states if s.marking),
            default=0,
        )

    def markings(self) -> set[tuple[int, ...]]:
        """Distinct markings among explored states."""
        return {s.marking for s in self.states}


def explore(
    net: CompiledNet,
    max_states: int = 10_000,
    earliest_only: bool = False,
    priority_filter: bool = True,
    reset_policy: str = "paper",
    strategy: str = "bfs",
) -> ReachabilityGraph:
    """Enumerate the timed state space up to ``max_states`` states.

    ``earliest_only=False`` expands every integer delay in each firing
    domain, producing the full discrete-time TLTS; with ``True`` only the
    earliest firing of each fireable transition is taken (the scheduler's
    default view of the space).

    Unbounded firing domains (a fireable transition while no enabled
    transition has a finite LFT) cannot be enumerated exhaustively; in
    that case the earliest delay is used for the affected candidates and
    the graph is flagged incomplete.
    """
    if strategy not in ("bfs", "dfs"):
        raise SchedulingError(f"unknown strategy {strategy!r}")
    fast = IncrementalEngine(net, reset_policy=reset_policy)
    graph = ReachabilityGraph()
    fs0 = fast.initial()
    graph.states.append(fs0.to_state())
    graph.index[graph.states[0]] = 0
    graph.edges.append([])
    # exploration runs on FastState (cached hashes, O(degree)
    # successors); the public graph exposes the reference State view.
    # Dedup is keyed by the plain (marking, clocks) key so states that
    # left the frontier don't keep their derived-view tuples alive.
    seen: dict[tuple, int] = {fs0.key(): 0}
    frontier: deque[tuple[int, FastState]] = deque([(0, fs0)])

    while frontier:
        i, state = (
            frontier.pop() if strategy == "dfs" else frontier.popleft()
        )
        candidates = fast.fireable(state, priority_filter)
        if not candidates:
            graph.deadlocks.append(i)
            continue
        for cand in candidates:
            if earliest_only:
                delays = [cand.dlb]
            elif cand.dub == float("inf"):
                delays = [cand.dlb]
                graph.complete = False
            else:
                delays = list(cand.delays())
            for q in delays:
                succ = fast.successor(state, cand.transition, q)
                key = succ.key()
                j = seen.get(key)
                if j is None:
                    if len(graph.states) >= max_states:
                        graph.complete = False
                        continue
                    j = len(graph.states)
                    seen[key] = j
                    public = succ.to_state()
                    graph.states.append(public)
                    graph.index[public] = j
                    graph.edges.append([])
                    frontier.append((j, succ))
                graph.edges[i].append((cand.transition, q, j))
    return graph


def reachable_markings(
    net: CompiledNet, max_states: int = 10_000
) -> set[tuple[int, ...]]:
    """Convenience: the set of reachable markings (bounded exploration)."""
    return explore(net, max_states=max_states).markings()


def find_state(
    net: CompiledNet,
    predicate,
    max_states: int = 10_000,
) -> State | None:
    """First explored state satisfying ``predicate`` or ``None``."""
    graph = explore(net, max_states=max_states)
    for state in graph.states:
        if predicate(state):
            return state
    return None
