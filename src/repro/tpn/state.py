"""States and the firing rule of the timed labeled transition system.

Implements the operational semantics of Section 3.1:

* a state ``s = (m, c)`` pairs a marking with a clock vector giving, for
  every *enabled* transition, the time elapsed since it became enabled;
* ``ET(m)`` — transitions enabled by the marking;
* ``DLB(t) = max(0, EFT(t) − c(t))`` and ``DUB(t) = LFT(t) − c(t)`` — the
  dynamic firing bounds;
* ``FT(s)`` — the *fireable* set: window-eligible transitions
  (``DLB(t_i) ≤ min DUB(t_k)``, strong semantics) filtered by the
  priority function ``π`` (smallest value wins);
* ``FD_s(t) = [DLB(t), min DUB(t_k)]`` — the firing domain, i.e. the
  admissible relative firing delays;
* ``fire(s, (t, q))`` — Definition 3.1: produce the successor state.

Clocks are stored as a dense tuple over *all* transitions with ``-1``
for disabled ones, which makes states hashable and canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulingError
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet

#: Clock value used for disabled transitions in the dense clock vector.
DISABLED = -1

#: Clock-reset policies for transitions that stay enabled across a firing.
#:
#: ``"paper"`` follows Definition 3.1 literally: a transition's clock is
#: reset iff it is the fired transition or it is enabled *after* but not
#: *before* the firing (compare final markings).
#:
#: ``"intermediate"`` uses the classical intermediate-marking semantics:
#: enabledness is re-checked against ``m − W(·, t)``; a transition that
#: loses its tokens to the firing and regains them from the output arcs
#: is considered newly enabled and its clock resets.
RESET_POLICIES = ("paper", "intermediate")


@dataclass(frozen=True)
class State:
    """An immutable TLTS state ``s = (m, c)``.

    ``marking`` is the dense token vector; ``clocks`` is the dense clock
    vector with :data:`DISABLED` for disabled transitions.
    """

    marking: tuple[int, ...]
    clocks: tuple[int, ...]

    def key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Canonical hashable key (the state is its own key)."""
        return (self.marking, self.clocks)


@dataclass(frozen=True)
class FiringCandidate:
    """A fireable transition with its firing domain at some state.

    Attributes:
        transition: transition index.
        dlb: dynamic lower bound (earliest admissible relative delay).
        dub: upper end of the firing domain, ``min_k DUB(t_k)`` — the
            latest delay that does not violate another enabled
            transition's latest firing time.  ``INF`` when no enabled
            transition has a finite LFT.
    """

    transition: int
    dlb: int
    dub: float

    def delays(self) -> Sequence[int]:
        """All admissible integer delays, earliest first.

        Unbounded domains cannot be enumerated; the engine's delay
        policies handle that case before calling this.
        """
        if self.dub == INF:
            raise SchedulingError(
                "cannot enumerate an unbounded firing domain"
            )
        return range(self.dlb, int(self.dub) + 1)


class StateEngine:
    """Reference semantics engine for a compiled net.

    The engine is stateless apart from the net and the configured
    clock-reset policy; all methods are pure functions of their inputs,
    which keeps the DFS scheduler free to memoise and backtrack.

    This is the *checked reference* implementation of Definition 3.1:
    every firing rescans all transition presets, O(|T|·|P|) per
    expansion.  The search hot path uses the semantics-identical
    :class:`repro.tpn.fastengine.IncrementalEngine`, which is
    cross-validated against this engine by the randomized equivalence
    suite.
    """

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        if reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        self.net = net
        self.reset_policy = reset_policy

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        """``s0 = (m0, c0)`` with zeroed clocks for enabled transitions."""
        marking = self.net.m0
        clocks = tuple(
            0 if self._enabled(marking, t) else DISABLED
            for t in range(self.net.num_transitions)
        )
        return State(marking, clocks)

    # ------------------------------------------------------------------
    # Enabledness
    # ------------------------------------------------------------------
    def _enabled(self, marking: tuple[int, ...], t: int) -> bool:
        for place, weight in self.net.pre[t]:
            if marking[place] < weight:
                return False
        return True

    def enabled_transitions(self, marking: tuple[int, ...]) -> list[int]:
        """``ET(m)`` — indices of transitions enabled by ``marking``."""
        return [
            t
            for t in range(self.net.num_transitions)
            if self._enabled(marking, t)
        ]

    def enabled_from_state(self, state: State) -> list[int]:
        """``ET(m)`` recovered from the dense clock vector (fast path)."""
        return [
            t for t, c in enumerate(state.clocks) if c != DISABLED
        ]

    # ------------------------------------------------------------------
    # Dynamic bounds
    # ------------------------------------------------------------------
    def dlb(self, state: State, t: int) -> int:
        """Dynamic lower bound ``max(0, EFT(t) − c(t))``."""
        clock = state.clocks[t]
        if clock == DISABLED:
            raise SchedulingError(
                f"DLB of disabled transition "
                f"{self.net.transition_names[t]!r}"
            )
        return max(0, self.net.eft[t] - clock)

    def dub(self, state: State, t: int) -> float:
        """Dynamic upper bound ``LFT(t) − c(t)`` (may be ``INF``)."""
        clock = state.clocks[t]
        if clock == DISABLED:
            raise SchedulingError(
                f"DUB of disabled transition "
                f"{self.net.transition_names[t]!r}"
            )
        lft = self.net.lft[t]
        return INF if lft == INF else lft - clock

    def min_dub(self, state: State) -> float:
        """``min_{t_k ∈ ET(m)} DUB(t_k)`` — the latest admissible delay.

        Under strong semantics time cannot progress beyond this bound
        without forcing some transition to fire.
        """
        best = INF
        lft = self.net.lft
        for t, clock in enumerate(state.clocks):
            if clock == DISABLED or lft[t] == INF:
                continue
            bound = lft[t] - clock
            if bound < best:
                best = bound
        return best

    # ------------------------------------------------------------------
    # Fireable set and firing domains
    # ------------------------------------------------------------------
    def fireable(
        self, state: State, priority_filter: bool = True
    ) -> list[FiringCandidate]:
        """``FT(s)`` with firing domains, per the paper's definition.

        The window condition keeps transitions whose earliest admissible
        delay does not exceed the global ``min DUB``; with
        ``priority_filter`` (default) only candidates achieving the
        minimum priority value among the window-eligible set survive —
        the window-first reading discussed in DESIGN.md.
        """
        ceiling = self.min_dub(state)
        eft = self.net.eft
        candidates: list[FiringCandidate] = []
        for t, clock in enumerate(state.clocks):
            if clock == DISABLED:
                continue
            lower = eft[t] - clock
            if lower < 0:
                lower = 0
            if lower <= ceiling:
                candidates.append(FiringCandidate(t, lower, ceiling))
        if priority_filter and candidates:
            priorities = self.net.priority
            best = min(priorities[c.transition] for c in candidates)
            candidates = [
                c for c in candidates if priorities[c.transition] == best
            ]
        return candidates

    def firing_domain(self, state: State, t: int) -> FiringCandidate:
        """``FD_s(t) = [DLB(t), min DUB]`` for an enabled transition."""
        return FiringCandidate(t, self.dlb(state, t), self.min_dub(state))

    # ------------------------------------------------------------------
    # Firing rule (Definition 3.1)
    # ------------------------------------------------------------------
    def fire(self, state: State, t: int, q: int) -> State:
        """Fire transition ``t`` after a relative delay of ``q``.

        Checks the firing preconditions (enabledness and admissible
        delay), then applies Definition 3.1: tokens move along the arcs,
        persistent clocks advance by ``q``, the fired and newly enabled
        transitions reset to zero, disabled transitions drop their
        clocks.
        """
        clock = state.clocks[t]
        if clock == DISABLED:
            raise SchedulingError(
                f"firing disabled transition "
                f"{self.net.transition_names[t]!r}"
            )
        if q < self.dlb(state, t):
            raise SchedulingError(
                f"delay {q} below DLB({self.net.transition_names[t]!r})="
                f"{self.dlb(state, t)}"
            )
        ceiling = self.min_dub(state)
        if q > ceiling:
            raise SchedulingError(
                f"delay {q} beyond min DUB={ceiling} (strong semantics)"
            )
        return self._fire_unchecked(state, t, q)

    def _fire_unchecked(self, state: State, t: int, q: int) -> State:
        """Apply Definition 3.1 without precondition checks (hot path)."""
        marking = list(state.marking)
        for place, delta in self.net.delta[t]:
            marking[place] += delta
        new_marking = tuple(marking)

        if self.reset_policy == "intermediate":
            # enabledness transiently re-checked against m − W(·, t)
            intermediate = list(state.marking)
            for place, weight in self.net.pre[t]:
                intermediate[place] -= weight
            reference = intermediate
        else:
            reference = None  # compare against the previous full marking

        old_clocks = state.clocks
        new_clocks = []
        pre = self.net.pre
        for tk in range(self.net.num_transitions):
            enabled_now = True
            for place, weight in pre[tk]:
                if new_marking[place] < weight:
                    enabled_now = False
                    break
            if not enabled_now:
                new_clocks.append(DISABLED)
                continue
            if tk == t:
                new_clocks.append(0)
                continue
            if reference is None:
                was_enabled = old_clocks[tk] != DISABLED
            else:
                was_enabled = True
                for place, weight in pre[tk]:
                    if reference[place] < weight:
                        was_enabled = False
                        break
                was_enabled = was_enabled and old_clocks[tk] != DISABLED
            if was_enabled:
                new_clocks.append(old_clocks[tk] + q)
            else:
                new_clocks.append(0)
        return State(new_marking, tuple(new_clocks))
