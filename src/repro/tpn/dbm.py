"""Packed DBM state-class engine — dense time at kernel speed.

**Overview for new contributors.**  The dense-time engine of
:mod:`repro.tpn.stateclass` represents a Berthomieu–Diaz state class
as nested tuples: every successor allocates a tuple-of-tuples bound
matrix, every visited-set probe hashes it element by element, and the
O(n²) incremental closure repair walks boxed ints and floats.  This
module is the packed counterpart — the same Definition 3.1 dense-time
semantics over flat buffers, the substrate the discrete kernel engine
(:mod:`repro.tpn.kernel`) proved out:

* the marking is an ``array('H')`` with the same 16-bit token cap and
  loud-overflow contract as the kernel engine;
* the bound matrix is a flat row-major ``array('q')`` of 64-bit
  integers with :data:`DINF` (``1 << 62``) as the unbounded sentinel —
  every finite bound is an exact integer, and the engine rejects nets
  whose static intervals exceed :data:`MAX_BOUND` up front so closure
  sums can never collide with the sentinel (lint rule ``EZT204``
  diagnoses this before a search starts);
* the enabled list is an ``array('i')`` of transition indices in DBM
  variable order (variable 0 is the zero reference);
* the 64-bit state key is a functional Zobrist hash: the marking part
  is maintained *incrementally* across firings (XOR out the old word,
  XOR in the new one), the matrix part is fused into successor
  construction — no second pass, and since the enabled list is a
  function of the marking it needs no words of its own.

The firing rule runs in one of two cores over the *same* buffer
layout:

* the optional C core (:mod:`repro.tpn._dbmc`, built lazily via cffi
  with graceful degradation) — one foreign call per successor
  performs the column-scan firability test, the O(n²) incremental
  closure repair, the marking update, the enabledness rescan, the
  persistence projection and the fused hash; a second entry point
  enumerates candidates (firability scans, priority filter, dense
  partial-order reduction, ``(lower, priority, index)`` sort) in one
  call;
* the pure-Python core in this file — line-for-line the same
  semantics, used when the compiled core is unavailable or
  ``EZRT_PURE=1`` force-disables it.

Both cores produce bit-identical classes *and hashes*, which the
differential suite in ``tests/test_dbm.py`` asserts firing-by-firing
against the tuple-based Floyd–Warshall specification of
:class:`repro.tpn.stateclass.StateClassEngine` across both reset
policies.
"""

from __future__ import annotations

import math
from array import array
from itertools import chain
from operator import itemgetter

from repro.errors import SchedulingError
from repro.tpn import _dbmc
from repro.tpn.interval import INF
from repro.tpn.kernel import MAX_TOKENS, _MASK64, _mix
from repro.tpn.net import CompiledNet
from repro.tpn.state import RESET_POLICIES
from repro.tpn.stateclass import Bound, StateClass, _canonical

#: Unbounded-entry sentinel in the packed ``array('q')`` bound matrix.
#: Far above any reachable finite bound (see :data:`MAX_BOUND`), so
#: ``min``/comparison logic needs no special cases.
DINF = 1 << 62

#: Largest static interval bound the packed representation accepts.
#: Closure entries are shortest-path distances over at most
#: :data:`MAX_VARS` hops, so |entry| ≤ MAX_VARS · MAX_BOUND < 2⁴¹ —
#: comfortably below :data:`DINF`; candidate lower bounds also fit the
#: C core's ``int32`` output pairs.  The engine raises loudly at
#: construction when a net exceeds the cap (lint rule ``EZT204``
#: reports the same condition pre-search, at spec level).
MAX_BOUND = 1 << 30

#: DBM size cap (variables per class, including the zero reference):
#: the Zobrist position key packs ``(i << 11) | j``.
MAX_VARS = 1 << 11


def _zd(ij: int, b: int) -> int:
    """Zobrist word of bound-matrix cell ``ij`` holding bound ``b``.

    ``ij`` packs ``(row << 11) | column``; a double splitmix64 pass
    folds the full 64-bit bound in (bounds are signed — the masked
    value is the two's-complement image, matching the C core's
    ``(uint64_t)`` cast bit for bit).
    """
    return _mix(_mix((3 << 62) ^ ij) ^ (b & _MASK64))


#: Shared Zobrist word tables.  Every entry is a pure function of its
#: key and independent of the net, so all engine instances share one
#: set of tables and repeated searches start warm; ``DbmEngine``
#: clears the lot past :data:`_CACHE_CAP` total rows+matrices.
_ZM_CACHE: dict[int, int] = {}
_ZD_CACHE: dict[tuple[int, int], int] = {}
_ZROW_CACHE: dict[tuple, int] = {}
_DBM_MEMO: dict[tuple, int] = {}
_CACHE_CAP = 1 << 21


class PackedClass:
    """A Berthomieu–Diaz state class as packed flat buffers.

    Identity (equality) lives in the marking and bound-matrix buffers
    — the enabled list is a function of the marking, so it carries no
    identity of its own and two equal classes always agree on it.
    ``__hash__`` returns the precomputed fused Zobrist key, so set
    membership never walks the buffers on the non-colliding path.
    ``marking`` is indexable, so the compiled marking predicates
    (:meth:`CompiledNet.is_final`,
    :meth:`CompiledNet.has_missed_deadline`) work unchanged.
    """

    __slots__ = (
        "marking", "enabled", "dbm", "size", "_mhash", "_hash",
        "_cv", "_eset",
    )

    def __init__(
        self,
        marking: array,
        enabled: array,
        dbm: array,
        size: int,
        mhash: int,
        key: int,
    ):
        self.marking = marking
        self.enabled = enabled
        self.dbm = dbm
        self.size = size
        self._mhash = mhash
        self._hash = key
        # lazily-built cffi views over the three immutable buffers
        # (set on first native-core call; stays None on the pure path)
        self._cv = None
        # lazily-built frozen set view of ``enabled`` (pure path);
        # shared with successors under copy-on-write
        self._eset = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedClass):
            return NotImplemented
        if self.marking != other.marking:
            return False
        mine, theirs = self.dbm, other.dbm
        if type(mine) is not type(theirs):
            # pure-path classes carry the matrix as a flat tuple,
            # native ones as an array('q') — same cells either way
            return list(mine) == list(theirs)
        return mine == theirs

    def __repr__(self) -> str:
        return (
            f"PackedClass(m={self.marking.tolist()}, "
            f"enabled={self.enabled.tolist()})"
        )

    @property
    def hash64(self) -> int:
        """The fused 64-bit Zobrist key, as a public value."""
        return self._hash

    def bounds_of(self, transition: int) -> tuple[Bound, Bound]:
        """Earliest/latest relative firing time of an enabled transition."""
        try:
            var = self.enabled.index(transition) + 1
        except ValueError:
            raise SchedulingError(
                f"transition {transition} is not enabled in this class"
            ) from None
        lower = -self.dbm[var]
        upper = self.dbm[var * self.size]
        return (lower, INF if upper >= DINF else upper)

    def unpack(self) -> StateClass:
        """Convert to the tuple-based reference representation."""
        size = self.size
        dbm = self.dbm
        rows = []
        for i in range(size):
            row = dbm[i * size:(i + 1) * size]
            rows.append(
                tuple(INF if b >= DINF else b for b in row)
            )
        return StateClass(
            tuple(self.marking), tuple(self.enabled), tuple(rows)
        )

    def export(self) -> tuple[bytes, bytes]:
        """Minimal picklable form: the two raw buffers.

        The enabled list and both hash parts are recomputed by the
        receiving side's :meth:`DbmEngine.revive` — the marking
        determines the enabled list, and ``len(dbm)`` determines the
        matrix size.
        """
        dbm = self.dbm
        if type(dbm) is not array:  # pure-path class (flat tuple)
            dbm = array("q", dbm)
        return (self.marking.tobytes(), dbm.tobytes())


class _DbmNativeCore:
    """Per-net handle on the compiled DBM core: flattened CSR arrays
    plus preallocated output buffers, all kept alive for the net
    pointer's lifetime."""

    __slots__ = (
        "ffi",
        "lib",
        "net_ptr",
        "_keepalive",
        "_out_enb",
        "_out_dbm",
        "_out",
        "_red",
        "_hash_io",
        "_null_i32",
    )

    def __init__(self, module, net: CompiledNet):
        ffi = module.ffi
        lib = module.lib
        self.ffi = ffi
        self.lib = lib

        def csr(rows, pair_index):
            off = array("i", [0])
            flat_a = array("i")
            flat_b = array("i") if pair_index else None
            for row in rows:
                if pair_index:
                    for a, b in row:
                        flat_a.append(a)
                        flat_b.append(b)
                else:
                    for a in row:
                        flat_a.append(a)
                off.append(len(flat_a))
            return off, flat_a, flat_b

        pre_off, pre_place, pre_w = csr(net.pre, True)
        d_off, d_place, d_d = csr(net.delta, True)
        pc_off, pc_t, _ = csr(
            [sorted(s) for s in net.post_conflicts], False
        )
        eft = array("i", net.eft)
        lft = array(
            "i", [-1 if b == INF else int(b) for b in net.lft]
        )
        prio = array("i", net.priority)
        flags = bytearray(net.num_transitions)
        for t in range(net.num_transitions):
            flags[t] = (
                (2 if t in net.miss_transitions else 0)
                | (4 if net.conflict_free[t] else 0)
            )

        def ptr(a):
            return ffi.from_buffer("int32_t[]", a)

        # the cffi buffer views (and the arrays they view) must stay
        # alive as long as the C net reads them
        self._keepalive = [
            pre_off, pre_place, pre_w, d_off, d_place, d_d,
            pc_off, pc_t, eft, lft, prio, flags,
        ]
        buffers = [
            ptr(pre_off), ptr(pre_place), ptr(pre_w),
            ptr(d_off), ptr(d_place), ptr(d_d),
            ptr(pc_off), ptr(pc_t),
            ptr(eft), ptr(lft), ptr(prio),
            ffi.from_buffer("uint8_t[]", flags),
        ]
        self._keepalive.extend(buffers)
        raw = lib.dc_net_new(
            net.num_places, net.num_transitions, *buffers
        )
        if raw == ffi.NULL:
            raise MemoryError("dc_net_new failed")
        self.net_ptr = ffi.gc(raw, lib.dc_net_free)
        max_size = net.num_transitions + 1
        self._out_enb = ffi.new(
            "int32_t[]", max(1, net.num_transitions)
        )
        self._out_dbm = ffi.new("int64_t[]", max_size * max_size)
        self._out = ffi.new(
            "int32_t[]", 2 * max(1, net.num_transitions)
        )
        self._red = ffi.new("int32_t *")
        self._hash_io = ffi.new("uint64_t[2]")
        # stand-in pointer for zero-length enabled buffers (cffi
        # cannot take a C view of an empty array)
        self._null_i32 = ffi.new("int32_t[1]")

    def _enb_ptr(self, enabled: array):
        if not enabled:
            return self._null_i32
        return self.ffi.from_buffer("int32_t[]", enabled)

    def fire(
        self, cls: PackedClass, transition: int, intermediate: int
    ):
        """``None`` when not firable, ``-2`` on token overflow, else
        the packed successor class."""
        ffi = self.ffi
        cv = cls._cv
        if cv is None:
            # classes are fired/enumerated several times each; the
            # immutable input views are built once and kept on the class
            cv = (
                ffi.from_buffer("uint16_t[]", cls.marking),
                self._enb_ptr(cls.enabled),
                ffi.from_buffer("int64_t[]", cls.dbm),
            )
            cls._cv = cv
        new_mark = array("H", cls.marking)
        hio = self._hash_io
        hio[0] = cls._mhash
        k = self.lib.dc_fire(
            self.net_ptr,
            cv[0],
            cv[1],
            len(cls.enabled),
            cv[2],
            transition,
            intermediate,
            ffi.from_buffer("uint16_t[]", new_mark),
            self._out_enb,
            self._out_dbm,
            hio,
        )
        if k < 0:
            return k
        new_size = k + 1
        enabled = array("i")
        if k:
            enabled.frombytes(ffi.buffer(self._out_enb, 4 * k))
        dbm = array("q")
        dbm.frombytes(
            ffi.buffer(self._out_dbm, 8 * new_size * new_size)
        )
        mhash = hio[0]
        return PackedClass(
            new_mark, enabled, dbm, new_size, mhash, mhash ^ hio[1]
        )

    def candidates(
        self, cls: PackedClass, strict: int, partial_order: int
    ) -> tuple[list[tuple[int, int]], bool]:
        ffi = self.ffi
        cv = cls._cv
        if cv is None:
            cv = (
                ffi.from_buffer("uint16_t[]", cls.marking),
                self._enb_ptr(cls.enabled),
                ffi.from_buffer("int64_t[]", cls.dbm),
            )
            cls._cv = cv
        out = self._out
        n = self.lib.dc_candidates(
            self.net_ptr,
            cv[1],
            len(cls.enabled),
            cv[2],
            strict,
            partial_order,
            out,
            self._red,
        )
        return (
            [(out[2 * i], out[2 * i + 1]) for i in range(n)],
            bool(self._red[0]),
        )


class DbmEngine:
    """Packed state-class construction over a compiled net.

    Same dense-time semantics as the tuple-based
    :class:`~repro.tpn.stateclass.StateClassEngine` (both reset
    policies), but classes are flat buffers with precomputed hash
    keys, and — when the compiled core is available — the whole
    firing rule and the whole candidate pipeline are one foreign call
    each.  ``native`` records which core is live.
    """

    __slots__ = (
        "net",
        "reset_policy",
        "native",
        "_core",
        "_intermediate",
        "_pre",
        "_delta",
        "_eft",
        "_lft_i",
        "_prio",
        "_miss",
        "_conflict_free",
        "_post_conflicts",
        "_num_transitions",
        "_zm_cache",
        "_zd_cache",
        "_zrow_cache",
        "_dbm_memo",
        "_aff",
    )

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        if reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        if net.num_transitions + 1 > MAX_VARS:
            raise SchedulingError(
                "packed DBM engine: net has more than "
                f"{MAX_VARS - 1} transitions"
            )
        for t in range(net.num_transitions):
            lft = net.lft[t]
            if net.eft[t] > MAX_BOUND or (
                lft != INF and lft > MAX_BOUND
            ):
                raise SchedulingError(
                    "packed DBM engine: static interval of "
                    f"{net.transition_names[t]!r} exceeds the bound "
                    f"cap ({MAX_BOUND}); see lint rule EZT204"
                )
        self.net = net
        self.reset_policy = reset_policy
        self._intermediate = reset_policy == "intermediate"
        self._pre = net.pre
        self._delta = net.delta
        self._eft = net.eft
        # integer LFT vector with DINF encoding the unbounded bound
        self._lft_i = tuple(
            DINF if b == INF else int(b) for b in net.lft
        )
        self._prio = net.priority
        self._miss = net.miss_transitions
        self._conflict_free = net.conflict_free
        self._post_conflicts = net.post_conflicts
        self._num_transitions = net.num_transitions
        # the Zobrist word tables are pure functions of their keys
        # (place/value, cell/bound, row, whole matrix — all
        # net-independent), so every engine shares the module-level
        # tables: repeated searches run with hot tables.  A crude
        # high-water cap keeps a long-lived process (the service, big
        # batches) from accumulating tables without bound.
        if len(_ZROW_CACHE) + len(_DBM_MEMO) > _CACHE_CAP:
            _ZM_CACHE.clear()
            _ZD_CACHE.clear()
            _ZROW_CACHE.clear()
            _DBM_MEMO.clear()
        self._zm_cache = _ZM_CACHE
        self._zd_cache = _ZD_CACHE
        # XOR word per whole matrix row, keyed by (row index, cells):
        # the pure fallback's hash recompute then costs one dict hit
        # per row instead of one per cell
        self._zrow_cache = _ZROW_CACHE
        # whole-matrix hash memo: canonical matrices recur heavily
        # across a class graph, so the common case is one dict hit
        self._dbm_memo = _DBM_MEMO
        # transitions whose enabledness can change when t fires: those
        # sharing an input place with t's marking delta.  The pure
        # fallback re-checks only these instead of rescanning T.
        watchers: list[list[int]] = [
            [] for _ in range(net.num_places)
        ]
        for u in range(net.num_transitions):
            for place, _weight in net.pre[u]:
                watchers[place].append(u)
        self._aff = tuple(
            tuple(
                sorted(
                    {
                        u
                        for place, d in net.delta[t]
                        if d
                        for u in watchers[place]
                    }
                )
            )
            for t in range(net.num_transitions)
        )
        self._core = None
        if net.num_transitions and net.num_places:
            module = _dbmc.load()
            if module is not None:
                self._core = _DbmNativeCore(module, net)
        self.native = self._core is not None

    # ------------------------------------------------------------------
    # Zobrist hashing (pure side; the C core mirrors these bit for bit)
    # ------------------------------------------------------------------
    def _zm(self, p: int, v: int) -> int:
        key = (p << 20) ^ v
        cache = self._zm_cache
        word = cache.get(key)
        if word is None:
            word = _mix((1 << 62) ^ key)
            cache[key] = word
        return word

    def _zd(self, ij: int, b: int) -> int:
        key = (ij, b)
        cache = self._zd_cache
        word = cache.get(key)
        if word is None:
            word = _zd(ij, b)
            cache[key] = word
        return word

    def _mark_hash(self, marking) -> int:
        zm = self._zm
        h = 0
        for p, v in enumerate(marking):
            h ^= zm(p, v)
        return h

    def _dbm_hash(self, dbm, size: int) -> int:
        # the hot recompute of the pure fallback: whole matrix rows
        # recur across classes (persistent blocks project through
        # firings), so the XOR word of a full row is memoised — the
        # common case is one C-speed dict hit per row, the miss path
        # folds the row cell by cell exactly as the C core does
        cache = self._zrow_cache
        get = cache.get
        zd = self._zd
        h = 0
        idx = 0
        for i in range(size):
            end = idx + size
            key = (i, *dbm[idx:end])
            idx = end
            word = get(key)
            if word is None:
                ij = i << 11
                word = 0
                for j, b in enumerate(key[1:]):
                    word ^= zd(ij | j, b)
                cache[key] = word
            h ^= word
        return h

    # ------------------------------------------------------------------
    # Class construction
    # ------------------------------------------------------------------
    def _enabled(self, marking) -> list[int]:
        pre = self._pre
        result = []
        for t in range(self._num_transitions):
            ok = True
            for place, weight in pre[t]:
                if marking[place] < weight:
                    ok = False
                    break
            if ok:
                result.append(t)
        return result

    def initial_class(self) -> PackedClass:
        """The root class, canonicalised by the reference
        Floyd–Warshall closure and then packed — one O(n³) pass per
        search guarantees the root is byte-identical to the
        specification engine's."""
        net = self.net
        if any(v > MAX_TOKENS for v in net.m0):
            raise SchedulingError(
                "packed DBM engine: initial marking exceeds the "
                f"packed token cap ({MAX_TOKENS} per place)"
            )
        marking = array("H", net.m0)
        enabled = self._enabled(marking)
        size = len(enabled) + 1
        matrix: list[list[Bound]] = [
            [INF] * size for _ in range(size)
        ]
        for i in range(size):
            matrix[i][i] = 0
        for var, t in enumerate(enabled, start=1):
            matrix[var][0] = net.lft[t]
            matrix[0][var] = -net.eft[t]
        closed = _canonical(matrix)
        if closed is None:
            raise SchedulingError("initial class is inconsistent")
        flat = array(
            "q",
            (
                DINF if b == INF else int(b)
                for row in closed
                for b in row
            ),
        )
        mhash = self._mark_hash(marking)
        return PackedClass(
            marking,
            array("i", enabled),
            flat,
            size,
            mhash,
            mhash ^ self._dbm_hash(flat, size),
        )

    def pack(self, cls: StateClass) -> PackedClass:
        """Wrap a reference :class:`StateClass` into packed buffers."""
        marking = array("H", cls.marking)
        size = len(cls.enabled) + 1
        flat = array(
            "q",
            (
                DINF if b == INF else int(b)
                for row in cls.dbm
                for b in row
            ),
        )
        mhash = self._mark_hash(marking)
        return PackedClass(
            marking,
            array("i", cls.enabled),
            flat,
            size,
            mhash,
            mhash ^ self._dbm_hash(flat, size),
        )

    def revive(self, marking: bytes, dbm: bytes) -> PackedClass:
        """Rebuild a class from :meth:`PackedClass.export` buffers."""
        mark = array("H")
        mark.frombytes(marking)
        flat = array("q")
        flat.frombytes(dbm)
        size = math.isqrt(len(flat))
        enabled = array("i", self._enabled(mark))
        mhash = self._mark_hash(mark)
        return PackedClass(
            mark,
            enabled,
            flat,
            size,
            mhash,
            mhash ^ self._dbm_hash(flat, size),
        )

    # ------------------------------------------------------------------
    # Firing rule (dense-time Definition 3.1, packed)
    # ------------------------------------------------------------------
    def fire(self, cls: PackedClass, transition: int) -> PackedClass:
        """Successor class after firing ``transition``."""
        successor = self.try_fire(cls, transition)
        if successor is None:
            raise SchedulingError(
                f"transition "
                f"{self.net.transition_names[transition]!r} is not "
                "firable from this class"
            )
        return successor

    def try_fire(
        self, cls: PackedClass, transition: int
    ) -> PackedClass | None:
        """Successor class, or ``None`` when the firing is infeasible.

        Same incremental closure repair and already-closed projection
        as the tuple engine's
        :meth:`~repro.tpn.stateclass.StateClassEngine.try_fire`, over
        the flat buffers; one foreign call when the compiled core is
        live.
        """
        core = self._core
        if core is not None:
            result = core.fire(
                cls, transition, 1 if self._intermediate else 0
            )
            if result == -1:
                return None
            if result == -2:
                self._overflow(transition)
            return result
        return self._try_fire_pure(cls, transition)

    def _overflow(self, transition: int) -> None:
        raise SchedulingError(
            "packed DBM engine: firing "
            f"{self.net.transition_names[transition]!r} overflows "
            f"the packed token cap ({MAX_TOKENS} per place)"
        )

    def _try_fire_pure(
        self, cls: PackedClass, transition: int
    ) -> PackedClass | None:
        enabled = cls.enabled
        var_t = 0
        for var, t in enumerate(enabled, start=1):
            if t == transition:
                var_t = var
                break
        if not var_t:
            return None
        size = cls.size
        # pure-path classes carry the matrix as a flat tuple; array
        # backed ones (the root, revived imports) are unboxed once so
        # every later cell access is a plain C-level read
        cells = cls.dbm
        kind = type(cells)
        if kind is tuple:
            cells = list(cells)
        elif kind is not list:
            cells = cells.tolist()
        # firability: adding θ_t ≤ θ_u for every enabled u keeps the
        # canonical system satisfiable iff no column entry into var_t
        # is negative (see the tuple engine for the cycle argument)
        col_t = cells[var_t::size]
        for var_u in range(1, size):
            if col_t[var_u] < 0:
                return None
        # incremental closure: the new shortest row out of var_t is
        # the column-wise minimum over every enabled row (a C-level
        # map), and any other entry improves only by routing through
        # var_t once.  The per-row repair itself is deferred until the
        # surviving (persistent) rows are known — discarded rows are
        # never repaired.
        rows = [cells[i * size:(i + 1) * size] for i in range(size)]
        if size > 2:
            row_t = list(map(min, *rows[1:]))
        else:
            row_t = rows[var_t]

        # new marking, with the marking hash maintained incrementally
        # (the word cache is probed inline; _zm fills it on a miss)
        new_mark = array("H", cls.marking)
        mhash = cls._mhash
        zget = self._zm_cache.get
        for place, delta in self._delta[transition]:
            old = new_mark[place]
            value = old + delta
            if value < 0 or value > MAX_TOKENS:
                self._overflow(transition)
            pk = place << 20
            word = zget(pk ^ old)
            if word is None:
                word = self._zm(place, old)
            mhash ^= word
            word = zget(pk ^ value)
            if word is None:
                word = self._zm(place, value)
            mhash ^= word
            new_mark[place] = value

        # enabledness changes only for transitions sharing an input
        # place with the firing's marking delta — re-check those,
        # everything else keeps its status.  The enabled set rides on
        # the class (copy-on-write into the successor), and the "no
        # change" case reuses the parent's enabled array outright
        pre = self._pre
        enabled_set = cls._eset
        if enabled_set is None:
            enabled_set = set(enabled)
            cls._eset = enabled_set
        newly: list[int] = []
        changed = False
        for u in self._aff[transition]:
            for place, weight in pre[u]:
                if new_mark[place] < weight:
                    if u in enabled_set:
                        if not changed:
                            enabled_set = enabled_set.copy()
                            changed = True
                        enabled_set.discard(u)
                    break
            else:
                if u not in enabled_set:
                    if not changed:
                        enabled_set = enabled_set.copy()
                        changed = True
                    enabled_set.add(u)
                    newly.append(u)
        if changed:
            new_enabled = sorted(enabled_set)
            enabled_arr = array("i", new_enabled)
        else:
            new_enabled = enabled
            enabled_arr = cls.enabled
        if self._intermediate:
            inter = list(cls.marking)
            for place, weight in self._pre[transition]:
                inter[place] -= weight
        else:
            inter = None

        new_size = len(new_enabled) + 1
        # the successor matrix is written down already closed: the
        # persistent block is a projection of the closed matrix (the
        # triangle inequality holds inside it) and a newly enabled
        # variable's shortest paths all route through the origin — the
        # same argument as the tuple engine, so construction cannot
        # fail
        pers_old = [0] * new_size
        new_vars: list[int] = []
        lft_i = self._lft_i
        eft = self._eft
        pre = self._pre
        for new_var, t in enumerate(new_enabled, start=1):
            old_var = 0
            if t != transition and t not in newly:
                old_var = enabled.index(t) + 1
            if old_var and inter is not None:
                for place, weight in pre[t]:
                    if inter[place] < weight:
                        old_var = 0
                        break
            if old_var:
                pers_old[new_var] = old_var
            else:
                new_vars.append(new_var)

        # closure repair, restricted to the rows the projection will
        # actually read: the persistent rows (the origin row and the
        # rows of disabled variables are discarded unrepaired)
        for i in pers_old:
            if not i:
                continue
            row_i = rows[i]  # slices are already fresh lists
            d_it = col_t[i]
            if d_it != DINF:
                for j, d_tj in enumerate(row_t):
                    if d_tj == DINF:
                        continue
                    candidate = d_it + d_tj
                    if candidate < row_i[j]:
                        row_i[j] = candidate

        origin = [DINF] * new_size  # successor row 0
        origin[0] = 0
        col0 = [0] * new_size  # successor D'[i][0] column
        for new_var, t in enumerate(new_enabled, start=1):
            old_var = pers_old[new_var]
            if old_var:
                # θ'_u = θ_u − θ_t: bounds against the new origin
                col0[new_var] = rows[old_var][var_t]
                origin[new_var] = row_t[old_var]
            else:
                col0[new_var] = lft_i[t]
                origin[new_var] = -eft[t]
        # a persistent row is one projection gather over the closed
        # matrix (its diagonal zero rides along: closed[o][o] == 0);
        # new variables start from their static interval row.  The
        # gather runs at C speed via itemgetter; position 0 and the
        # new-variable columns are patched afterwards (both map to
        # pers_old == 0, where the gather read a stale cell)
        fresh_rows: list[list[int]] = [origin]
        gather = (
            itemgetter(*pers_old) if new_size > 2 else None
        )
        for i_var in range(1, new_size):
            old_i = pers_old[i_var]
            if old_i:
                row_old = rows[old_i]
                if gather is not None:
                    row = list(gather(row_old))
                    for nv in new_vars:
                        row[nv] = DINF
                else:
                    row = [
                        row_old[o] if o else DINF for o in pers_old
                    ]
            else:
                row = [DINF] * new_size
                row[i_var] = 0
            row[0] = col0[i_var]
            fresh_rows.append(row)
        # cross entries of newly enabled variables: via the origin
        for nv in new_vars:
            row_n = fresh_rows[nv]
            up = col0[nv]
            down = origin[nv]
            for j in range(1, new_size):
                if j == nv:
                    continue
                d_0j = origin[j]
                if up != DINF and d_0j != DINF:
                    candidate = up + d_0j
                    if candidate < row_n[j]:
                        row_n[j] = candidate
                d_j0 = fresh_rows[j][0]
                if d_j0 != DINF:
                    candidate = d_j0 + down
                    if candidate < fresh_rows[j][nv]:
                        fresh_rows[j][nv] = candidate
        # the successor keeps the flat *tuple* as its matrix: in pure
        # mode nothing needs the buffer protocol, skipping the array
        # round-trip avoids re-boxing every cell downstream (export
        # converts on demand), and the tuple doubles as the hash-memo
        # key.  The Zobrist fold runs over the row lists in hand
        # rather than re-slicing the flat buffer — same per-row
        # memoisation as _dbm_hash
        fresh = tuple(chain.from_iterable(fresh_rows))
        memo = self._dbm_memo
        dhash = memo.get(fresh)
        if dhash is None:
            cache = self._zrow_cache
            get = cache.get
            dhash = 0
            for i, row in enumerate(fresh_rows):
                rkey = (i, *row)
                word = get(rkey)
                if word is None:
                    zd = self._zd
                    ij = i << 11
                    word = 0
                    for j, b in enumerate(row):
                        word ^= zd(ij | j, b)
                    cache[rkey] = word
                dhash ^= word
            memo[fresh] = dhash
        successor = PackedClass(
            new_mark,
            enabled_arr,
            fresh,
            new_size,
            mhash,
            mhash ^ dhash,
        )
        successor._eset = enabled_set
        return successor

    # ------------------------------------------------------------------
    # Firability / windows / candidate enumeration
    # ------------------------------------------------------------------
    def firable(self, cls: PackedClass) -> list[int]:
        """Transitions firable from the class (column scans)."""
        dbm = cls.dbm
        size = cls.size
        n = size * size
        result = []
        for var, t in enumerate(cls.enabled, start=1):
            idx = var + size
            while idx < n:
                if dbm[idx] < 0:
                    break
                idx += size
            else:
                result.append(t)
        return result

    def fire_window(
        self, cls: PackedClass, transition: int
    ) -> tuple[int, Bound] | None:
        """Dense window of relative times at which ``transition`` can
        fire *next* from this class, or ``None`` when it cannot."""
        var = 0
        for v, t in enumerate(cls.enabled, start=1):
            if t == transition:
                var = v
                break
        if not var:
            return None
        dbm = cls.dbm
        size = cls.size
        upper = dbm[var * size]
        for u in range(1, size):
            if dbm[u * size + var] < 0:
                return None
            bound = dbm[u * size]
            if bound < upper:
                upper = bound
        lower = -dbm[var]
        return (lower, INF if upper >= DINF else upper)

    def candidates(
        self, cls: PackedClass, strict: bool, partial_order: bool
    ) -> tuple[list[tuple[int, int]], bool]:
        """Ordered ``(transition, dense lower bound)`` pairs plus the
        partial-order reduction flag.

        The firability column scans, the miss filter, the strict
        priority filter, the dense forced-immediate reduction (see
        :meth:`repro.scheduler.core.StateClassAdapter`) and the
        ``(lower, priority, index)`` ordering all run inside one core
        call when the compiled core is live.
        """
        core = self._core
        if core is not None:
            return core.candidates(
                cls, 1 if strict else 0, 1 if partial_order else 0
            )
        return self._candidates_pure(cls, strict, partial_order)

    def _candidates_pure(
        self, cls: PackedClass, strict: bool, partial_order: bool
    ) -> tuple[list[tuple[int, int]], bool]:
        miss = self._miss
        dbm = cls.dbm
        size = cls.size
        n = size * size
        cands: list[tuple[int, int]] = []
        for var, t in enumerate(cls.enabled, start=1):
            if t in miss:
                continue
            # early-break column scan over the flat buffer: no strided
            # slice is materialised on the (common) blocked columns
            idx = var + size
            while idx < n:
                if dbm[idx] < 0:
                    break
                idx += size
            else:
                cands.append((t, -dbm[var]))
        if not cands:
            return cands, False

        prio = self._prio
        if strict:
            best = min(prio[t] for t, _lo in cands)
            cands = [(t, lo) for t, lo in cands if prio[t] == best]

        if partial_order and len(cands) > 1:
            reduced = self._forced_immediate(cls, cands)
            if reduced is not None:
                return [reduced], True

        if len(cands) > 1:
            expanded = [(lo, prio[t], t) for t, lo in cands]
            expanded.sort()
            cands = [(t, lo) for lo, _p, t in expanded]
        return cands, False

    def _forced_immediate(
        self, cls: PackedClass, cands: list[tuple[int, int]]
    ) -> tuple[int, int] | None:
        """Partial-order reduction pick on a packed class.

        The packed image of
        :meth:`repro.scheduler.core.StateClassAdapter`'s dense rule: a
        conflict-free candidate whose own firing bounds are exactly
        ``[0, 0]`` and whose postset feeds no enabled transition fires
        alone.
        """
        conflict_free = self._conflict_free
        post_conflicts = self._post_conflicts
        dbm = cls.dbm
        size = cls.size
        enabled = cls._eset
        if enabled is None:
            enabled = set(cls.enabled)
            cls._eset = enabled
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            var = cls.enabled.index(t) + 1
            if dbm[var * size] != 0:
                continue  # not forced at this instant
            for other in post_conflicts[t]:
                if other in enabled:
                    break  # an enabled transition consumes from t•
            else:
                return (t, 0)
        return None
