"""Timed labeled transition system derived from a time Petri net.

The semantics of a TPN ``P`` is the TLTS ``L_P = (S, Σ, →, s0)`` (paper
Section 3.1): states are marking/clock pairs, actions are labeled
``(t, q)`` — transition ``t`` fired after relative delay ``q`` inside its
firing domain — and the transition relation is induced by the firing
rule.  This module provides:

* :class:`Action` — a ``(t, q)`` label with absolute-time bookkeeping;
* :class:`Run` — a finite labeled run (prefix of a firing schedule);
* :class:`TLTS` — successor generation and run replay, including the
  feasibility check of Definition 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchedulingError
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.net import CompiledNet
from repro.tpn.state import State, StateEngine


@dataclass(frozen=True)
class Action:
    """A TLTS action ``(t, q)`` with its absolute firing time.

    Attributes:
        transition: transition index in the compiled net.
        delay: relative delay ``q`` within the firing domain.
        time: absolute time of the firing (sum of delays so far).
    """

    transition: int
    delay: int
    time: int

    def labeled(self, net: CompiledNet) -> tuple[str, int, int]:
        """``(name, q, absolute_time)`` for presentation."""
        return (net.transition_names[self.transition], self.delay, self.time)


@dataclass
class Run:
    """A finite labeled run ``s0 --(t1,q1)--> s1 ... --(tn,qn)--> sn``.

    The run records every intermediate state; ``states[i]`` is the state
    *before* ``actions[i]`` fires, and ``states[-1]`` is the final state.
    """

    states: list[State] = field(default_factory=list)
    actions: list[Action] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Number of firings in the run."""
        return len(self.actions)

    @property
    def final_state(self) -> State:
        if not self.states:
            raise SchedulingError("empty run has no final state")
        return self.states[-1]

    @property
    def makespan(self) -> int:
        """Total elapsed time (absolute time of the last firing)."""
        return self.actions[-1].time if self.actions else 0

    def labels(self, net: CompiledNet) -> list[tuple[str, int, int]]:
        """Human-readable ``(transition, delay, time)`` triples."""
        return [a.labeled(net) for a in self.actions]

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)


class TLTS:
    """The timed labeled transition system of a compiled net.

    Thin layer over the successor engines adding run construction,
    successor enumeration under a delay policy, and the Definition-3.2
    feasibility predicate used throughout the test-suite.  Successor
    generation and replay run on the incremental O(degree) engine
    (:class:`~repro.tpn.fastengine.IncrementalEngine`); the checked
    :class:`StateEngine` stays available as ``engine`` for reference
    semantics and explicit ``fire()`` validation.
    """

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        self.net = net
        self.engine = StateEngine(net, reset_policy=reset_policy)
        self.fast = IncrementalEngine(net, reset_policy=reset_policy)

    def initial_state(self) -> State:
        return self.engine.initial_state()

    def successors(
        self,
        state: State | FastState,
        priority_filter: bool = True,
        earliest_only: bool = True,
    ) -> list[tuple[int, int, State]]:
        """Enumerate ``(t, q, s')`` successors of ``state``.

        ``earliest_only`` restricts each fireable transition to its
        earliest admissible delay ``q = DLB(t)``; otherwise the full
        integer firing domain is expanded (bounded domains only).
        """
        fast = self.fast
        fs = (
            state
            if isinstance(state, FastState)
            else fast.lift(state)
        )
        result: list[tuple[int, int, State]] = []
        for cand in fast.fireable(fs, priority_filter):
            if earliest_only:
                delays: Iterable[int] = (cand.dlb,)
            else:
                delays = cand.delays()
            for q in delays:
                result.append(
                    (
                        cand.transition,
                        q,
                        fast.successor(fs, cand.transition, q).to_state(),
                    )
                )
        return result

    # ------------------------------------------------------------------
    # Run replay (Definition 3.2)
    # ------------------------------------------------------------------
    def replay(
        self,
        firings: Iterable[tuple[int | str, int]],
        priority_filter: bool = False,
    ) -> Run:
        """Replay a sequence of ``(transition, delay)`` firings.

        Transitions may be given by index or name.  Every firing is
        validated against the fireable set and firing domain of the
        current state — i.e. the replay *proves* the sequence is a legal
        run of the TLTS; any violation raises :class:`SchedulingError`.

        ``priority_filter`` applies the paper's strict minimum-priority
        restriction of ``FT(s)``.  It defaults to off because this
        implementation treats the priority function as a search-ordering
        device (the scheduler's default ``"ordered"`` mode), whose runs
        are legal timed behaviours even when a lower-priority transition
        fires first.
        """
        fast = self.fast
        fs = fast.initial()
        run = Run(states=[fs.to_state()])
        now = 0
        for ref, q in firings:
            t = self._resolve(ref)
            candidates = {
                c.transition: c
                for c in fast.fireable(
                    fs, priority_filter=priority_filter
                )
            }
            if t not in candidates:
                name = self.net.transition_names[t]
                raise SchedulingError(
                    f"transition {name!r} is not fireable at step "
                    f"{run.length} (fireable: "
                    f"{[self.net.transition_names[c] for c in candidates]})"
                )
            cand = candidates[t]
            if not (cand.dlb <= q <= cand.dub):
                name = self.net.transition_names[t]
                raise SchedulingError(
                    f"delay {q} outside firing domain "
                    f"[{cand.dlb}, {cand.dub}] of {name!r} at step "
                    f"{run.length}"
                )
            now += q
            run.actions.append(Action(t, q, now))
            fs = fast.successor(fs, t, q)
            run.states.append(fs.to_state())
        return run

    def is_feasible_schedule(
        self,
        firings: Iterable[tuple[int | str, int]],
        priority_filter: bool = False,
    ) -> bool:
        """Definition 3.2: legal run from ``s0`` reaching ``M_F``.

        Returns ``True`` iff the firing sequence replays without
        violations *and* its final marking satisfies the net's desired
        final marking.
        """
        try:
            run = self.replay(firings, priority_filter=priority_filter)
        except SchedulingError:
            return False
        return self.net.is_final(run.final_state.marking)

    def _resolve(self, ref: int | str) -> int:
        if isinstance(ref, str):
            try:
                return self.net.transition_index[ref]
            except KeyError:
                raise SchedulingError(
                    f"unknown transition {ref!r}"
                ) from None
        if not 0 <= ref < self.net.num_transitions:
            raise SchedulingError(f"transition index {ref} out of range")
        return ref
