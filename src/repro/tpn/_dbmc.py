"""Optional compiled core of the packed DBM state-class engine.

This module owns the native half of :mod:`repro.tpn.dbm`: a small C
translation unit (embedded below as a string, so the sdist needs no
extra data files) compiled on demand through cffi's API mode into a
shared object cached next to this package.  It is the dense-time
sibling of :mod:`repro.tpn._kernelc` and shares its degradation
contract — the DBM engine asks :func:`load` for the compiled module
and falls back to its pure-Python core whenever the answer is
``None``:

* ``EZRT_PURE=1`` in the environment force-disables the compiled core
  (CI runs the whole test suite once in this mode);
* a missing cffi, a missing C compiler, an unwritable cache directory
  or any other build/import failure is swallowed after recording the
  exception on :data:`LOAD_ERROR` for diagnostics.

Two entry points carry the whole dense-time hot path:

* ``dc_fire`` — the firability column scan, the O(n²) incremental
  closure repair, the marking update, the enabledness rescan, the
  persistence projection (both reset policies) and the fused Zobrist
  hash, in one call;
* ``dc_candidates`` — per-variable firability scans, the deadline-miss
  and strict-priority filters, the dense forced-immediate
  partial-order reduction and the ``(lower, priority, index)``
  insertion sort, in one call.

Build caching: the shared object lands in ``_dbmc_build/<digest>/``
beside this file (or under the system temp directory when the package
is not writable), keyed by a digest of the C source, so editing the
source never picks up a stale binary and concurrent builders can only
race to produce identical files — the final ``os.replace`` is atomic.

CI builds eagerly via ``python -m repro.tpn._dbmc``; see
``pyproject.toml``'s ``native`` extra for the cffi pin.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile

#: Last build/import failure, for diagnostics (``None`` = no failure).
LOAD_ERROR: Exception | None = None

#: Environment variable that force-disables the compiled core (shared
#: with the kernel engine's core: one switch, pure everything).
PURE_ENV = "EZRT_PURE"

_MODULE_NAME = "_ezrt_dbm"

# The foreign function surface, shared between ffi.cdef and the
# translation unit below.
CDEF = """
typedef struct dc_net dc_net;
dc_net *dc_net_new(int32_t num_places, int32_t num_transitions,
                   const int32_t *pre_off, const int32_t *pre_place,
                   const int32_t *pre_w,
                   const int32_t *delta_off, const int32_t *delta_place,
                   const int32_t *delta_d,
                   const int32_t *pc_off, const int32_t *pc_t,
                   const int32_t *eft, const int32_t *lft,
                   const int32_t *prio, const uint8_t *flags);
void dc_net_free(dc_net *net);
int32_t dc_fire(const dc_net *net, const uint16_t *old_mark,
                const int32_t *old_enabled, int32_t k,
                const int64_t *old_dbm, int32_t t,
                int32_t intermediate, uint16_t *mark,
                int32_t *out_enabled, int64_t *out_dbm,
                uint64_t *hash_io);
int32_t dc_candidates(const dc_net *net, const int32_t *enabled,
                      int32_t k, const int64_t *dbm, int32_t strict,
                      int32_t partial_order, int32_t *out,
                      int32_t *reduced);
"""

# The dense-time firing rule and candidate pipeline over the packed
# buffers.  Semantics are line-for-line the pure-Python core of
# repro.tpn.dbm.DbmEngine (which mirrors the tuple-based Floyd-
# Warshall specification of repro.tpn.stateclass); the two are locked
# together by the native-vs-pure differential suite in
# tests/test_dbm.py.  DC_INF (1 << 62) is the unbounded-bound
# sentinel; lft < 0 encodes an unbounded static LFT; flag bits:
# 2 = deadline-miss, 4 = structurally conflict-free (bit 1 is unused
# here, matching the kernel core's flag layout).
SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define DC_INF ((int64_t)1 << 62)

typedef struct dc_net {
    int32_t P, T;
    const int32_t *pre_off, *pre_place, *pre_w;
    const int32_t *delta_off, *delta_place, *delta_d;
    const int32_t *pc_off, *pc_t;
    const int32_t *eft, *lft, *prio;
    const uint8_t *flags;
    int64_t *closed;   /* (T+1)^2: repaired-closure scratch */
    int64_t *col;      /* T+1: fired transition's column */
    int32_t *inter;    /* P: intermediate-marking reference */
    int32_t *old_var;  /* T: transition -> old DBM variable (0=none) */
    int32_t *pers;     /* T+1: new variable -> old variable (0=fresh) */
    int32_t *new_vars; /* T: newly enabled variable list */
    uint8_t *mask;     /* T: enabled-membership scratch */
} dc_net;

void dc_net_free(dc_net *net);

dc_net *dc_net_new(int32_t num_places, int32_t num_transitions,
                   const int32_t *pre_off, const int32_t *pre_place,
                   const int32_t *pre_w,
                   const int32_t *delta_off, const int32_t *delta_place,
                   const int32_t *delta_d,
                   const int32_t *pc_off, const int32_t *pc_t,
                   const int32_t *eft, const int32_t *lft,
                   const int32_t *prio, const uint8_t *flags)
{
    size_t size = (size_t)num_transitions + 1;
    dc_net *net = (dc_net *)calloc(1, sizeof(dc_net));
    if (!net)
        return NULL;
    net->P = num_places;
    net->T = num_transitions;
    net->pre_off = pre_off;
    net->pre_place = pre_place;
    net->pre_w = pre_w;
    net->delta_off = delta_off;
    net->delta_place = delta_place;
    net->delta_d = delta_d;
    net->pc_off = pc_off;
    net->pc_t = pc_t;
    net->eft = eft;
    net->lft = lft;
    net->prio = prio;
    net->flags = flags;
    net->closed = (int64_t *)malloc(size * size * sizeof(int64_t));
    net->col = (int64_t *)malloc(size * sizeof(int64_t));
    net->inter = (int32_t *)malloc(
        (num_places ? (size_t)num_places : 1) * sizeof(int32_t));
    net->old_var = (int32_t *)calloc(size, sizeof(int32_t));
    net->pers = (int32_t *)malloc(size * sizeof(int32_t));
    net->new_vars = (int32_t *)malloc(size * sizeof(int32_t));
    net->mask = (uint8_t *)calloc(size, sizeof(uint8_t));
    if (!net->closed || !net->col || !net->inter || !net->old_var ||
        !net->pers || !net->new_vars || !net->mask) {
        dc_net_free(net);
        return NULL;
    }
    return net;
}

void dc_net_free(dc_net *net)
{
    if (net) {
        free(net->closed);
        free(net->col);
        free(net->inter);
        free(net->old_var);
        free(net->pers);
        free(net->new_vars);
        free(net->mask);
        free(net);
    }
}

/* splitmix64 finalizer — identical to repro.tpn.kernel._mix. */
static uint64_t dc_mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/* Zobrist word of place p holding v tokens — identical to the kernel
 * engine's kn_zm (kind 1), so the marking part of the class key is
 * maintained incrementally across firings on both sides. */
static uint64_t dc_zm(int32_t p, uint32_t v)
{
    return dc_mix(((uint64_t)1 << 62) ^ ((uint64_t)p << 20) ^ v);
}

/* Zobrist word of bound-matrix cell (i, j) holding bound b: a double
 * mix folds the full signed 64-bit bound in (the (uint64_t) cast is
 * the two's-complement image Python's `b & MASK64` computes). */
static uint64_t dc_zd(int32_t i, int32_t j, int64_t b)
{
    uint64_t ij = ((uint64_t)(uint32_t)i << 11) |
                  (uint64_t)(uint32_t)j;
    return dc_mix(dc_mix(((uint64_t)3 << 62) ^ ij) ^ (uint64_t)b);
}

/* The dense-time firing rule: firability column scan, incremental
 * closure repair, marking delta, enabledness rescan, persistence
 * projection and the fused hash — one call per successor class.
 *
 * `mark` arrives as a copy of `old_mark` and is mutated in place;
 * `hash_io[0]` carries the marking hash in and out (maintained
 * incrementally), `hash_io[1]` receives the fused bound-matrix hash.
 * Returns the new enabled count (>= 0), -1 when `t` is not enabled
 * or not firable, -2 on token overflow (> 0xFFFF in a place). */
int32_t dc_fire(const dc_net *net, const uint16_t *old_mark,
                const int32_t *old_enabled, int32_t k,
                const int64_t *old_dbm, int32_t t,
                int32_t intermediate, uint16_t *mark,
                int32_t *out_enabled, int64_t *out_dbm,
                uint64_t *hash_io)
{
    int32_t size = k + 1;
    int32_t var_t = 0, i, j, u, k2 = 0, new_size, n_new = 0;
    int64_t *closed = net->closed;
    int64_t *col_t = net->col;
    int64_t *row_t, *fresh;
    uint64_t h;

    for (i = 0; i < k; i++) {
        if (old_enabled[i] == t) {
            var_t = i + 1;
            break;
        }
    }
    if (!var_t)
        return -1;
    /* firability: adding theta_t <= theta_u for every enabled u keeps
     * the canonical system satisfiable iff no column entry into var_t
     * is negative */
    for (u = 1; u < size; u++) {
        if (old_dbm[u * size + var_t] < 0)
            return -1;
    }
    for (i = 0; i < size; i++)
        col_t[i] = old_dbm[i * size + var_t];

    /* incremental closure repair: the new shortest row out of var_t
     * is the column-wise minimum over every enabled row, and any
     * other entry improves only by routing through var_t once */
    row_t = closed + (size_t)var_t * size;
    memcpy(row_t, old_dbm + (size_t)var_t * size,
           (size_t)size * sizeof(int64_t));
    for (u = 1; u < size; u++) {
        const int64_t *row_u;
        if (u == var_t)
            continue;
        row_u = old_dbm + (size_t)u * size;
        for (j = 0; j < size; j++) {
            if (row_u[j] < row_t[j])
                row_t[j] = row_u[j];
        }
    }
    for (i = 0; i < size; i++) {
        int64_t *row_i;
        int64_t d_it;
        if (i == var_t)
            continue;
        row_i = closed + (size_t)i * size;
        memcpy(row_i, old_dbm + (size_t)i * size,
               (size_t)size * sizeof(int64_t));
        d_it = col_t[i];
        if (d_it != DC_INF) {
            for (j = 0; j < size; j++) {
                int64_t d_tj = row_t[j], cand;
                if (d_tj == DC_INF)
                    continue;
                cand = d_it + d_tj;
                if (cand < row_i[j])
                    row_i[j] = cand;
            }
        }
    }

    /* new marking, with the marking hash maintained incrementally */
    h = hash_io[0];
    for (i = net->delta_off[t]; i < net->delta_off[t + 1]; i++) {
        int32_t p = net->delta_place[i];
        int32_t nv = (int32_t)mark[p] + net->delta_d[i];
        if (nv < 0 || nv > 0xFFFF)
            return -2;
        h ^= dc_zm(p, mark[p]) ^ dc_zm(p, (uint32_t)nv);
        mark[p] = (uint16_t)nv;
    }
    hash_io[0] = h;

    /* old-variable map + the intermediate-marking reference */
    memset(net->old_var, 0, (size_t)net->T * sizeof(int32_t));
    for (i = 0; i < k; i++)
        net->old_var[old_enabled[i]] = i + 1;
    if (intermediate) {
        for (i = 0; i < net->P; i++)
            net->inter[i] = (int32_t)old_mark[i];
        for (i = net->pre_off[t]; i < net->pre_off[t + 1]; i++)
            net->inter[net->pre_place[i]] -= net->pre_w[i];
    }

    /* enabledness rescan over the whole transition set */
    for (j = 0; j < net->T; j++) {
        int ok = 1;
        for (i = net->pre_off[j]; i < net->pre_off[j + 1]; i++) {
            if (mark[net->pre_place[i]] < net->pre_w[i]) {
                ok = 0;
                break;
            }
        }
        if (ok)
            out_enabled[k2++] = j;
    }

    /* the successor matrix, written down already closed (the
     * persistent block is a projection of the closed matrix; a newly
     * enabled variable's shortest paths all route through origin) */
    new_size = k2 + 1;
    fresh = out_dbm;
    for (i = 0; i < new_size * new_size; i++)
        fresh[i] = DC_INF;
    for (i = 0; i < new_size; i++)
        fresh[i * new_size + i] = 0;
    for (i = 1; i < new_size; i++) {
        int32_t tn = out_enabled[i - 1];
        int32_t ov = (tn == t) ? 0 : net->old_var[tn];
        if (ov && intermediate) {
            for (j = net->pre_off[tn]; j < net->pre_off[tn + 1];
                 j++) {
                if (net->inter[net->pre_place[j]] < net->pre_w[j]) {
                    ov = 0;
                    break;
                }
            }
        }
        net->pers[i] = ov;
        if (ov) {
            /* theta'_u = theta_u - theta_t: bounds against the new
             * origin */
            fresh[i * new_size] = closed[(size_t)ov * size + var_t];
            fresh[i] = closed[(size_t)var_t * size + ov];
        } else {
            int32_t l = net->lft[tn];
            fresh[i * new_size] = (l < 0) ? DC_INF : (int64_t)l;
            fresh[i] = -(int64_t)net->eft[tn];
            net->new_vars[n_new++] = i;
        }
    }
    /* pairwise differences among persistent transitions */
    for (i = 1; i < new_size; i++) {
        int32_t oi = net->pers[i];
        const int64_t *row_old;
        if (!oi)
            continue;
        row_old = closed + (size_t)oi * size;
        for (j = 1; j < new_size; j++) {
            int32_t oj = net->pers[j];
            if (!oj || i == j)
                continue;
            fresh[i * new_size + j] = row_old[oj];
        }
    }
    /* cross entries of newly enabled variables: via the origin */
    for (u = 0; u < n_new; u++) {
        int32_t nv = net->new_vars[u];
        int64_t up = fresh[nv * new_size], down = fresh[nv];
        for (j = 1; j < new_size; j++) {
            int64_t d_0j, d_j0, cand;
            if (j == nv)
                continue;
            d_0j = fresh[j];
            if (up != DC_INF && d_0j != DC_INF) {
                cand = up + d_0j;
                if (cand < fresh[nv * new_size + j])
                    fresh[nv * new_size + j] = cand;
            }
            d_j0 = fresh[j * new_size];
            if (d_j0 != DC_INF) {
                cand = d_j0 + down;
                if (cand < fresh[j * new_size + nv])
                    fresh[j * new_size + nv] = cand;
            }
        }
    }
    /* fused bound-matrix hash */
    {
        uint64_t dh = 0;
        int32_t idx = 0;
        for (i = 0; i < new_size; i++) {
            for (j = 0; j < new_size; j++, idx++)
                dh ^= dc_zd(i, j, fresh[idx]);
        }
        hash_io[1] = dh;
    }
    return k2;
}

/* The full dense candidate pipeline: per-variable firability column
 * scans, deadline-miss filter, optional strict priority filter,
 * optional dense forced-immediate partial-order reduction and the
 * (lower, priority, index) insertion sort.  `out` receives
 * (transition, lower) pairs; returns the count. */
int32_t dc_candidates(const dc_net *net, const int32_t *enabled,
                      int32_t k, const int64_t *dbm, int32_t strict,
                      int32_t partial_order, int32_t *out,
                      int32_t *reduced)
{
    int32_t size = k + 1;
    int32_t n = 0, i, u, m;

    *reduced = 0;
    for (i = 1; i < size; i++) {
        int32_t tk = enabled[i - 1];
        int ok = 1;
        if (net->flags[tk] & 2)
            continue; /* deadline-miss transition */
        for (u = 1; u < size; u++) {
            if (dbm[u * size + i] < 0) {
                ok = 0;
                break;
            }
        }
        if (ok) {
            out[2 * n] = tk;
            out[2 * n + 1] = (int32_t)(-dbm[i]);
            n++;
        }
    }
    if (n == 0)
        return 0;

    if (strict) {
        int32_t best = net->prio[out[0]];
        int32_t m2 = 0;
        for (m = 1; m < n; m++)
            if (net->prio[out[2 * m]] < best)
                best = net->prio[out[2 * m]];
        for (m = 0; m < n; m++) {
            if (net->prio[out[2 * m]] == best) {
                out[2 * m2] = out[2 * m];
                out[2 * m2 + 1] = out[2 * m + 1];
                m2++;
            }
        }
        n = m2;
    }

    if (partial_order && n > 1) {
        for (i = 0; i < k; i++)
            net->mask[enabled[i]] = 1;
        for (m = 0; m < n; m++) {
            int32_t tc = out[2 * m];
            int32_t var = 0, m2, ok = 1;
            if (out[2 * m + 1] != 0 || !(net->flags[tc] & 4))
                continue; /* not zero-lower or not conflict-free */
            for (i = 0; i < k; i++) {
                if (enabled[i] == tc) {
                    var = i + 1;
                    break;
                }
            }
            if (dbm[var * size] != 0)
                continue; /* not forced at this instant */
            for (m2 = net->pc_off[tc]; m2 < net->pc_off[tc + 1];
                 m2++) {
                if (net->mask[net->pc_t[m2]]) {
                    ok = 0; /* an enabled transition consumes t's out */
                    break;
                }
            }
            if (ok) {
                for (i = 0; i < k; i++)
                    net->mask[enabled[i]] = 0;
                out[0] = tc;
                out[1] = 0;
                *reduced = 1;
                return 1;
            }
        }
        for (i = 0; i < k; i++)
            net->mask[enabled[i]] = 0;
    }

    if (n > 1) {
        /* insertion sort by (lower, priority, index); candidate
         * lists are window-sized, typically < 16 entries */
        for (m = 1; m < n; m++) {
            int32_t tc = out[2 * m], lo = out[2 * m + 1];
            int32_t pk = net->prio[tc];
            int32_t m2 = m - 1;
            while (m2 >= 0) {
                int32_t tm = out[2 * m2], lm = out[2 * m2 + 1];
                int32_t pm = net->prio[tm];
                if (lm > lo ||
                    (lm == lo &&
                     (pm > pk || (pm == pk && tm > tc)))) {
                    out[2 * m2 + 2] = tm;
                    out[2 * m2 + 3] = lm;
                    m2--;
                } else {
                    break;
                }
            }
            out[2 * m2 + 2] = tc;
            out[2 * m2 + 3] = lo;
        }
    }
    return n;
}
"""


def _digest() -> str:
    payload = (CDEF + SOURCE).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:12]


def _cache_dirs() -> list[str]:
    """Candidate build directories, most preferred first."""
    here = os.path.dirname(os.path.abspath(__file__))
    tag = f"{_digest()}-py{sys.version_info[0]}{sys.version_info[1]}"
    dirs = [os.path.join(here, "_dbmc_build", tag)]
    override = os.environ.get("EZRT_KERNEL_CACHE")
    if override:
        dirs.insert(0, os.path.join(override, tag))
    dirs.append(
        os.path.join(
            tempfile.gettempdir(),
            f"ezrt-dbm-{os.getuid() if hasattr(os, 'getuid') else 0}",
            tag,
        )
    )
    return dirs


def _find_built() -> str | None:
    for cache in _cache_dirs():
        if not os.path.isdir(cache):
            continue
        for entry in sorted(os.listdir(cache)):
            if entry.startswith(_MODULE_NAME) and entry.endswith(".so"):
                return os.path.join(cache, entry)
    return None


def build(verbose: bool = False) -> str:
    """Compile the core into the first writable cache dir; returns the
    shared-object path.  Raises on any failure (callers that want the
    graceful path go through :func:`load`)."""
    existing = _find_built()
    if existing:
        return existing
    from cffi import FFI

    last_error: Exception | None = None
    for cache in _cache_dirs():
        try:
            os.makedirs(cache, exist_ok=True)
            ffi = FFI()
            ffi.cdef(CDEF)
            ffi.set_source(_MODULE_NAME, SOURCE)
            with tempfile.TemporaryDirectory(
                prefix="ezrt-dbm-build-"
            ) as tmp:
                so_path = ffi.compile(tmpdir=tmp, verbose=verbose)
                target = os.path.join(cache, os.path.basename(so_path))
                # atomic within a filesystem; fall back to a plain copy
                # when tempdir and cache live on different mounts
                try:
                    os.replace(so_path, target)
                except OSError:
                    import shutil

                    shutil.copy2(so_path, target)
            return target
        except Exception as exc:  # try the next candidate dir
            last_error = exc
    raise RuntimeError(
        f"could not build the DBM native core: {last_error}"
    ) from last_error


_loaded: tuple[object | None] | None = None


def native_module():
    """The compiled extension module (``.ffi`` / ``.lib``), or ``None``.

    Build failures are recorded on :data:`LOAD_ERROR` and never raised;
    the result is cached per process.  The ``EZRT_PURE`` gate is *not*
    applied here — :func:`load` checks it per call so tests can flip
    the environment variable without reloading the process.
    """
    global _loaded, LOAD_ERROR
    if _loaded is not None:
        return _loaded[0]
    try:
        path = _find_built() or build()
        spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {path}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _loaded = (module,)
    except Exception as exc:
        LOAD_ERROR = exc
        _loaded = (None,)
    return _loaded[0]


def load():
    """The compiled module, or ``None`` (pure-Python fallback).

    ``None`` when ``EZRT_PURE=1`` is set or the build/import failed.
    """
    if os.environ.get(PURE_ENV) == "1":
        return None
    return native_module()


def available() -> bool:
    """Whether the compiled core is usable right now."""
    return load() is not None


if __name__ == "__main__":  # pragma: no cover - CI eager build
    print(build(verbose=True))
