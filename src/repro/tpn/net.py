"""Time Petri net structure: places, transitions, weighted arcs.

Implements the paper's computational model (Section 3.1): a time Petri
net is a tuple ``P = (P, T, F, W, m0, I)`` where ``P`` and ``T`` are
disjoint node sets, ``F ⊆ (P×T) ∪ (T×P)`` is the flow relation, ``W``
assigns positive integer weights to arcs, ``m0`` is the initial marking
and ``I`` assigns a static firing interval to every transition.

The *extended* net of the paper additionally carries a partial function
``C_S: T ⇀ S_T`` mapping transitions to behavioural source code and a
priority function ``π: T → N``.  Both are attributes of
:class:`Transition` here (``code`` and ``priority``).

The classes in this module are a *builder* representation optimised for
clarity; the scheduler operates on the index-based
:class:`CompiledNet` produced by :meth:`TimePetriNet.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import NetConstructionError
from repro.tpn.interval import INF, TimeInterval

# Roles attached to transitions by the building-block library.  They are
# plain strings rather than an enum so user nets can invent their own,
# but the canonical set used by blocks/schedule extraction lives here.
ROLE_FORK = "fork"
ROLE_JOIN = "join"
ROLE_PHASE = "phase"
ROLE_ARRIVAL = "arrival"
ROLE_RELEASE = "release"
ROLE_GRANT = "grant"
ROLE_COMPUTE = "compute"
ROLE_FINISH = "finish"
ROLE_DEADLINE_MISS = "deadline-miss"
ROLE_DEADLINE_OK = "deadline-ok"
ROLE_PRECEDENCE = "precedence"
ROLE_EXCLUSION = "exclusion"
ROLE_MESSAGE = "message"


@dataclass
class Place:
    """A place (circle node) of a time Petri net.

    Attributes:
        name: unique identifier within the net.
        marking: initial token count (``m0`` restricted to this place).
        label: human-readable label used by PNML/DOT exports.
        role: optional semantic tag assigned by the block library
            (e.g. ``"deadline-miss"`` for ``p_dm`` places).
        task: name of the specification task this place belongs to, when
            the place was produced by a task building block.
    """

    name: str
    marking: int = 0
    label: str = ""
    role: str | None = None
    task: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetConstructionError("place name must be non-empty")
        if not isinstance(self.marking, int) or self.marking < 0:
            raise NetConstructionError(
                f"place {self.name!r}: marking must be a non-negative "
                f"integer, got {self.marking!r}"
            )
        if not self.label:
            self.label = self.name


@dataclass
class Transition:
    """A transition (bar node) of an extended time Petri net.

    Attributes:
        name: unique identifier within the net.
        interval: static firing interval ``I(t) = [EFT, LFT]``.
        priority: value of the priority function ``π(t)``; *smaller is
            more urgent* (the paper's fireable-set rule selects the
            minimum).
        code: behavioural C source assigned by ``C_S`` (may be ``None``,
            the function is partial).
        label: human-readable label used by PNML/DOT exports.
        role: semantic tag assigned by the block library (see the
            ``ROLE_*`` constants).
        task: name of the specification task this transition belongs to.
    """

    name: str
    interval: TimeInterval = field(default_factory=TimeInterval.zero)
    priority: int = 0
    code: str | None = None
    label: str = ""
    role: str | None = None
    task: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetConstructionError("transition name must be non-empty")
        if not isinstance(self.interval, TimeInterval):
            raise NetConstructionError(
                f"transition {self.name!r}: interval must be a "
                f"TimeInterval, got {self.interval!r}"
            )
        if not isinstance(self.priority, int):
            raise NetConstructionError(
                f"transition {self.name!r}: priority must be an integer"
            )
        if not self.label:
            self.label = self.name


@dataclass(frozen=True)
class Arc:
    """A weighted arc of the flow relation ``F`` with weight ``W``.

    ``source`` and ``target`` are node names; exactly one of them is a
    place and the other a transition (checked by the net).
    """

    source: str
    target: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight < 1 or not isinstance(self.weight, int):
            raise NetConstructionError(
                f"arc {self.source}->{self.target}: weight must be a "
                f"positive integer, got {self.weight!r}"
            )


class TimePetriNet:
    """A mutable extended time Petri net builder.

    Nodes are addressed by name.  Typical construction::

        net = TimePetriNet("demo")
        net.add_place("p0", marking=1)
        net.add_transition("t0", TimeInterval(2, 5))
        net.add_place("p1")
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")

    Call :meth:`compile` to obtain the immutable, index-based view used
    by the state-space engine.
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}
        # weight maps: _pre[t][p] = W(p, t); _post[t][p] = W(t, p)
        self._pre: dict[str, dict[str, int]] = {}
        self._post: dict[str, dict[str, int]] = {}
        #: optional final-marking specification: place name -> tokens.
        #: Places absent from the mapping are unconstrained; see
        #: :meth:`final_marking_vector`.
        self.final_marking: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(
        self,
        name: str,
        marking: int = 0,
        label: str = "",
        role: str | None = None,
        task: str | None = None,
    ) -> Place:
        """Create and register a new place; returns it."""
        self._check_fresh(name)
        place = Place(name, marking=marking, label=label, role=role, task=task)
        self._places[name] = place
        return place

    def add_transition(
        self,
        name: str,
        interval: TimeInterval | None = None,
        priority: int = 0,
        code: str | None = None,
        label: str = "",
        role: str | None = None,
        task: str | None = None,
    ) -> Transition:
        """Create and register a new transition; returns it.

        ``interval`` defaults to the immediate interval ``[0, 0]``.
        """
        self._check_fresh(name)
        transition = Transition(
            name,
            interval=interval or TimeInterval.zero(),
            priority=priority,
            code=code,
            label=label,
            role=role,
            task=task,
        )
        self._transitions[name] = transition
        self._pre[name] = {}
        self._post[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> Arc:
        """Add an arc, inferring its direction from the node kinds.

        Adding a second arc between the same pair accumulates the weight
        (convenient when composing nets).
        """
        arc = Arc(source, target, weight)
        if source in self._places and target in self._transitions:
            pre = self._pre[target]
            pre[source] = pre.get(source, 0) + weight
        elif source in self._transitions and target in self._places:
            post = self._post[source]
            post[target] = post.get(target, 0) + weight
        elif source in self._places and target in self._places:
            raise NetConstructionError(
                f"arc {source}->{target} connects two places; nets are "
                "bipartite"
            )
        elif source in self._transitions and target in self._transitions:
            raise NetConstructionError(
                f"arc {source}->{target} connects two transitions; nets "
                "are bipartite"
            )
        else:
            missing = source if source not in self else target
            raise NetConstructionError(
                f"arc {source}->{target}: unknown node {missing!r}"
            )
        return arc

    def remove_arc(self, source: str, target: str) -> None:
        """Remove the arc between two nodes (used when composition
        operators reroute a block's interface, e.g. inserting a
        lock/precedence gate between release and grant)."""
        if source in self._places and target in self._transitions:
            if self._pre[target].pop(source, None) is None:
                raise NetConstructionError(
                    f"no arc {source}->{target} to remove"
                )
        elif source in self._transitions and target in self._places:
            if self._post[source].pop(target, None) is None:
                raise NetConstructionError(
                    f"no arc {source}->{target} to remove"
                )
        else:
            raise NetConstructionError(
                f"arc {source}->{target}: unknown node pair"
            )

    def set_final_marking(self, marking: Mapping[str, int]) -> None:
        """Declare the desired final marking ``M_F`` (paper Def. 3.2).

        The mapping gives the required token count for the listed places;
        places not listed are unconstrained.  The modelling methodology
        (join block) guarantees that ``M_F`` is explicitly known.
        """
        for name, tokens in marking.items():
            if name not in self._places:
                raise NetConstructionError(
                    f"final marking references unknown place {name!r}"
                )
            if tokens < 0:
                raise NetConstructionError(
                    f"final marking for {name!r} must be >= 0"
                )
        self.final_marking = dict(marking)

    def _check_fresh(self, name: str) -> None:
        if name in self._places or name in self._transitions:
            raise NetConstructionError(f"duplicate node name {name!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def places(self) -> tuple[Place, ...]:
        """All places, in insertion order."""
        return tuple(self._places.values())

    @property
    def transitions(self) -> tuple[Transition, ...]:
        """All transitions, in insertion order."""
        return tuple(self._transitions.values())

    @property
    def place_names(self) -> tuple[str, ...]:
        return tuple(self._places)

    @property
    def transition_names(self) -> tuple[str, ...]:
        return tuple(self._transitions)

    def place(self, name: str) -> Place:
        """Look up a place by name (raises on unknown names)."""
        try:
            return self._places[name]
        except KeyError:
            raise NetConstructionError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        """Look up a transition by name (raises on unknown names)."""
        try:
            return self._transitions[name]
        except KeyError:
            raise NetConstructionError(
                f"unknown transition {name!r}"
            ) from None

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def __contains__(self, name: str) -> bool:
        return name in self._places or name in self._transitions

    def input_weight(self, place: str, transition: str) -> int:
        """``W(p, t)``; zero when the arc is absent."""
        return self._pre.get(transition, {}).get(place, 0)

    def output_weight(self, transition: str, place: str) -> int:
        """``W(t, p)``; zero when the arc is absent."""
        return self._post.get(transition, {}).get(place, 0)

    def preset(self, transition: str) -> dict[str, int]:
        """Input places of a transition with their weights (``•t``)."""
        self.transition(transition)
        return dict(self._pre[transition])

    def postset(self, transition: str) -> dict[str, int]:
        """Output places of a transition with their weights (``t•``)."""
        self.transition(transition)
        return dict(self._post[transition])

    def place_preset(self, place: str) -> dict[str, int]:
        """Transitions feeding a place with their weights (``•p``)."""
        self.place(place)
        return {
            t: post[place]
            for t, post in self._post.items()
            if place in post
        }

    def place_postset(self, place: str) -> dict[str, int]:
        """Transitions consuming from a place with their weights (``p•``)."""
        self.place(place)
        return {t: pre[place] for t, pre in self._pre.items() if place in pre}

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs of the flow relation."""
        for t, pre in self._pre.items():
            for p, w in pre.items():
                yield Arc(p, t, w)
        for t, post in self._post.items():
            for p, w in post.items():
                yield Arc(t, p, w)

    def initial_marking(self) -> tuple[int, ...]:
        """``m0`` as a vector in place insertion order."""
        return tuple(p.marking for p in self._places.values())

    def final_marking_vector(self) -> tuple[int | None, ...]:
        """``M_F`` as a vector; ``None`` marks unconstrained places."""
        return tuple(
            self.final_marking.get(name) for name in self._places
        )

    def transitions_with_role(self, role: str) -> tuple[Transition, ...]:
        """All transitions carrying the given semantic role tag."""
        return tuple(t for t in self.transitions if t.role == role)

    def places_with_role(self, role: str) -> tuple[Place, ...]:
        """All places carrying the given semantic role tag."""
        return tuple(p for p in self.places if p.role == role)

    # ------------------------------------------------------------------
    # Statistics / validation
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Structural size summary (used by reports and benches)."""
        arc_count = sum(len(m) for m in self._pre.values()) + sum(
            len(m) for m in self._post.values()
        )
        return {
            "places": len(self._places),
            "transitions": len(self._transitions),
            "arcs": arc_count,
            "tokens": sum(p.marking for p in self._places.values()),
        }

    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetConstructionError`.

        Verifies bipartiteness (by construction), positive weights (by
        construction), and that every transition has at least one input
        place — a source transition would be enabled forever and make the
        schedule period unbounded.
        """
        for t in self._transitions:
            if not self._pre[t]:
                raise NetConstructionError(
                    f"transition {t!r} has no input places (source "
                    "transitions are not allowed in schedulable nets)"
                )

    def isolated_places(self) -> tuple[str, ...]:
        """Places with neither incoming nor outgoing arcs."""
        connected: set[str] = set()
        for mapping in self._pre.values():
            connected.update(mapping)
        for mapping in self._post.values():
            connected.update(mapping)
        return tuple(p for p in self._places if p not in connected)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledNet":
        """Freeze into the index-based representation for the engine."""
        self.validate()
        return CompiledNet(self)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"TimePetriNet({self.name!r}, |P|={s['places']}, "
            f"|T|={s['transitions']}, |F|={s['arcs']})"
        )


class CompiledNet:
    """Immutable, index-addressed view of a :class:`TimePetriNet`.

    All vectors use the net's insertion order.  The scheduler's hot loop
    walks ``pre``/``post`` adjacency tuples instead of name-keyed dicts.
    """

    __slots__ = (
        "name",
        "source",
        "place_names",
        "transition_names",
        "place_index",
        "transition_index",
        "m0",
        "pre",
        "post",
        "delta",
        "eft",
        "lft",
        "priority",
        "roles",
        "tasks",
        "final_marking",
        "miss_places",
        "pre_places",
        "post_places",
        "place_consumers",
        "affected",
        "conflict_free",
        "miss_transitions",
        "final_constraints",
        "touches_miss",
        "touches_final",
        "immediate",
        "post_conflicts",
    )

    def __init__(self, net: TimePetriNet):
        self.name = net.name
        self.source = net
        self.place_names: tuple[str, ...] = net.place_names
        self.transition_names: tuple[str, ...] = net.transition_names
        self.place_index = {p: i for i, p in enumerate(self.place_names)}
        self.transition_index = {
            t: i for i, t in enumerate(self.transition_names)
        }
        self.m0: tuple[int, ...] = net.initial_marking()

        pre_rows: list[tuple[tuple[int, int], ...]] = []
        post_rows: list[tuple[tuple[int, int], ...]] = []
        delta_rows: list[tuple[tuple[int, int], ...]] = []
        for t in self.transition_names:
            pre = net.preset(t)
            post = net.postset(t)
            pre_rows.append(
                tuple((self.place_index[p], w) for p, w in pre.items())
            )
            post_rows.append(
                tuple((self.place_index[p], w) for p, w in post.items())
            )
            # net effect of firing: only places whose count changes
            effect: dict[int, int] = {}
            for p, w in pre.items():
                effect[self.place_index[p]] = effect.get(
                    self.place_index[p], 0
                ) - w
            for p, w in post.items():
                effect[self.place_index[p]] = effect.get(
                    self.place_index[p], 0
                ) + w
            delta_rows.append(
                tuple((i, d) for i, d in effect.items() if d != 0)
            )
        self.pre = tuple(pre_rows)
        self.post = tuple(post_rows)
        self.delta = tuple(delta_rows)

        self.eft: tuple[int, ...] = tuple(
            net.transition(t).interval.eft for t in self.transition_names
        )
        self.lft: tuple[float, ...] = tuple(
            net.transition(t).interval.lft for t in self.transition_names
        )
        self.priority: tuple[int, ...] = tuple(
            net.transition(t).priority for t in self.transition_names
        )
        self.roles: tuple[str | None, ...] = tuple(
            net.transition(t).role for t in self.transition_names
        )
        self.tasks: tuple[str | None, ...] = tuple(
            net.transition(t).task for t in self.transition_names
        )
        self.final_marking: tuple[int | None, ...] = (
            net.final_marking_vector()
        )
        self.miss_places: tuple[int, ...] = tuple(
            self.place_index[p.name]
            for p in net.places
            if p.role == "deadline-miss"
        )
        self.final_constraints: tuple[tuple[int, int], ...] = tuple(
            (i, required)
            for i, required in enumerate(self.final_marking)
            if required is not None
        )
        self.miss_transitions: frozenset[int] = frozenset(
            t
            for t, role in enumerate(self.roles)
            if role == ROLE_DEADLINE_MISS
        )

        # ---- sparse dependency structure for the incremental engine ----
        # Place-indexed views of the flow relation and, per transition,
        # the set of transitions whose enabledness can change when it
        # fires.  These are what keep successor computation O(degree)
        # instead of O(|T|·|P|) in the state-space hot path.
        self.pre_places: tuple[frozenset[int], ...] = tuple(
            frozenset(p for p, _w in row) for row in self.pre
        )
        self.post_places: tuple[frozenset[int], ...] = tuple(
            frozenset(p for p, _w in row) for row in self.post
        )
        consumers: dict[int, list[int]] = {}
        for t, places in enumerate(self.pre_places):
            for p in places:
                consumers.setdefault(p, []).append(t)
        self.place_consumers: tuple[tuple[int, ...], ...] = tuple(
            tuple(consumers.get(p, ())) for p in range(self.num_places)
        )
        # affected[t]: transitions (t itself included) whose enabledness
        # or clock-reset status can differ after t fires.  Built from the
        # places t touches: net-effect places (delta) cover marking
        # changes; preset places additionally cover self-loops, whose
        # transient token dip matters under intermediate-marking
        # clock-reset semantics.
        affected_rows: list[tuple[int, ...]] = []
        for t in range(self.num_transitions):
            touched = {p for p, _d in self.delta[t]}
            touched.update(self.pre_places[t])
            neighbours = {t}
            for p in touched:
                neighbours.update(consumers.get(p, ()))
            affected_rows.append(tuple(sorted(neighbours)))
        self.affected: tuple[tuple[int, ...], ...] = tuple(affected_rows)
        # Transitions that can never conflict with anything, now or in
        # the future: every input place is consumed by this transition
        # only (used by the scheduler's partial-order reduction).
        self.conflict_free: tuple[bool, ...] = tuple(
            bool(places)
            and all(len(consumers[p]) == 1 for p in places)
            for places in self.pre_places
        )
        # Marking-predicate skip masks: a child state's deadline-miss /
        # final-marking status can only differ from its parent's when
        # the fired transition adds tokens to a miss place (resp.
        # changes a constrained place), so the search re-evaluates the
        # predicates only for these transitions.
        miss_set = set(self.miss_places)
        self.touches_miss: tuple[bool, ...] = tuple(
            any(p in miss_set and d > 0 for p, d in self.delta[t])
            for t in range(self.num_transitions)
        )
        constrained = {p for p, _req in self.final_constraints}
        self.touches_final: tuple[bool, ...] = tuple(
            any(p in constrained for p, _d in self.delta[t])
            for t in range(self.num_transitions)
        )
        # Immediate ([0,0]) transitions: while one is enabled its clock
        # is pinned to 0 (strong semantics forces q=0 firings), so any
        # enabled immediate makes the global min-DUB ceiling exactly 0 —
        # the engine skips the ceiling scan in that common case.
        self.immediate: tuple[bool, ...] = tuple(
            self.eft[t] == 0 and self.lft[t] == 0
            for t in range(self.num_transitions)
        )
        # post_conflicts[t]: transitions (other than t) consuming from
        # t's postset — the partial-order reduction's clock-commutation
        # check reduces to one disjointness test against the enabled set.
        self.post_conflicts: tuple[frozenset[int], ...] = tuple(
            frozenset(
                tk
                for p in self.post_places[t]
                for tk in consumers.get(p, ())
                if tk != t
            )
            for t in range(self.num_transitions)
        )

    # ------------------------------------------------------------------
    # Pickling (parallel-search handoff)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the compiled vectors, not the builder.

        The parallel scheduler sends one ``CompiledNet`` to every
        worker process; the ``source`` builder (name-keyed dicts of
        dataclasses) dwarfs the compiled arrays and no engine reads it,
        so it is dropped from the pickle.  An unpickled net therefore
        has ``source is None`` — everything the schedulers, engines and
        schedule extraction need lives in the compiled slots.
        """
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "source"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self.source = None

    @property
    def num_places(self) -> int:
        return len(self.place_names)

    @property
    def num_transitions(self) -> int:
        return len(self.transition_names)

    def is_final(self, marking: tuple[int, ...]) -> bool:
        """Whether ``marking`` satisfies the final-marking constraint."""
        for place, required in self.final_constraints:
            if marking[place] != required:
                return False
        return True

    def has_missed_deadline(self, marking: tuple[int, ...]) -> bool:
        """Whether any deadline-miss place is marked (undesirable state)."""
        return any(marking[i] > 0 for i in self.miss_places)

    def interval_of(self, index: int) -> TimeInterval:
        lft = self.lft[index]
        return TimeInterval(self.eft[index], lft if lft == INF else int(lft))

    def __repr__(self) -> str:
        return (
            f"CompiledNet({self.name!r}, |P|={self.num_places}, "
            f"|T|={self.num_transitions})"
        )


def net_union(name: str, nets: Iterable[TimePetriNet]) -> TimePetriNet:
    """Disjoint union of nets (node names must not collide).

    This is the primitive behind the block composition operators; name
    collisions raise so that accidental overlap is caught early.  Final
    markings are merged.
    """
    result = TimePetriNet(name)
    for net in nets:
        for place in net.places:
            result.add_place(
                place.name,
                marking=place.marking,
                label=place.label,
                role=place.role,
                task=place.task,
            )
        for transition in net.transitions:
            result.add_transition(
                transition.name,
                interval=transition.interval,
                priority=transition.priority,
                code=transition.code,
                label=transition.label,
                role=transition.role,
                task=transition.task,
            )
        for t in net.transition_names:
            for p, w in net.preset(t).items():
                result.add_arc(p, t, w)
            for p, w in net.postset(t).items():
                result.add_arc(t, p, w)
        merged = dict(result.final_marking)
        merged.update(net.final_marking)
        result.final_marking = merged
    return result
