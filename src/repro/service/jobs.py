"""Job lifecycle, SSE fan-out and the audit log of the service.

The :class:`JobManager` is the seam between the asyncio front end
(:mod:`repro.service.app`) and the blocking batch layer
(:class:`repro.batch.SubmissionBridge`): ``submit`` runs on the event
loop and never blocks — the bridge resolves cache hits inline, dedups
in-flight fingerprints and ships fresh computes to pool workers — and
completion re-enters the loop via ``call_soon_threadsafe`` from the
executor's callback thread.

Each submission becomes a :class:`JobRecord` with a monotonically
numbered id (``job-1``, ``job-2``, ...).  Any number of SSE
subscribers can attach to a record; they receive the event sequence

* ``queued`` — acceptance: id, fingerprint, disposition
  (``computed`` / ``deduplicated`` / ``cached``);
* ``progress`` — periodic while the job runs: elapsed seconds plus a
  merged :class:`~repro.obs.metrics.MetricsRegistry` snapshot of the
  service counters (submissions, dedup hits, SSE clients, ...);
* ``done`` — terminal: status, verdict fields and the search counters
  (states visited, states/sec) of the outcome, plus the
  content-addressed ``result`` path.

Late subscribers are replayed the current state first (a ``queued``
event, then ``done`` if already finished), so attaching after
completion still yields a complete, self-contained stream.

The **audit log** appends one canonical-JSON line per lifecycle
transition via the same ``O_APPEND`` discipline as
:class:`repro.obs.events.JsonlSink`.  Rows carry a sequence number and
no wall-clock fields, so a replayed request sequence produces a
byte-identical file — the property the determinism tests pin.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.batch.engine import Submission, SubmissionBridge
from repro.batch.job import BatchJob, JobOutcome
from repro.obs.metrics import MetricsRegistry
from repro.service.sse import EventQueue, ServerEvent

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"

#: wire names of the bridge's submission dispositions
DISPOSITIONS = {
    Submission.SUBMITTED: "computed",
    Submission.JOINED: "deduplicated",
    Submission.CACHED: "cached",
    # normally unreachable through POST /jobs (the app's 422 gate runs
    # first), but a direct manager.submit of a trivially-infeasible
    # spec still gets a coherent record instead of a KeyError
    Submission.REJECTED: "rejected",
}


class AuditLog:
    """Deterministic JSONL audit trail (one atomic line per event)."""

    def __init__(self, path: str | None):
        self.path = path
        self._seq = 0
        self._fd: int | None = None

    def emit(self, event: str, **fields) -> None:
        self._seq += 1
        if self.path is None:
            return
        if self._fd is None:
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        row = {"seq": self._seq, "event": event}
        row.update(fields)
        line = (
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class RollingQuantiles:
    """Fixed-window quantile estimate for the latency gauges.

    Keeps the last ``size`` observations (a ring); ``quantile`` sorts
    on demand — the window is small and the endpoint infrequent, so
    simplicity beats a streaming sketch here.
    """

    def __init__(self, size: int = 512):
        self.size = size
        self._ring: list[float] = []
        self._next = 0

    def observe(self, value: float) -> None:
        if len(self._ring) < self.size:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.size

    def quantile(self, q: float) -> float:
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        index = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[index]


@dataclass
class JobRecord:
    """One accepted submission and its fan-out state."""

    id: str
    key: str
    spec_name: str
    disposition: str
    state: str
    outcome: dict | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    subscribers: list[EventQueue] = field(default_factory=list)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def summary(self) -> dict:
        """The JSON shape of ``GET /jobs/{id}`` (sans outcome body)."""
        doc = {
            "job": self.id,
            "fingerprint": self.key,
            "spec": self.spec_name,
            "disposition": self.disposition,
            "state": self.state,
            "links": {
                "self": f"/jobs/{self.id}",
                "events": f"/jobs/{self.id}/events",
                "result": f"/results/{self.key}",
            },
        }
        if self.outcome is not None:
            doc["status"] = self.outcome.get("status")
        return doc

    def elapsed(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.monotonic()
        )
        return max(0.0, end - self.submitted_at)


class JobManager:
    """Owns job records, SSE subscribers, metrics and the audit log."""

    def __init__(
        self,
        bridge: SubmissionBridge,
        *,
        audit_path: str | None = None,
        queue_size: int = 256,
        heartbeat: float = 0.25,
        progress_dir: str | None = None,
    ):
        self.bridge = bridge
        self.audit = AuditLog(audit_path)
        self.metrics = MetricsRegistry()
        self.queue_size = queue_size
        self.heartbeat = heartbeat
        self.submit_latency = RollingQuantiles()
        # live-progress spool: fresh computes write rate-limited search
        # counters to <dir>/<fingerprint>.json from their pool worker
        # (repro.obs.progress.ProgressFile); the ticker reads the
        # latest sample back into the SSE `progress` event.  An owned
        # tempdir is created lazily and removed on aclose.
        self.progress_dir = progress_dir
        self._owns_progress_dir = progress_dir is None
        self._records: dict[str, JobRecord] = {}
        self._by_key: dict[str, JobRecord] = {}
        self._counter = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._heartbeat_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving loop and start the progress ticker."""
        self._loop = loop
        if self.progress_dir is None:
            self.progress_dir = tempfile.mkdtemp(
                prefix="ezrt-progress-"
            )
        else:
            os.makedirs(self.progress_dir, exist_ok=True)
        if self.heartbeat > 0:
            self._heartbeat_task = loop.create_task(
                self._progress_ticker()
            )

    async def aclose(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        for record in self._records.values():
            for queue in record.subscribers:
                queue.close()
        if self._owns_progress_dir and self.progress_dir is not None:
            shutil.rmtree(self.progress_dir, ignore_errors=True)
            self.progress_dir = None
        self.audit.close()

    # ------------------------------------------------------------------
    @property
    def records(self) -> list[JobRecord]:
        return list(self._records.values())

    def record(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def outcome_for_key(self, key: str) -> dict | None:
        """Finished outcome payload for a fingerprint, if any job here
        produced one (the cache-less fallback of ``GET /results``)."""
        record = self._by_key.get(key)
        if record is not None and record.outcome is not None:
            return record.outcome
        return None

    # ------------------------------------------------------------------
    def submit(self, item, *, timeout: float | None = None) -> JobRecord:
        """Accept one spec/job on the event loop; returns its record."""
        assert self._loop is not None, "manager is not bound to a loop"
        started = time.monotonic()
        submission = self.bridge.submit(
            item, timeout=timeout, progress_dir=self.progress_dir
        )
        self._counter += 1
        disposition = DISPOSITIONS[submission.disposition]
        record = JobRecord(
            id=f"job-{self._counter}",
            key=submission.key,
            spec_name=submission.job.spec.name,
            disposition=disposition,
            state=JOB_QUEUED,
            submitted_at=started,
        )
        self._records[record.id] = record
        self.metrics.inc("service.submissions")
        self.metrics.inc(f"service.submissions.{disposition}")
        self.audit.emit(
            "submit",
            job=record.id,
            key=record.key,
            spec=record.spec_name,
            disposition=disposition,
        )
        self._publish(
            record,
            ServerEvent.of(
                "queued",
                {
                    "job": record.id,
                    "fingerprint": record.key,
                    "disposition": disposition,
                },
                id=record.id,
            ),
        )
        future = submission.future
        if future.done():
            # cache hit (or an instantly-joined finished compute):
            # complete synchronously so the POST response can already
            # say "done" and never touches the pool
            self._complete(record, future.result())
        else:
            record.state = JOB_RUNNING
            loop = self._loop
            future.add_done_callback(
                lambda f: loop.call_soon_threadsafe(
                    self._complete, record, f.result()
                )
            )
        self.submit_latency.observe(time.monotonic() - started)
        return record

    # ------------------------------------------------------------------
    def _complete(self, record: JobRecord, outcome: JobOutcome) -> None:
        if record.state == JOB_DONE:
            return
        record.state = JOB_DONE
        record.finished_at = time.monotonic()
        record.outcome = outcome.to_dict()
        self._by_key.setdefault(record.key, record)
        self.metrics.inc(f"service.outcomes.{outcome.status}")
        self.metrics.observe(
            "service.job_seconds", record.elapsed()
        )
        self.audit.emit(
            "done",
            job=record.id,
            key=record.key,
            spec=record.spec_name,
            status=outcome.status,
            feasible=outcome.feasible,
        )
        self._publish(record, self._done_event(record), terminal=True)
        for queue in record.subscribers:
            queue.close()
        record.done_event.set()
        self._drop_progress_spool(record.key)

    def _drop_progress_spool(self, key: str) -> None:
        """Best-effort removal of a finished job's progress file."""
        if self.progress_dir is None:
            return
        if any(
            r.key == key and r.state != JOB_DONE
            for r in self._records.values()
        ):
            return  # a joined duplicate is still streaming it
        try:
            os.unlink(os.path.join(self.progress_dir, f"{key}.json"))
        except OSError:
            pass

    def _read_progress_spool(self, key: str) -> dict | None:
        """Latest live-search sample for a fingerprint, if spooled.

        The worker's writes are atomic (``os.replace``), so a read
        sees a complete JSON document or no file; anything else —
        including a torn read on exotic filesystems — is treated as
        "no sample yet" rather than an error.
        """
        if self.progress_dir is None:
            return None
        path = os.path.join(self.progress_dir, f"{key}.json")
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _done_event(self, record: JobRecord) -> ServerEvent:
        outcome = record.outcome or {}
        search = outcome.get("search", {})
        seconds = outcome.get("search_seconds", 0.0)
        visited = search.get("states_visited", 0)
        payload = {
            "job": record.id,
            "fingerprint": record.key,
            "status": outcome.get("status"),
            "feasible": outcome.get("feasible", False),
            "schedule_length": outcome.get("schedule_length", 0),
            "makespan": outcome.get("makespan", 0),
            "states_visited": visited,
            "states_per_second": (
                visited / seconds if seconds > 0 else 0.0
            ),
            "error": outcome.get("error"),
            "result": f"/results/{record.key}",
        }
        return ServerEvent.of("done", payload, id=record.id)

    def _publish(
        self,
        record: JobRecord,
        event: ServerEvent,
        terminal: bool = False,
    ) -> None:
        for queue in record.subscribers:
            queue.publish(event, terminal=terminal)

    # ------------------------------------------------------------------
    def subscribe(self, record: JobRecord) -> EventQueue:
        """Attach an SSE subscriber; replays state before going live."""
        queue = EventQueue(maxsize=self.queue_size)
        self.metrics.inc("service.sse.clients")
        queue.publish(
            ServerEvent.of(
                "queued",
                {
                    "job": record.id,
                    "fingerprint": record.key,
                    "disposition": record.disposition,
                },
                id=record.id,
            )
        )
        if record.state == JOB_DONE:
            queue.publish(self._done_event(record), terminal=True)
            queue.close()
        else:
            record.subscribers.append(queue)
        return queue

    def unsubscribe(self, record: JobRecord, queue: EventQueue) -> None:
        queue.close()
        if queue in record.subscribers:
            record.subscribers.remove(queue)
            self.metrics.inc("service.sse.disconnects")

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Service + bridge registries merged, with latency gauges."""
        self.metrics.set_gauge(
            "service.submit_latency_p50_ms",
            1000.0 * self.submit_latency.quantile(0.50),
        )
        self.metrics.set_gauge(
            "service.submit_latency_p99_ms",
            1000.0 * self.submit_latency.quantile(0.99),
        )
        self.metrics.set_gauge(
            "service.jobs_inflight", float(self.bridge.inflight)
        )
        self.metrics.set_gauge(
            "service.sse.subscribers",
            float(
                sum(
                    len(r.subscribers)
                    for r in self._records.values()
                )
            ),
        )
        return MetricsRegistry.merge_snapshots(
            [self.metrics.snapshot(), self.bridge.metrics.snapshot()]
        )

    async def _progress_ticker(self) -> None:
        """Publish ``progress`` events to live subscribers.

        One ticker for the whole service: each beat snapshots the
        metrics registries once and fans the event out to every
        subscriber of every running job — so N stalled clients cost
        one snapshot, not N.
        """
        while True:
            await asyncio.sleep(self.heartbeat)
            running = [
                record
                for record in self._records.values()
                if record.state == JOB_RUNNING and record.subscribers
            ]
            if not running:
                continue
            snapshot = self.metrics_snapshot()
            counters = snapshot.get("counters", {})
            for record in running:
                payload = {
                    "job": record.id,
                    "state": record.state,
                    "elapsed_seconds": round(record.elapsed(), 6),
                    "submissions": counters.get(
                        "service.submissions", 0
                    ),
                    "dedup_hits": counters.get(
                        "bridge.dedup_joined", 0
                    ),
                    "cache_hits": counters.get(
                        "bridge.cache_hits", 0
                    ),
                }
                sample = self._read_progress_spool(record.key)
                if sample is not None:
                    # live counters from the worker's search loop;
                    # the spool is keyed by fingerprint, so joined
                    # (deduplicated) submissions see the leader's
                    # search progress too
                    for name in (
                        "slot",
                        "states_visited",
                        "states_generated",
                        "states_per_sec",
                        "depth",
                    ):
                        if name in sample:
                            payload[name] = sample[name]
                self._publish(
                    record,
                    ServerEvent.of("progress", payload, id=record.id),
                )
