"""Synthesis-as-a-service: an asyncio HTTP front end over the batch
engine.

Pure stdlib (``asyncio`` streams — no aiohttp, no uvicorn), following
the repository's no-new-required-dependencies rule.  The package
splits along protocol lines:

* :mod:`repro.service.http11` — minimal HTTP/1.1 request/response
  plumbing with hard size limits;
* :mod:`repro.service.sse` — the Server-Sent-Events codec and the
  bounded drop-and-flag per-subscriber queue;
* :mod:`repro.service.jobs` — job records, SSE fan-out, service
  metrics and the deterministic JSONL audit log;
* :mod:`repro.service.app` — :class:`SynthesisService` (routes and
  lifecycle) plus :class:`ServiceThread` / :func:`run_in_thread` for
  synchronous callers.

Quick start::

    from repro.service import run_in_thread

    handle = run_in_thread()          # ephemeral port, default engine
    ...                               # http.client against handle.base_url
    handle.stop()                     # drains, reaps the worker pool

or, from the shell: ``ezrt serve --port 8787 --cores 4``.

See ``docs/service.md`` for the endpoint contract, the SSE event
schema and dedup semantics.
"""

from repro.service.app import (
    ServiceThread,
    SynthesisService,
    run_in_thread,
    serve,
)
from repro.service.http11 import HttpError, Request
from repro.service.jobs import AuditLog, JobManager, JobRecord
from repro.service.sse import (
    EventQueue,
    ServerEvent,
    decode_stream,
    encode_comment,
    encode_event,
)

__all__ = [
    "AuditLog",
    "EventQueue",
    "HttpError",
    "JobManager",
    "JobRecord",
    "Request",
    "ServerEvent",
    "ServiceThread",
    "SynthesisService",
    "decode_stream",
    "encode_comment",
    "encode_event",
    "run_in_thread",
    "serve",
]
