"""Server-Sent Events framing and the bounded subscriber queue.

Two halves, both dependency-free:

* the **codec** — :func:`encode_event` / :func:`decode_stream` convert
  between :class:`ServerEvent` values and the ``text/event-stream``
  wire format (WHATWG HTML spec §9.2).  Encoding is canonical (fields
  in ``event``/``id``/``retry``/``data`` order, ``\\n`` newlines, one
  blank line per event) so a decode→encode round-trip is byte-stable —
  the property the fuzz suite pins;
* the **queue** — :class:`EventQueue`, the per-subscriber buffer
  between the event-loop publisher and one SSE client.  It is strictly
  bounded with a *drop-and-flag* overflow policy: a slow or stalled
  reader loses intermediate events (never the terminal one) and is
  told how many, while the publisher **never blocks** — the search
  loop and other clients keep streaming at full rate.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServerEvent:
    """One SSE event: optional type/id/retry plus a data payload."""

    data: str = ""
    event: str | None = None
    id: str | None = None
    retry: int | None = None

    @classmethod
    def of(cls, event: str, payload: dict, id: str | None = None) -> "ServerEvent":
        """Event with a canonical-JSON data payload (the service's
        only event shape: ``data`` is always one JSON object)."""
        return cls(
            data=json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ),
            event=event,
            id=id,
        )

    def payload(self) -> dict:
        """Parse ``data`` back as JSON (inverse of :meth:`of`)."""
        return json.loads(self.data)


def encode_event(event: ServerEvent) -> bytes:
    """Canonical wire form of one event.

    Multi-line data is split into one ``data:`` line per line; an
    empty payload still emits ``data:`` so every event has at least
    one field (a field-less block would be dropped by conforming
    parsers).
    """
    lines: list[str] = []
    if event.event is not None:
        lines.append(f"event: {event.event}")
    if event.id is not None:
        lines.append(f"id: {event.id}")
    if event.retry is not None:
        lines.append(f"retry: {event.retry}")
    data_lines = event.data.split("\n") if event.data else [""]
    for line in data_lines:
        lines.append(f"data: {line}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def encode_comment(text: str = "") -> bytes:
    """A comment line (keep-alive heartbeat; ignored by parsers)."""
    return f": {text}\n\n".encode("utf-8")


def decode_stream(raw: bytes) -> list[ServerEvent]:
    """Parse a byte stream into events (tolerant reader side).

    Accepts ``\\n``, ``\\r\\n`` and ``\\r`` line endings, optional
    space after the colon, comment lines and unknown fields — per the
    spec — while :func:`encode_event` only ever *emits* the canonical
    subset.  Incomplete trailing data (no blank-line terminator) is
    discarded, mirroring a connection cut mid-event.
    """
    text = raw.decode("utf-8", errors="replace")
    text = text.replace("\r\n", "\n").replace("\r", "\n")
    events: list[ServerEvent] = []
    event_type: str | None = None
    event_id: str | None = None
    retry: int | None = None
    data: list[str] | None = None

    def flush() -> None:
        nonlocal event_type, event_id, retry, data
        if data is not None or event_type is not None or retry is not None:
            events.append(
                ServerEvent(
                    data="\n".join(data or []),
                    event=event_type,
                    id=event_id,
                    retry=retry,
                )
            )
        # unlike browser EventSource, the id does NOT persist across
        # events here: the canonical encoder emits it explicitly per
        # event, and carrying it over would break round-trip stability
        event_type = None
        event_id = None
        retry = None
        data = None

    complete = text.rsplit("\n\n", 1)[0] + "\n\n" if "\n\n" in text else ""
    for line in complete.split("\n"):
        if line == "":
            flush()
            continue
        if line.startswith(":"):
            continue
        field_name, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field_name == "event":
            event_type = value
        elif field_name == "data":
            data = (data or []) + [value]
        elif field_name == "id":
            event_id = value or None
        elif field_name == "retry":
            try:
                retry = int(value)
            except ValueError:
                pass  # spec: ignore non-integer retry
        # unknown fields are ignored per spec
    return events


@dataclass
class EventQueue:
    """Bounded, never-blocking event buffer for one SSE subscriber.

    The publisher side (:meth:`publish`) runs on the event loop and is
    synchronous: when the buffer is full, the oldest *droppable* event
    is discarded and counted instead of making the publisher wait — a
    stalled client throttles only itself.  Events published with
    ``terminal=True`` (the job's ``done`` event) are never dropped:
    they evict an older droppable event if they must, so every
    subscriber that keeps reading eventually learns the outcome.

    The reader side (:meth:`next_chunk`) returns the wire bytes of the
    next event; after a drop, the first flushed event is preceded by a
    synthetic ``dropped`` event telling the client how many events it
    lost (the *flag* half of drop-and-flag).
    """

    maxsize: int = 256
    dropped: int = 0
    closed: bool = False
    _buffer: deque = field(default_factory=deque)
    _wakeup: asyncio.Event = field(default_factory=asyncio.Event)

    def publish(self, event: ServerEvent, terminal: bool = False) -> None:
        """Enqueue without ever blocking (see class doc for overflow)."""
        if self.closed:
            return
        if len(self._buffer) >= self.maxsize:
            if not terminal:
                self._buffer.popleft()
                self.dropped += 1
            else:
                # make room for the must-deliver event by sacrificing
                # the oldest droppable one
                self._buffer.popleft()
                self.dropped += 1
        self._buffer.append((event, terminal))
        self._wakeup.set()

    def close(self) -> None:
        """Stop the stream; the reader drains what is buffered."""
        self.closed = True
        self._wakeup.set()

    @property
    def pending(self) -> int:
        return len(self._buffer)

    async def next_chunk(self, heartbeat: float | None = None) -> bytes | None:
        """Wire bytes of the next event(s); ``None`` when the stream is
        closed and drained.  With ``heartbeat`` set, an idle wait longer
        than that many seconds yields an SSE comment instead, keeping
        the connection visibly alive (and surfacing dead sockets to the
        writer)."""
        while True:
            if self._buffer:
                event, _ = self._buffer.popleft()
                chunk = b""
                if self.dropped:
                    chunk += encode_event(
                        ServerEvent.of(
                            "dropped", {"events": self.dropped}
                        )
                    )
                    self.dropped = 0
                return chunk + encode_event(event)
            if self.closed:
                return None
            self._wakeup.clear()
            try:
                if heartbeat is None:
                    await self._wakeup.wait()
                else:
                    await asyncio.wait_for(
                        self._wakeup.wait(), timeout=heartbeat
                    )
            except asyncio.TimeoutError:
                return encode_comment("keep-alive")
