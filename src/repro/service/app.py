"""Synthesis-as-a-service: the asyncio front end over the batch engine.

:class:`SynthesisService` glues the pieces together: the HTTP/1.1
plumbing (:mod:`repro.service.http11`), the SSE codec and per-client
queues (:mod:`repro.service.sse`), the job registry with its audit log
(:mod:`repro.service.jobs`) and the blocking compute path
(:class:`repro.batch.SubmissionBridge` over a persistent worker pool).

Endpoints::

    GET  /healthz                 liveness + job/in-flight counts
    GET  /metrics                 merged service+bridge metrics snapshot
    POST /jobs                    submit {"spec": ..., "timeout": ...}
    GET  /jobs                    list accepted jobs
    GET  /jobs/{id}               one job's state + links
    GET  /jobs/{id}/events        SSE stream (queued/progress/done)
    GET  /results/{fingerprint}   content-addressed outcome, strong ETag

``POST /jobs`` fast-fails trivially-infeasible specs: the pre-search
lint gate (:mod:`repro.lint.specrules`) answers ``422`` with a
machine-readable ``diagnostics`` list — the violated necessary
conditions — and no job record is created, no pool worker touched.

Dedup is content-addressed at two layers and both are visible in the
``disposition`` field of a submission response: ``cached`` (the result
cache already held the fingerprint — the request never touches the
pool), ``deduplicated`` (an identical job is in flight — this request
joins its future; N concurrent identical submissions compute once) and
``computed`` (fresh work shipped to a pool worker).

``GET /results/{fp}`` serves the outcome under a strong ``ETag`` equal
to the fingerprint, so conditional re-fetches cost a ``304`` and no
body; results are immutable by construction (same fingerprint ⇒ same
canonical outcome), which is what makes the strong validator sound.

Two entry points: :func:`SynthesisService.start` for callers already
inside an event loop, and :class:`ServiceThread` (via
:func:`run_in_thread`) which hosts the loop on a daemon thread — the
shape the test-suite, the benchmark and ``ezrt serve`` all use.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.batch.cache import ResultCache
from repro.batch.engine import BatchEngine, SubmissionBridge
from repro.lint.diagnostics import has_errors
from repro.lint.specrules import presearch_diagnostics
from repro.service import http11
from repro.service.http11 import HttpError, Request
from repro.service.jobs import JobManager, JobRecord
from repro.spec.dsl import DSLError
from repro.spec.jsonio import spec_from_json

#: top-level keys a POST /jobs body may carry (strict contract: an
#: unknown key is a client error, not something to silently ignore)
SUBMIT_KEYS = frozenset({"spec", "timeout"})


class SynthesisService:
    """One service instance: routes, job manager, compute bridge."""

    def __init__(
        self,
        engine: BatchEngine | None = None,
        *,
        audit_path: str | None = None,
        heartbeat: float = 0.25,
        sse_keepalive: float = 15.0,
        max_body: int = http11.MAX_BODY_BYTES,
    ):
        if engine is None:
            # feasible outcomes must carry their firing schedule so
            # they can be replayed through the reference engine (the
            # verdict-parity contract) and served as full results; the
            # memory cache makes repeat submissions of a finished
            # fingerprint `cached` instead of recomputed
            engine = BatchEngine(
                store_schedules=True, cache=ResultCache()
            )
        self.engine = engine
        self.bridge: SubmissionBridge = engine.bridge()
        self.manager = JobManager(
            self.bridge,
            audit_path=audit_path,
            heartbeat=heartbeat,
        )
        self.sse_keepalive = sse_keepalive
        self.max_body = max_body
        self._server: asyncio.base_events.Server | None = None
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving (``port=0`` picks an ephemeral one)."""
        self.manager.bind(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._serve_client, host, port
        )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.aclose()
        # blocking, but only at teardown: reap the worker pool so no
        # ezrt processes outlive the service (the CI leak gate)
        await asyncio.get_running_loop().run_in_executor(
            None, self.bridge.shutdown
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection loop -----------------------------------------------
    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.manager.metrics.inc("service.connections")
        try:
            while True:
                try:
                    request = await http11.read_request(
                        reader, max_body=self.max_body
                    )
                except HttpError as err:
                    writer.write(
                        http11.error_response(err, keep_alive=False)
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                self.manager.metrics.inc("service.requests")
                if await self._dispatch(request, writer):
                    return  # handler took over / asked to close
                await writer.drain()
                if not request.keep_alive:
                    return
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns True to close the connection."""
        try:
            return await self._route(request, writer)
        except HttpError as err:
            self.manager.metrics.inc("service.client_errors")
            writer.write(
                http11.error_response(
                    err, keep_alive=request.keep_alive
                )
            )
            return False
        except Exception as err:  # noqa: BLE001 — must answer something
            self.manager.metrics.inc("service.server_errors")
            writer.write(
                http11.error_response(
                    HttpError(500, f"{type(err).__name__}: {err}"),
                    keep_alive=False,
                )
            )
            return True

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        parts = [p for p in request.path.split("/") if p]
        method = request.method
        head = method == "HEAD"
        if method not in ("GET", "HEAD", "POST"):
            raise HttpError(
                405, f"method {method} not supported", allow="GET, HEAD, POST"
            )

        if parts == ["healthz"]:
            self._require_get(request)
            writer.write(
                self._json(
                    request,
                    200,
                    {
                        "ok": True,
                        "jobs": len(self.manager.records),
                        "inflight": self.bridge.inflight,
                    },
                )
            )
            return False

        if parts == ["metrics"]:
            self._require_get(request)
            writer.write(
                self._json(
                    request, 200, self.manager.metrics_snapshot()
                )
            )
            return False

        if parts == ["jobs"]:
            if method == "POST":
                writer.write(self._submit(request))
                return False
            writer.write(
                self._json(
                    request,
                    200,
                    {
                        "jobs": [
                            record.summary()
                            for record in self.manager.records
                        ]
                    },
                )
            )
            return False

        if len(parts) == 2 and parts[0] == "jobs":
            self._require_get(request)
            record = self._record(parts[1])
            writer.write(self._json(request, 200, record.summary()))
            return False

        if (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "events"
        ):
            self._require_get(request)
            record = self._record(parts[1])
            if head:
                writer.write(http11.sse_preamble())
                return True
            await self._stream_events(record, writer)
            return True

        if len(parts) == 2 and parts[0] == "results":
            self._require_get(request)
            writer.write(self._result(request, parts[1]))
            return False

        raise HttpError(404, f"no route for {request.path}")

    @staticmethod
    def _require_get(request: Request) -> None:
        if request.method not in ("GET", "HEAD"):
            raise HttpError(
                405,
                f"{request.path} only supports GET",
                allow="GET, HEAD",
            )

    def _json(
        self,
        request: Request,
        status: int,
        payload: dict,
        headers: dict | None = None,
    ) -> bytes:
        return http11.json_response(
            status,
            payload,
            headers=headers,
            head=request.method == "HEAD",
            keep_alive=request.keep_alive,
        )

    def _record(self, job_id: str) -> JobRecord:
        record = self.manager.record(job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return record

    # -- handlers ------------------------------------------------------
    def _submit(self, request: Request) -> bytes:
        doc = request.json()
        unknown = set(doc) - SUBMIT_KEYS
        if unknown:
            raise HttpError(
                400,
                "unknown submission keys: "
                + ", ".join(sorted(unknown)),
            )
        spec_doc = doc.get("spec")
        if not isinstance(spec_doc, dict):
            raise HttpError(
                400, 'submission requires a "spec" object'
            )
        timeout = doc.get("timeout")
        if timeout is not None:
            if (
                not isinstance(timeout, (int, float))
                or isinstance(timeout, bool)
                or timeout <= 0
            ):
                raise HttpError(
                    400, '"timeout" must be a positive number'
                )
            timeout = float(timeout)
        try:
            spec = spec_from_json(spec_doc)
        except DSLError as err:
            raise HttpError(422, f"invalid spec: {err}") from None
        # pre-search lint gate: a trivially-infeasible spec is a client
        # error, answered with the violated necessary conditions and
        # without creating a job or touching the worker pool
        diagnostics = presearch_diagnostics(
            spec, engine=self.engine.scheduler_config.engine
        )
        if has_errors(diagnostics):
            self.manager.metrics.inc("service.prelint_rejected")
            raise HttpError(
                422,
                f"spec {spec.name!r} is trivially infeasible; "
                "see diagnostics",
                extra={
                    "diagnostics": [
                        d.to_dict() for d in diagnostics
                    ]
                },
            )
        record = self.manager.submit(spec, timeout=timeout)
        payload = record.summary()
        return self._json(request, 201, payload)

    def _result(self, request: Request, key: str) -> bytes:
        payload = None
        cache = self.engine.cache
        if isinstance(cache, ResultCache):
            payload = cache._read(key)
        if payload is None:
            payload = self.manager.outcome_for_key(key)
        if payload is None:
            raise HttpError(404, f"no result for fingerprint {key}")
        etag = f'"{key}"'
        condition = request.headers.get("if-none-match")
        if condition is not None:
            tags = [tag.strip() for tag in condition.split(",")]
            if "*" in tags or etag in tags:
                self.manager.metrics.inc("service.results.not_modified")
                return http11.render_response(
                    304,
                    headers={"etag": etag},
                    keep_alive=request.keep_alive,
                )
        self.manager.metrics.inc("service.results.served")
        return self._json(
            request,
            200,
            payload,
            headers={"etag": etag, "cache-control": "max-age=31536000, immutable"},
        )

    async def _stream_events(
        self, record: JobRecord, writer: asyncio.StreamWriter
    ) -> None:
        queue = self.manager.subscribe(record)
        writer.write(http11.sse_preamble())
        try:
            while True:
                chunk = await queue.next_chunk(
                    heartbeat=self.sse_keepalive
                )
                if chunk is None:
                    return
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # client disconnected; drop the subscription
        finally:
            self.manager.unsubscribe(record, queue)


class ServiceThread:
    """A running service hosted on a daemon thread with its own loop.

    The synchronous face of the service for tests, benchmarks and the
    docs walkthrough: construct, read ``base_url``, make plain
    ``http.client`` requests, then ``stop()`` — which drains the
    server, closes subscribers and reaps the worker pool before
    returning.
    """

    def __init__(
        self,
        service: SynthesisService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs,
    ):
        self.service = service or SynthesisService(**service_kwargs)
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="ezrt-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.service.start(self._host, self._port)
        except BaseException as err:  # noqa: BLE001 — re-raised in ctor
            self._startup_error = err
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.service.aclose()

    @property
    def base_url(self) -> str:
        return self.service.base_url

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        """Shut down and join; idempotent."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)


def run_in_thread(
    engine: BatchEngine | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs,
) -> ServiceThread:
    """Start a service on a background thread; returns the handle."""
    service = SynthesisService(engine, **service_kwargs)
    return ServiceThread(service, host=host, port=port)


async def serve(
    host: str,
    port: int,
    engine: BatchEngine | None = None,
    *,
    audit_path: str | None = None,
    ready_line: bool = True,
) -> None:
    """Run a service until cancelled (the ``ezrt serve`` entry point)."""
    service = SynthesisService(engine, audit_path=audit_path)
    await service.start(host, port)
    if ready_line:
        # parse-friendly readiness marker for process supervisors (the
        # CI smoke job greps for it before aiming traffic)
        print(f"ezrt-service listening on {service.base_url}", flush=True)
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.aclose()
