"""Minimal asyncio HTTP/1.1 plumbing for the synthesis service.

Just enough protocol for a JSON API with SSE streams, on stdlib
``asyncio`` streams only — mirroring the repository's no-new-required-
dependencies rule (the ``[native]`` extra pattern): no aiohttp, no
uvicorn.  Supported: request-line + header parsing with hard size
limits, ``Content-Length`` bodies, ``GET``/``HEAD``/``POST``,
keep-alive connections, and strong-validator conditional GETs
(``ETag`` / ``If-None-Match``).  Deliberately rejected: chunked
request bodies (``501``), oversized headers/bodies (``431``/``413``)
and anything that is not HTTP/1.x.

:class:`HttpError` is the routing layer's escape hatch: raise it
anywhere in a handler and the connection loop renders the proper
status with a JSON error body.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Abort request handling with a specific status code."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        allow: str | None = None,
        extra: dict | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        #: for 405 responses: the Allow header value
        self.allow = allow
        #: extra machine-readable payload fields merged into the JSON
        #: error body (e.g. the lint ``diagnostics`` of a 422); never
        #: overrides the ``error``/``status`` keys
        self.extra = extra


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """Body parsed as a JSON object (400 on anything else)."""
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise HttpError(
                400, f"request body is not valid JSON: {err}"
            ) from None
        if not isinstance(doc, dict):
            raise HttpError(
                400,
                "request body must be a JSON object, got "
                f"{type(doc).__name__}",
            )
        return doc

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = MAX_BODY_BYTES,
) -> Request | None:
    """Read one request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        if not line:
            raise HttpError(400, "connection closed inside headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, "header section too large")
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, colon, value = text.partition(":")
        if not colon:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(
            501, "chunked request bodies are not supported"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds {max_body}"
            )
        body = await reader.readexactly(length)
    elif method == "POST":
        raise HttpError(411, "POST requires Content-Length")

    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }
    return Request(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    head: bool = False,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one complete response (``head`` omits the body)."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    out_headers = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    if status == 304:
        # 304 carries validators but no body or content headers
        out_headers.pop("content-type")
        out_headers.pop("content-length")
    out_headers.update(headers or {})
    for name, value in out_headers.items():
        lines.append(f"{name}: {value}")
    head_bytes = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    if head or status == 304:
        return head_bytes
    return head_bytes + body


def json_response(
    status: int,
    payload: dict,
    *,
    headers: dict[str, str] | None = None,
    head: bool = False,
    keep_alive: bool = True,
) -> bytes:
    """A canonical-JSON response (sorted keys — byte-reproducible)."""
    body = (
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
        + "\n"
    ).encode("utf-8")
    return render_response(
        status,
        body,
        headers=headers,
        head=head,
        keep_alive=keep_alive,
    )


def error_response(error: HttpError, *, keep_alive: bool = True) -> bytes:
    headers = {}
    if error.allow:
        headers["allow"] = error.allow
    payload = dict(error.extra or {})
    payload["error"] = error.message
    payload["status"] = error.status
    return json_response(
        error.status,
        payload,
        headers=headers,
        keep_alive=keep_alive,
    )


def sse_preamble() -> bytes:
    """Response head opening an event stream (connection-terminated)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"content-type: text/event-stream\r\n"
        b"cache-control: no-store\r\n"
        b"connection: close\r\n"
        b"\r\n"
    )
