"""Code-generation target profiles.

The paper's future work names several microcontroller/processor
families ("ARM9, 8051, M68K, x86"); each profile here captures the
platform-specific idioms the dispatcher needs — timer-interrupt entry,
context save/restore, timer reprogramming — while the portable parts
(schedule table, dispatcher policy) stay identical.

Only the ``hostsim`` profile is expected to *compile and run* in this
repository (it drives the table from a virtual-clock loop and is
exercised by integration tests with the system C compiler); the
embedded profiles emit the correct source idioms for their toolchains
and are validated structurally.  This is the documented substitution
for real target hardware — the timing semantics of the table itself is
executed and verified by :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodeGenError


@dataclass(frozen=True)
class TargetProfile:
    """Platform-specific code idioms for the generated dispatcher.

    Attributes:
        name: profile identifier used by the CLI/codegen API.
        description: one-line human description.
        includes: extra ``#include`` lines for the dispatcher unit.
        isr_signature: function header of the timer interrupt handler.
        timer_setup: statements installing/starting the schedule timer.
        timer_program: statements (re)programming the next match value;
            ``{next}`` is substituted with the C expression of the next
            dispatch time.
        context_save / context_restore: statements around a preemption.
        idle: statement executed while waiting for the next interrupt.
        runnable: True when this repository can compile and execute the
            generated project with the host toolchain.
    """

    name: str
    description: str
    includes: tuple[str, ...]
    isr_signature: str
    timer_setup: str
    timer_program: str
    context_save: str
    context_restore: str
    idle: str
    runnable: bool = False


HOSTSIM = TargetProfile(
    name="hostsim",
    description=(
        "portable host simulation: a virtual-clock loop replays the "
        "schedule table and logs every dispatch"
    ),
    includes=("#include <stdio.h>",),
    isr_signature="void ezrt_timer_tick(unsigned int now)",
    timer_setup="/* virtual clock driven by main() */",
    timer_program="ezrt_next_match = {next};",
    context_save="ezrt_log_context_save(item->task_id);",
    context_restore="ezrt_log_context_restore(item->task_id);",
    idle="/* virtual time advances in main() */",
    runnable=True,
)

I8051 = TargetProfile(
    name="8051",
    description="Intel 8051 family (Keil C51 idioms, timer 0)",
    includes=("#include <reg51.h>",),
    isr_signature="void ezrt_timer_isr(void) interrupt 1 using 1",
    timer_setup=(
        "TMOD = (TMOD & 0xF0) | 0x01;  /* timer 0, mode 1 */\n"
        "TH0 = EZRT_TIMER_RELOAD_HIGH;\n"
        "TL0 = EZRT_TIMER_RELOAD_LOW;\n"
        "ET0 = 1;  /* enable timer 0 interrupt */\n"
        "EA = 1;   /* global interrupt enable */\n"
        "TR0 = 1;  /* run */"
    ),
    timer_program=(
        "TR0 = 0;\n"
        "ezrt_timer_match = {next};\n"
        "TH0 = (unsigned char)(ezrt_timer_match >> 8);\n"
        "TL0 = (unsigned char)(ezrt_timer_match & 0xFF);\n"
        "TR0 = 1;"
    ),
    context_save=(
        "/* 8051: registers live in the active bank; push PSW/ACC */\n"
        "ezrt_save_bank(item->task_id);"
    ),
    context_restore="ezrt_restore_bank(item->task_id);",
    idle="PCON |= 0x01;  /* IDL: idle mode until interrupt */",
)

ARM9 = TargetProfile(
    name="arm9",
    description="ARM9 (ARM926EJ-S style, VIC + timer peripheral)",
    includes=('#include "arm9_vic.h"', '#include "arm9_timer.h"'),
    isr_signature=(
        'void __attribute__((interrupt("IRQ"))) ezrt_timer_isr(void)'
    ),
    timer_setup=(
        "vic_enable(VIC_TIMER0);\n"
        "timer0_set_mode(TIMER_MATCH_INTERRUPT);\n"
        "timer0_start();"
    ),
    timer_program="timer0_set_match({next});",
    context_save=(
        "/* r0-r12, sp, lr, spsr banked away for the preempted task */\n"
        "ezrt_store_frame(item->task_id);"
    ),
    context_restore="ezrt_load_frame(item->task_id);",
    idle='__asm volatile ("mcr p15, 0, %0, c7, c0, 4" :: "r"(0));',
)

M68K = TargetProfile(
    name="m68k",
    description="Motorola 68000 family (vector 0x19 auto-level timer)",
    includes=('#include "m68k_timer.h"',),
    isr_signature=(
        "__attribute__((interrupt_handler)) void ezrt_timer_isr(void)"
    ),
    timer_setup=(
        "*(volatile unsigned short *)TIMER_CTRL = TIMER_ENABLE;\n"
        "m68k_set_vector(TIMER_VECTOR, ezrt_timer_isr);"
    ),
    timer_program=(
        "*(volatile unsigned long *)TIMER_MATCH = {next};"
    ),
    context_save=(
        "/* movem.l d0-d7/a0-a6 handled by the interrupt frame; keep "
        "usp */\n"
        "ezrt_store_usp(item->task_id);"
    ),
    context_restore="ezrt_load_usp(item->task_id);",
    idle='__asm volatile ("stop #0x2000");',
)

X86 = TargetProfile(
    name="x86",
    description="x86 protected mode (PIT channel 0, IRQ0)",
    includes=('#include "x86_pit.h"', '#include "x86_idt.h"'),
    isr_signature=(
        "__attribute__((interrupt)) void ezrt_timer_isr(void *frame)"
    ),
    timer_setup=(
        "idt_install(IRQ0_VECTOR, ezrt_timer_isr);\n"
        "pit_set_mode(PIT_RATE_GENERATOR);\n"
        "pit_set_divisor(EZRT_PIT_DIVISOR);"
    ),
    timer_program="pit_set_match({next});",
    context_save=(
        "/* general registers pushed by the stub; keep esp per task */\n"
        "ezrt_store_esp(item->task_id);"
    ),
    context_restore="ezrt_load_esp(item->task_id);",
    idle='__asm volatile ("hlt");',
)

TARGETS: dict[str, TargetProfile] = {
    profile.name: profile
    for profile in (HOSTSIM, I8051, ARM9, M68K, X86)
}


def get_target(name: str) -> TargetProfile:
    """Look up a target profile by name."""
    try:
        return TARGETS[name]
    except KeyError:
        raise CodeGenError(
            f"unknown codegen target {name!r}; available: "
            f"{sorted(TARGETS)}"
        ) from None
