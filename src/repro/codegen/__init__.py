"""Scheduled C code generation (paper Section 4.4.2)."""

from repro.codegen.dispatcher import (
    render_dispatcher,
    render_main,
    render_tasks_header,
    render_tasks_source,
)
from repro.codegen.generator import GeneratedProject, generate_project
from repro.codegen.schedule_table import (
    render_paper_style,
    render_schedule_header,
    render_schedule_source,
)
from repro.codegen.targets import (
    ARM9,
    HOSTSIM,
    I8051,
    M68K,
    TARGETS,
    TargetProfile,
    X86,
    get_target,
)
from repro.codegen.templates import (
    banner,
    block_comment,
    c_identifier,
    include_guard,
    indent,
)

__all__ = [
    "ARM9",
    "GeneratedProject",
    "HOSTSIM",
    "I8051",
    "M68K",
    "TARGETS",
    "TargetProfile",
    "X86",
    "banner",
    "block_comment",
    "c_identifier",
    "generate_project",
    "get_target",
    "include_guard",
    "indent",
    "render_dispatcher",
    "render_main",
    "render_paper_style",
    "render_schedule_header",
    "render_schedule_source",
    "render_tasks_header",
    "render_tasks_source",
]
