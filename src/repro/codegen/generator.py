"""Whole-project scheduled-code generation.

Bundles the emitters into a generated project: schedule table, task
bodies, dispatcher + ISR, entry point, build file and a README — the
"timely and predictable scheduled C code" the tool synthesises.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field

from repro.errors import CodeGenError
from repro.blocks.composer import ComposedModel
from repro.codegen.dispatcher import (
    render_dispatcher,
    render_main,
    render_tasks_header,
    render_tasks_source,
)
from repro.codegen.schedule_table import (
    render_schedule_header,
    render_schedule_source,
)
from repro.codegen.targets import TargetProfile, get_target
from repro.scheduler.schedule import TaskLevelSchedule


@dataclass
class GeneratedProject:
    """A generated scheduled-code project (file name → content)."""

    target: TargetProfile
    files: dict[str, str] = field(default_factory=dict)

    @property
    def source_files(self) -> list[str]:
        return sorted(f for f in self.files if f.endswith(".c"))

    def write(self, directory: str) -> list[str]:
        """Write every file under ``directory``; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for name, content in self.files.items():
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            paths.append(path)
        return sorted(paths)

    def compile_and_run(
        self, directory: str, cc: str = "cc", timeout: float = 60.0
    ) -> str:
        """Build and execute a runnable project; returns its stdout.

        Only host-simulation targets are runnable; embedded targets
        raise :class:`CodeGenError` (their toolchains are not part of
        this repository — the substitution DESIGN.md documents).
        """
        if not self.target.runnable:
            raise CodeGenError(
                f"target {self.target.name!r} is not runnable on the "
                "host; use the 'hostsim' target or the Python "
                "dispatcher simulator (repro.sim)"
            )
        self.write(directory)
        binary = os.path.join(directory, "ezrt_app")
        sources = [
            os.path.join(directory, f) for f in self.source_files
        ]
        compile_cmd = [
            cc,
            "-Wall",
            "-Wextra",
            "-Werror",
            "-DEZRT_HOSTSIM",
            "-o",
            binary,
            *sources,
        ]
        build = subprocess.run(
            compile_cmd, capture_output=True, text=True, timeout=timeout
        )
        if build.returncode != 0:
            raise CodeGenError(
                f"generated project failed to compile:\n{build.stderr}"
            )
        run = subprocess.run(
            [binary], capture_output=True, text=True, timeout=timeout
        )
        if run.returncode != 0:
            raise CodeGenError(
                f"generated binary failed:\n{run.stderr}"
            )
        return run.stdout


def _render_makefile(project_name: str, target: TargetProfile) -> str:
    define = "-DEZRT_HOSTSIM " if target.runnable else ""
    lines = [
        f"# Generated build file for {project_name} "
        f"(target: {target.name})",
        "CC ?= cc",
        f"CFLAGS ?= -Wall -Wextra {define}-O2",
        "SRC = $(wildcard *.c)",
        "",
        "ezrt_app: $(SRC)",
        "\t$(CC) $(CFLAGS) -o $@ $(SRC)",
        "",
        "clean:",
        "\trm -f ezrt_app",
        "",
        ".PHONY: clean",
        "",
    ]
    return "\n".join(lines)


def _render_readme(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    target: TargetProfile,
) -> str:
    spec = model.spec
    lines = [
        f"Generated scheduled code for specification '{spec.name}'",
        "=" * 60,
        "",
        f"target           : {target.name} — {target.description}",
        f"schedule period  : {model.schedule_period} time units",
        f"task instances   : {model.total_instances}",
        f"table entries    : {len(schedule.items)}",
        f"processor busy   : {schedule.busy_time()} "
        f"({100.0 * schedule.busy_time() / model.schedule_period:.1f}%)",
        "",
        "Files:",
        "  ezrt_schedule.h/.c  schedule table (struct ScheduleItem)",
        "  ezrt_tasks.h/.c     task entry points and bodies",
        "  ezrt_dispatcher.c   dispatcher + timer interrupt handler",
        "  main.c              timer setup and idle loop",
        "  Makefile            host build (hostsim target only)",
        "",
        "Tasks:",
    ]
    for i, task in enumerate(spec.tasks, start=1):
        lines.append(
            f"  {i}. {task.name}: c={task.computation} "
            f"d={task.deadline} p={task.period} "
            f"{'P' if task.is_preemptive else 'NP'}"
        )
    lines.append("")
    return "\n".join(lines)


def generate_project(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    target: str | TargetProfile = "hostsim",
) -> GeneratedProject:
    """Generate the full scheduled-code project for a model + schedule."""
    profile = (
        target if isinstance(target, TargetProfile) else get_target(target)
    )
    if not schedule.items:
        raise CodeGenError(
            "cannot generate code from an empty schedule"
        )
    files = {
        "ezrt_schedule.h": render_schedule_header(model, schedule),
        "ezrt_schedule.c": render_schedule_source(model, schedule),
        "ezrt_tasks.h": render_tasks_header(model),
        "ezrt_tasks.c": render_tasks_source(model),
        "ezrt_dispatcher.c": render_dispatcher(model, profile),
        "main.c": render_main(model, profile),
        "Makefile": _render_makefile(model.spec.name, profile),
        "README.txt": _render_readme(model, schedule, profile),
    }
    return GeneratedProject(target=profile, files=files)
