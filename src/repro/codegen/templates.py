"""Small C-source templating helpers.

The paper's CodeGen engine used Ruby/ERB; here plain Python string
helpers produce the same artefacts.  Nothing clever: banners, include
guards, indentation and identifier sanitisation — enough to keep the
emitters in the sibling modules readable.
"""

from __future__ import annotations

import re

from repro.errors import CodeGenError

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def c_identifier(name: str) -> str:
    """Turn an arbitrary task/spec name into a valid C identifier."""
    cleaned = _IDENT_RE.sub("_", name)
    if not cleaned:
        raise CodeGenError(f"cannot derive a C identifier from {name!r}")
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def banner(title: str, *lines: str) -> str:
    """A boxed comment header placed at the top of generated files."""
    body = [title, *lines]
    width = max(len(line) for line in body) + 4
    out = ["/*" + "*" * width]
    for line in body:
        out.append(f" * {line}")
    out.append(" " + "*" * width + "*/")
    return "\n".join(out)


def include_guard(name: str, content: str) -> str:
    """Wrap header content in a classic include guard."""
    guard = f"EZRT_{c_identifier(name).upper()}_H"
    return (
        f"#ifndef {guard}\n#define {guard}\n\n{content}\n\n"
        f"#endif /* {guard} */\n"
    )


def indent(text: str, levels: int = 1, width: int = 4) -> str:
    """Indent every non-empty line of ``text``."""
    pad = " " * (levels * width)
    return "\n".join(
        pad + line if line.strip() else line
        for line in text.splitlines()
    )


def block_comment(text: str) -> str:
    """A single- or multi-line ``/* ... */`` comment."""
    lines = text.splitlines() or [""]
    if len(lines) == 1:
        return f"/* {lines[0]} */"
    out = ["/*"]
    out.extend(f" * {line}" for line in lines)
    out.append(" */")
    return "\n".join(out)
