"""Dispatcher and timer-interrupt-handler emission (Section 4.4.2).

"The proposed method for code generation includes not only tasks' code,
but also a timer interrupt handler, and a small dispatcher.  Such
dispatcher automates several control mechanisms required during the
execution of tasks: timer programming, context saving, context
restoring, and tasks' calling."

The dispatcher walks the schedule table: at each timer match it saves
the running context, then either calls the entry's task afresh or
restores the context of a previously preempted instance (the entry's
``preempted`` flag), and finally programs the timer with the next
entry's start time.  Platform idioms come from the target profile.
"""

from __future__ import annotations

from repro.blocks.composer import ComposedModel
from repro.codegen.targets import TargetProfile
from repro.codegen.templates import banner, c_identifier, indent


def render_tasks_header(model: ComposedModel) -> str:
    """``ezrt_tasks.h``: entry-point prototypes for every task."""
    from repro.codegen.templates import include_guard

    lines = [
        banner(
            "ezRealtime generated task interface",
            f"specification: {model.spec.name}",
        ),
        "",
    ]
    for task in model.spec.tasks:
        lines.append(f"void {c_identifier(task.name)}(void);")
    lines.append("")
    lines.append("/* host-simulation hook; a no-op on real targets */")
    lines.append("void ezrt_log_task_body(const char *name);")
    return include_guard("tasks", "\n".join(lines))


def render_tasks_source(model: ComposedModel) -> str:
    """``ezrt_tasks.c``: task bodies from the behavioural specification.

    Each function embeds the specification's C source for the task.  In
    host-simulation builds (``-DEZRT_HOSTSIM``) the body is replaced by
    a logging hook so the project links without the target platform's
    device drivers — the substitution that lets integration tests
    compile and run generated projects with the system compiler.
    """
    lines = [
        banner(
            "ezRealtime generated task bodies",
            f"specification: {model.spec.name}",
            "bodies come from the behavioural specification (C_S)",
        ),
        "",
        '#include "ezrt_tasks.h"',
        "",
    ]
    for task in model.spec.tasks:
        body = task.code.content if task.code else "/* no source */ ;"
        lines.append(
            f"/* {task.name}: c={task.computation} d={task.deadline} "
            f"p={task.period} "
            f"{'preemptive' if task.is_preemptive else 'non-preemptive'}"
            " */"
        )
        lines.append(f"void {c_identifier(task.name)}(void)")
        lines.append("{")
        lines.append("#ifdef EZRT_HOSTSIM")
        lines.append(
            f'    ezrt_log_task_body("{task.name}");'
        )
        lines.append("#else")
        lines.append(indent(body))
        lines.append("#endif")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


def render_dispatcher(
    model: ComposedModel, target: TargetProfile
) -> str:
    """``ezrt_dispatcher.c``: the dispatcher + timer interrupt handler."""
    overhead = 1 if model.spec.disp_oveh else 0
    lines = [
        banner(
            "ezRealtime generated dispatcher",
            f"specification: {model.spec.name}",
            f"target: {target.name} ({target.description})",
        ),
        "",
        '#include "ezrt_schedule.h"',
        '#include "ezrt_tasks.h"',
    ]
    lines.extend(target.includes)
    lines.extend(
        [
            "",
            f"#define EZRT_DISPATCH_OVERHEAD {overhead}u",
            "",
            "static unsigned int ezrt_index = 0;",
            "unsigned long ezrt_next_match = 0;",
            "unsigned long ezrt_dispatches = 0;",
            "unsigned long ezrt_preemption_resumes = 0;",
            "",
        ]
    )

    if target.runnable:
        lines.extend(
            [
                "void ezrt_log_task_body(const char *name)",
                "{",
                '    printf("        run body %s\\n", name);',
                "}",
                "",
                "void ezrt_log_context_save(unsigned int task_id)",
                "{",
                '    printf("        save context of task %u (%s)\\n",',
                "           task_id, ezrt_task_names[task_id - 1]);",
                "}",
                "",
                "void ezrt_log_context_restore(unsigned int task_id)",
                "{",
                '    printf("        restore context of task %u (%s)"'
                '"\\n",',
                "           task_id, ezrt_task_names[task_id - 1]);",
                "}",
                "",
            ]
        )

    lines.extend(
        [
            "/* Dispatch one schedule-table entry: context handling,",
            " * task calling and timer programming (paper 4.4.2). */",
            "static void ezrt_dispatch(const struct ScheduleItem *item)",
            "{",
            "    ezrt_dispatches++;",
            "    if (item->preempted) {",
            "        /* the instance was preempted before: restore it */",
            "        ezrt_preemption_resumes++;",
            indent(target.context_restore, 2),
            "    } else {",
            indent(target.context_save, 2),
        ]
    )
    if target.runnable:
        lines.append(
            '        printf("t=%4lu dispatch task %u (%s)\\n",'
        )
        lines.append(
            "               item->start, item->task_id,"
        )
        lines.append(
            "               ezrt_task_names[item->task_id - 1]);"
        )
    lines.extend(
        [
            "        item->task();",
            "    }",
            "}",
            "",
            "/* Timer interrupt handler: fires on every table match. */",
            f"{target.isr_signature}",
            "{",
        ]
    )
    if target.runnable:
        lines.extend(
            [
                "    while (ezrt_index < EZRT_SCHEDULE_SIZE &&",
                "           scheduleTable[ezrt_index].start == now) {",
                "        ezrt_dispatch(&scheduleTable[ezrt_index]);",
                "        ezrt_index++;",
                "    }",
            ]
        )
    else:
        next_expr = (
            "scheduleTable[ezrt_index].start - EZRT_DISPATCH_OVERHEAD"
            if overhead
            else "scheduleTable[ezrt_index].start"
        )
        lines.extend(
            [
                "    const struct ScheduleItem *item =",
                "        &scheduleTable[ezrt_index];",
                "    ezrt_dispatch(item);",
                "    ezrt_index = (ezrt_index + 1u) % EZRT_SCHEDULE_SIZE;",
                "    /* program the next timer match */",
                indent(
                    target.timer_program.replace("{next}", next_expr)
                ),
            ]
        )
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def render_main(model: ComposedModel, target: TargetProfile) -> str:
    """``main.c``: timer setup and the idle loop (or host-sim driver)."""
    lines = [
        banner(
            "ezRealtime generated entry point",
            f"specification: {model.spec.name}",
            f"target: {target.name}",
        ),
        "",
        '#include "ezrt_schedule.h"',
        '#include "ezrt_tasks.h"',
    ]
    lines.extend(target.includes)
    lines.append("")
    if target.runnable:
        lines.extend(
            [
                "void ezrt_timer_tick(unsigned int now);",
                "extern unsigned long ezrt_dispatches;",
                "extern unsigned long ezrt_preemption_resumes;",
                "",
                "int main(void)",
                "{",
                "    unsigned int now;",
                "    /* virtual clock: one iteration per time unit */",
                "    for (now = 0; now <= EZRT_SCHEDULE_PERIOD; ++now) {",
                "        ezrt_timer_tick(now);",
                "    }",
                '    printf("ezrt: schedule period %u finished: '
                '%lu dispatches, %lu resumes\\n",',
                "           EZRT_SCHEDULE_PERIOD, ezrt_dispatches,",
                "           ezrt_preemption_resumes);",
                "    return 0;",
                "}",
            ]
        )
    else:
        lines.extend(
            [
                "int main(void)",
                "{",
                "    /* install and start the schedule timer */",
                indent(target.timer_setup),
                "    for (;;) {",
                indent(target.idle, 2),
                "    }",
                "    return 0;",
                "}",
            ]
        )
    lines.append("")
    return "\n".join(lines)
