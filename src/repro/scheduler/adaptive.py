"""Adaptive portfolio seeding and workload-hardness prediction.

**Overview for new contributors.**  The portfolio race
(:mod:`repro.scheduler.parallel`) wins because search times are
heavy-tailed — but *which* slot wins is strongly correlated with the
model's shape: wide-interval nets fall to the dense state-class slot,
preemption-heavy task sets to seeded shuffles, and so on.  This module
closes that loop:

* :func:`net_family` / :func:`spec_family` compute a coarse
  **model-family fingerprint** — a short digest of bucketed structural
  features, deliberately lossy so that similar models (a time-scaled
  variant, a re-seeded task set of the same shape) land in the same
  family;
* :class:`AdaptiveStore` persists per-family statistics: which
  portfolio slots won races (``record_win``), and how many states
  searches of the family visited (``record_job``).  The store orders a
  slot rotation by past wins (``order_slots``) and predicts search
  hardness (``predicted_states``) for the batch engine's hardest-first
  job ordering;
* :meth:`AdaptiveStore.warm_start_from_bench` seeds a fresh store from
  the repository's ``BENCH_parallel.json`` winner statistics, so a
  first race on a familiar model shape already starts with the
  historically winning slot up front.

The statistics are *advisory*: slot order changes which worker finds
the verdict first, never which verdict exists, and the batch ordering
changes completion order, never the JSONL content — both contracts are
pinned by tests.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile

from repro.spec.model import EzRTSpec
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet

#: Bump when the fingerprint features or bucketing change: old
#: families then miss cleanly instead of aliasing into new ones.
FAMILY_VERSION = 1


def _log_bucket(value: float) -> int:
    """Coarse log2 bucket (0 for empty, else ``round(log2(value))``)."""
    if value <= 1:
        return 0
    return int(round(math.log2(value)))


def _decile(fraction: float) -> int:
    """A fraction in [0, 1] bucketed to tenths."""
    if fraction <= 0.0:
        return 0
    if fraction >= 1.0:
        return 10
    return int(fraction * 10)


def _digest(kind: str, features: dict) -> str:
    document = json.dumps(
        {"v": FAMILY_VERSION, "kind": kind, "features": features},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(document.encode("utf-8")).hexdigest()[:12]
    return f"fam{FAMILY_VERSION}:{kind}:{digest}"


def net_family(net: CompiledNet) -> str:
    """Model-family fingerprint of a compiled net.

    Buckets the structural features that predict which portfolio slot
    wins: net size (log2 buckets), and the interval profile of the
    timed transitions — the fractions that are immediate ``[0,0]``,
    punctual (``eft == lft``), *wide* (window of at least 2 time
    units, the state-class engine's home turf) and unbounded.
    """
    n = net.num_transitions
    immediate = punctual = wide = unbounded = 0
    for t in range(n):
        eft, lft = net.eft[t], net.lft[t]
        if lft == INF:
            unbounded += 1
        elif eft == 0 and lft == 0:
            immediate += 1
        elif lft == eft:
            punctual += 1
        if lft == INF or lft - eft >= 2:
            wide += 1
    total = max(1, n)
    features = {
        "transitions": _log_bucket(n),
        "places": _log_bucket(net.num_places),
        "immediate": _decile(immediate / total),
        "punctual": _decile(punctual / total),
        "wide": _decile(wide / total),
        "unbounded": _decile(unbounded / total),
        "miss": _decile(len(net.miss_transitions) / total),
    }
    return _digest("net", features)


def _spec_features(spec: EzRTSpec) -> dict:
    periods = [task.period for task in spec.tasks]
    schedule_period = math.lcm(*periods) if periods else 1
    instances = sum(
        schedule_period // task.period for task in spec.tasks
    )
    n = max(1, len(spec.tasks))
    utilization = sum(
        task.computation / task.period for task in spec.tasks
    )
    preemptive = sum(task.is_preemptive for task in spec.tasks) / n
    slack = sum(
        (task.deadline - task.computation) / task.period
        for task in spec.tasks
    ) / n
    return {
        "tasks": len(spec.tasks),
        "instances": _log_bucket(instances),
        "utilization": _decile(min(utilization, 1.0)),
        "preemptive": _decile(preemptive),
        "slack": _decile(min(slack, 1.0)),
        "relations": _log_bucket(
            len(spec.precedence_pairs())
            + len(spec.exclusion_pairs())
            + len(spec.messages)
        ),
    }


def spec_family(spec: EzRTSpec) -> str:
    """Model-family fingerprint of a specification.

    The batch-side view of the same family scheme as
    :func:`net_family`: computable without composing the net (the
    batch engine orders hundreds of jobs before any of them compiles),
    from the features that predict search hardness — instance count
    over the hyper-period, utilisation, preemption, deadline slack and
    relation density, all bucketed.
    """
    return _digest("spec", _spec_features(spec))


def predict_states(spec: EzRTSpec) -> float:
    """Heuristic search-hardness estimate of a specification.

    Used as the hardest-first ordering key when no recorded statistics
    exist for the spec's family yet.  Monotone in the features that
    actually blow up the DFS: task instances over the hyper-period
    (the backtrack-free path length is linear in them), utilisation
    pressure (close to 1 forces tight interleavings and deep
    refutation subtrees) and preemption (every grant becomes a genuine
    branch).  The absolute value is meaningless; only the induced
    order matters.
    """
    features = _spec_features(spec)
    periods = [task.period for task in spec.tasks]
    schedule_period = math.lcm(*periods) if periods else 1
    instances = sum(
        schedule_period // task.period for task in spec.tasks
    )
    utilization = sum(
        task.computation / task.period for task in spec.tasks
    )
    pressure = 1.0 / max(0.05, 1.05 - min(utilization, 1.0))
    preemptive = 1.0 + features["preemptive"] / 10.0
    return instances * (1.0 + len(spec.tasks) / 4.0) * pressure * preemptive


class AdaptiveStore:
    """Per-family slot-win and hardness statistics, optionally on disk.

    The JSON layout is ``{"version", "families": {family: {"slots":
    {slot: {"wins", "states", "seconds", "runs", "near"}}, "jobs":
    {"runs", "states"}}}}`` (the three timing keys are settled lazily,
    so stores written before the wall-clock refinement load fine).
    With
    a ``path`` the store loads existing statistics at construction and
    :meth:`save` persists atomically (write + rename), so concurrent
    readers never see torn files; without one it is memory-only.
    A corrupt or alien file is treated as empty rather than fatal —
    losing advisory statistics must never fail a search.
    """

    VERSION = 1

    def __init__(self, path: str | None = None):
        self.path = path
        self._families: dict[str, dict] = {}
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("version") == self.VERSION:
                    self._families = payload.get("families", {})
            except (OSError, ValueError):
                self._families = {}

    # ------------------------------------------------------------------
    def _family(self, family: str) -> dict:
        return self._families.setdefault(
            family, {"slots": {}, "jobs": {"runs": 0, "states": 0}}
        )

    def _slot_entry(self, family: str, slot: str) -> dict:
        entry = self._family(family)["slots"].setdefault(
            slot, {"wins": 0, "states": 0}
        )
        # stores written before the wall-clock refinement lack the
        # timing keys; settle them on first touch
        entry.setdefault("seconds", 0.0)
        entry.setdefault("runs", 0)
        entry.setdefault("near", 0)
        return entry

    def record_win(
        self, family: str, slot: str, states_visited: int = 0
    ) -> None:
        """Credit ``slot`` with a race win on ``family``."""
        entry = self._slot_entry(family, slot)
        entry["wins"] += 1
        entry["states"] += int(states_visited)

    def record_slot_time(
        self,
        family: str,
        slot: str,
        seconds: float,
        near: bool = False,
    ) -> None:
        """Record one race's wall-clock for ``slot`` on ``family``.

        ``near`` credits a *near win*: the slot reached a definitive
        verdict on its own but another slot got there first.  Ordering
        by ``(wins, near, mean seconds)`` means a narrowly-losing
        diverse slot keeps a place near the front instead of being
        starved forever by a single historical winner.
        """
        entry = self._slot_entry(family, slot)
        entry["seconds"] += float(seconds)
        entry["runs"] += 1
        if near:
            entry["near"] += 1

    def decay_family(self, family: str, factor: float = 0.95) -> None:
        """Decay the family's win/near credit by ``factor``.

        Called once per race before the new win is recorded, so old
        wins fade geometrically and a slot that stopped winning loses
        its head start within a few dozen races.  Counts become floats;
        consumers only compare, so ``1.0`` reads like ``1``.
        """
        slots = self._families.get(family, {}).get("slots")
        if not slots:
            return
        for entry in slots.values():
            entry["wins"] = entry.get("wins", 0) * factor
            entry["near"] = entry.get("near", 0) * factor

    def record_job(self, family: str, states_visited: int) -> None:
        """Record one search's visited count for hardness prediction."""
        jobs = self._family(family)["jobs"]
        jobs["runs"] += 1
        jobs["states"] += int(states_visited)

    def wins(self, family: str) -> dict[str, int]:
        """``slot -> win count`` for a family (empty when unknown)."""
        slots = self._families.get(family, {}).get("slots", {})
        return {slot: entry["wins"] for slot, entry in slots.items()}

    def order_slots(
        self, family: str, slots: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Reorder a slot rotation by the family's recorded statistics.

        Sort key, most significant first: decayed race wins, then
        *near wins* (definitive verdicts that lost the race — the
        refinement that keeps a narrowly-losing diverse slot from
        being starved), then mean recorded wall-clock (fastest first;
        slots the store knows nothing about tie at zero and keep their
        relative rotation order).  The ordering is a pure permutation —
        no slot is added or dropped, so the race's verdict contract is
        untouched.
        """
        slot_stats = self._families.get(family, {}).get("slots", {})
        if not slot_stats:
            return tuple(slots)

        def sort_key(pair):
            index, slot = pair
            entry = slot_stats.get(slot, {})
            runs = entry.get("runs", 0)
            mean_seconds = (
                entry.get("seconds", 0.0) / runs if runs else 0.0
            )
            return (
                -entry.get("wins", 0),
                -entry.get("near", 0),
                mean_seconds,
                index,
            )

        indexed = list(enumerate(slots))
        indexed.sort(key=sort_key)
        return tuple(slot for _index, slot in indexed)

    def predicted_states(self, family: str, default: float) -> float:
        """Mean recorded visited count of the family, else ``default``."""
        jobs = self._families.get(family, {}).get("jobs")
        if not jobs or not jobs.get("runs"):
            return default
        return jobs["states"] / jobs["runs"]

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist to ``path`` atomically (no-op for memory stores)."""
        if not self.path:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {
            "version": self.VERSION,
            "families": self._families,
        }
        fd, temp_path = tempfile.mkstemp(
            dir=directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self.path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def warm_start_from_bench(
        self, payload: dict, families: dict[str, str]
    ) -> int:
        """Seed the store from a ``BENCH_parallel.json`` payload.

        ``families`` maps the bench's model names to family
        fingerprints (see :func:`bench_model_families`); models the
        mapping does not know are skipped.  Every portfolio curve row
        with a recorded winner credits that slot; returns the number
        of wins recorded.
        """
        recorded = 0
        for entry in payload.get("results", ()):
            if entry.get("mode") != "portfolio":
                continue
            family = families.get(entry.get("model"))
            if family is None:
                continue
            for row in entry.get("curve", ()):
                slot = row.get("winner_slot") or row.get(
                    "winner_policy"
                )
                if not slot:
                    continue
                self.record_win(
                    family, slot, row.get("states_visited", 0)
                )
                recorded += 1
        return recorded


def bench_model_families() -> dict[str, str]:
    """Family fingerprints of the parallel-bench models.

    The mapping :meth:`AdaptiveStore.warm_start_from_bench` needs to
    translate ``BENCH_parallel.json`` model names into families: the
    hard portfolio task set and the wide-interval race net, composed
    and fingerprinted the same way a live race fingerprints its net.
    """
    # deferred imports: keep this module import-light for the workers
    from repro.blocks import compose
    from repro.workloads import (
        hard_portfolio_task_set,
        wide_interval_race_net,
    )

    families: dict[str, str] = {}
    spec = hard_portfolio_task_set()
    families[spec.name] = net_family(compose(spec).compiled())
    net = wide_interval_race_net()
    families[net.name] = net_family(net.compile())
    return families
