"""Pre-runtime scheduler, schedule extraction and runtime baselines."""

from repro.scheduler.baselines import (
    DeadlineMiss,
    RUNTIME_POLICIES,
    RuntimeOutcome,
    exclusion_blocking_pair,
    mok_trap,
    rm_overload_pair,
    simulate_runtime,
)
from repro.scheduler.config import (
    DELAY_MODES,
    ENGINES,
    PARALLEL_MODES,
    PRIORITY_MODES,
    SchedulerConfig,
)
from repro.scheduler.dfs import (
    PreRuntimeScheduler,
    find_schedule,
    require_schedule,
    search,
)
from repro.scheduler.parallel import (
    ParallelScheduler,
    SharedVisitedFilter,
    split_frontier,
    validate_with_reference,
)
from repro.scheduler.policies import (
    POLICIES,
    default_portfolio,
    parse_policy,
)
from repro.scheduler.result import SchedulerResult, SearchStats
from repro.scheduler.schedule import (
    BusSegment,
    DenseScheduleEntry,
    ExecutionSegment,
    ScheduleItem,
    TaskLevelSchedule,
    build_schedule_items,
    dense_schedule_entries,
    extract_schedule,
    format_dense_schedule,
    schedule_from_result,
    validate_schedule,
)

__all__ = [
    "BusSegment",
    "DELAY_MODES",
    "DeadlineMiss",
    "DenseScheduleEntry",
    "ENGINES",
    "ExecutionSegment",
    "PARALLEL_MODES",
    "POLICIES",
    "ParallelScheduler",
    "PRIORITY_MODES",
    "PreRuntimeScheduler",
    "RUNTIME_POLICIES",
    "RuntimeOutcome",
    "ScheduleItem",
    "SchedulerConfig",
    "SchedulerResult",
    "SearchStats",
    "SharedVisitedFilter",
    "TaskLevelSchedule",
    "build_schedule_items",
    "default_portfolio",
    "dense_schedule_entries",
    "exclusion_blocking_pair",
    "extract_schedule",
    "find_schedule",
    "format_dense_schedule",
    "mok_trap",
    "parse_policy",
    "require_schedule",
    "rm_overload_pair",
    "schedule_from_result",
    "search",
    "simulate_runtime",
    "split_frontier",
    "validate_schedule",
    "validate_with_reference",
]
