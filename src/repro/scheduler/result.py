"""Scheduler result container and search statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.config import SchedulerConfig


@dataclass
class SearchStats:
    """Counters describing one depth-first search.

    ``states_visited`` counts distinct states tagged during the search —
    the quantity the paper reports ("searched 3268 states"); the
    ``minimum_states`` of a model is its backtrack-free path length
    (paper: 3130 for the mine pump), so ``states_visited −
    schedule_length`` measures backtracking overhead.

    A parallel search (:mod:`repro.scheduler.parallel`) returns the
    *merged* counters of every worker in the race, so
    ``states_visited`` then measures total work done across the
    portfolio/partition, not the winner's path alone; unlike serial
    counters the merged values are not run-to-run deterministic (they
    depend on when the losers were cancelled).  ``restarts`` counts
    seeded-random restarts performed by portfolio workers.
    """

    states_visited: int = 0
    states_generated: int = 0
    revisits_skipped: int = 0
    deadline_prunes: int = 0
    backtracks: int = 0
    reductions: int = 0
    restarts: int = 0
    elapsed_seconds: float = 0.0

    #: Dict keys that depend on wall-clock time rather than the search
    #: trajectory — deterministic consumers (batch JSONL rows, caches)
    #: filter these out.
    WALL_CLOCK_KEYS = ("elapsed_seconds", "states_per_second")

    @property
    def states_per_second(self) -> float:
        """Search throughput: distinct states tagged per wall second."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.states_visited / self.elapsed_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "states_visited": self.states_visited,
            "states_generated": self.states_generated,
            "revisits_skipped": self.revisits_skipped,
            "deadline_prunes": self.deadline_prunes,
            "backtracks": self.backtracks,
            "reductions": self.reductions,
            "restarts": self.restarts,
            "elapsed_seconds": self.elapsed_seconds,
            "states_per_second": self.states_per_second,
        }

    def profile(self, metrics: dict | None = None) -> str:
        """Multi-line search-statistics report (``ezrt schedule --profile``).

        ``metrics`` is an optional :mod:`repro.obs` snapshot (the
        ``SchedulerResult.metrics`` dict); when it carries data, the
        formatted counters/gauges/histograms block is appended.
        """
        lines = [
            f"states visited   : {self.states_visited}",
            f"states generated : {self.states_generated}",
            f"revisits skipped : {self.revisits_skipped}",
            f"deadline prunes  : {self.deadline_prunes}",
            f"backtracks       : {self.backtracks}",
            f"reductions       : {self.reductions}",
            f"search time      : {self.elapsed_seconds * 1000:.1f} ms",
            f"throughput       : {self.states_per_second:,.0f} states/s",
        ]
        if self.restarts:
            lines.insert(6, f"restarts         : {self.restarts}")
        if metrics and any(metrics.values()):
            from repro.obs.metrics import format_metrics

            lines.append("metrics:")
            for line in format_metrics(metrics).splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)


@dataclass
class SchedulerResult:
    """Outcome of a pre-runtime scheduling attempt.

    Attributes:
        feasible: whether a feasible firing schedule (Def. 3.2) was
            found under the configured search policy.  ``False`` means
            the policy-restricted space was exhausted — with
            ``delay_mode="earliest"`` that is not a proof of
            infeasibility, only that no as-soon-as-possible schedule
            exists.
        exhausted: True when the search ran out of states/time budget
            rather than exhausting the space.
        firing_schedule: the feasible run as ``(transition name, delay,
            absolute time)`` triples.
        stats: search counters.
        config: the configuration used.
        minimum_firings: the model's backtrack-free path length, when
            known (used for the paper's visited/minimum comparison).
        winner_policy: in a portfolio race, the policy whose search
            produced the verdict (e.g. ``"random:1"``); ``None`` for
            serial and work-stealing searches.
        winner_engine: in a portfolio race, the successor engine of
            the winning slot (``"incremental"``, ``"reference"`` or
            ``"stateclass"``); with engine-aware slots this can differ
            from ``config.engine``.  ``None`` outside portfolio races.
        workers: worker processes used (1 for a serial search).
        interval_schedule: dense-time companion of
            ``firing_schedule``, set by the state-class engine only:
            one ``(transition name, earliest, latest)`` entry per
            firing giving the absolute dense window the firing time
            was concretised from (``latest`` may be ``INF``).  ``None``
            for the discrete engines.
        diagnostics: :class:`repro.lint.Diagnostic` findings attached
            by the pre-search lint gate
            (:func:`repro.scheduler.dfs.find_schedule`): for a
            trivially-infeasible spec the error diagnostics *are* the
            verdict (``feasible=False`` with zero states searched);
            warnings (e.g. the kernel token-cap risk) ride along on
            normally-searched results.  Empty for direct
            :func:`~repro.scheduler.dfs.search` calls on compiled
            nets — the gate is spec-level.
        metrics: :mod:`repro.obs` metrics snapshot of the search —
            ``{"counters", "gauges", "histograms"}``.  A serial search
            carries its own registry's snapshot (e.g. the
            ``search.max_depth`` gauge); a parallel search carries the
            queue-drained merge of every worker's snapshot (per-slot
            wall-clock gauges, steal counts, frontier size).  Empty
            for a bare :class:`~repro.scheduler.core.SearchCore` run
            with no registry attached.
    """

    feasible: bool
    firing_schedule: list[tuple[str, int, int]] = field(
        default_factory=list
    )
    stats: SearchStats = field(default_factory=SearchStats)
    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    exhausted: bool = False
    minimum_firings: int | None = None
    winner_policy: str | None = None
    winner_engine: str | None = None
    workers: int = 1
    interval_schedule: list[tuple[str, int, float]] | None = None
    metrics: dict = field(default_factory=dict)
    diagnostics: list = field(default_factory=list)

    @property
    def schedule_length(self) -> int:
        """Number of firings in the found schedule."""
        return len(self.firing_schedule)

    @property
    def makespan(self) -> int:
        """Absolute time of the last firing."""
        return self.firing_schedule[-1][2] if self.firing_schedule else 0

    def summary(self) -> str:
        """Short human-readable report (mirrors the paper's Section 5)."""
        lines = []
        verdict = "feasible" if self.feasible else (
            "budget exhausted" if self.exhausted else "infeasible"
        )
        lines.append(f"schedule        : {verdict}")
        if self.feasible:
            lines.append(f"firings         : {self.schedule_length}")
            lines.append(f"makespan        : {self.makespan}")
        if self.minimum_firings is not None:
            lines.append(f"minimum states  : {self.minimum_firings}")
        lines.append(f"states visited  : {self.stats.states_visited}")
        lines.append(
            f"search time     : {self.stats.elapsed_seconds * 1000:.1f} ms"
        )
        lines.append(
            f"throughput      : "
            f"{self.stats.states_per_second:,.0f} states/s"
        )
        lines.append(f"backtracks      : {self.stats.backtracks}")
        lines.append(f"deadline prunes : {self.stats.deadline_prunes}")
        if self.workers > 1:
            lines.append(f"workers         : {self.workers}")
        if self.winner_policy is not None:
            lines.append(f"winning policy  : {self.winner_policy}")
        if self.winner_engine is not None:
            lines.append(f"winning engine  : {self.winner_engine}")
        for diagnostic in self.diagnostics:
            lines.append(f"lint            : {diagnostic.format()}")
        return "\n".join(lines)
