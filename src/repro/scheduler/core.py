"""Generic depth-first search core: one loop, one adapter per engine.

**Overview for new contributors.**  Before this module existed the
repository implemented the paper's pre-runtime search three times —
once per successor engine, each copy re-stating the tagging, deadline
pruning, budget/tick polling and policy reordering.  The duplication
is gone: :class:`SearchCore` is the *single* DFS loop, parameterized
over the :class:`EngineAdapter` protocol, and the four engines plug
in through thin adapters:

* :class:`IncrementalAdapter` — the tuple-based hot path over
  :class:`~repro.tpn.fastengine.IncrementalEngine` (O(degree)
  successors, queue-extracted candidate windows);
* :class:`KernelAdapter` — the packed-buffer kernel over
  :class:`~repro.tpn.kernel.KernelEngine` (flat ``array('H')``
  marking/clock state buffers, incremental 64-bit Zobrist state
  keys, and an optional compiled C core running the
  successor/firable/min-DUB inner loop on the same buffers — the
  fastest engine when the native core is built);
* :class:`ReferenceAdapter` — the measured baseline over the checked
  :class:`~repro.tpn.state.StateEngine` (dense O(|T|·|P|) rescans,
  dense candidate scans over all of T);
* :class:`StateClassAdapter` — the dense-time engine over the packed
  :class:`~repro.tpn.dbm.DbmEngine` (Berthomieu–Diaz classes on flat
  native-width buffers, optionally driven by a compiled C core;
  feasible paths are concretised back to integer time and replayed
  through the reference engine).

The split of responsibilities is strict: the adapter knows *states*
(how to compute a root, successors, candidates, and how to turn a
finished path into a schedule); the core knows *search* (the stack,
tagging, pruning, budgets, cooperative cancellation, the shared
visited filter and the policy reordering).  Orchestration layers —
the portfolio racer, the work-stealing partitioner, the batch engine —
treat every engine uniformly through this protocol, the way Real-Time
Maude and e-Motions keep one formal analysis core under several
modeling front-ends.

Behaviour-preserving parity is the refactor's contract: for every
engine the core produces the same verdicts, the same visited-state
counts and the same deterministic :class:`SearchStats` counters as the
three pre-refactor loops (pinned by ``tests/test_refactor_parity.py``
on the paper models and a seeded task-set grid, under both clock-reset
policies).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import SchedulingError
from repro.obs.events import NULL_RECORDER
from repro.scheduler.result import SchedulerResult, SearchStats
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.interval import INF
from repro.tpn.kernel import KernelEngine, KernelState
from repro.tpn.net import CompiledNet
from repro.tpn.dbm import DbmEngine, PackedClass
from repro.tpn.state import DISABLED, State, StateEngine
from repro.tpn.stateclass import realize_firing_sequence

# check the wall clock every 1024 expansions; the budget is measured
# on time.monotonic() — never the adjustable system clock — matching
# the batch engine's timing
_TIME_CHECK_MASK = 0x3FF


class _Frame:
    """One DFS stack entry (slotted: the stack is the hot data path)."""

    __slots__ = ("state", "now", "candidates", "index", "action")

    def __init__(
        self,
        state: object,
        now: int,
        candidates: list[tuple[int, int]],
        action: tuple[int, int, int] | None = None,
    ):
        self.state = state
        self.now = now
        self.candidates = candidates
        self.index = 0
        self.action = action


class _DenseView:
    """Clock-vector facade handed to reorder policies by the dense DFS.

    Policies only read ``state.clocks``; a state class exposes a
    surrogate vector (see :meth:`StateClassAdapter.clocks_view`).
    """

    __slots__ = ("clocks",)

    def __init__(self, clocks: tuple[int, ...]):
        self.clocks = clocks


@runtime_checkable
class EngineAdapter(Protocol):
    """What :class:`SearchCore` needs from a successor engine.

    An adapter wraps one engine instance (plus the hoisted config and
    net vectors its candidate enumeration reads) and presents the
    uniform surface the shared DFS loop drives:

    * ``name`` — the engine's registry name (``"incremental"``,
      ``"kernel"``, ``"reference"``, ``"stateclass"``);
    * ``engine`` — the wrapped engine instance (orchestration layers
      reach through for engine-specific plumbing such as
      :meth:`~repro.tpn.fastengine.IncrementalEngine.revive`);
    * ``touches_miss`` / ``touches_final`` — the compiled
      marking-predicate skip masks (identical semantics for every
      adapter: a predicate can only change when the fired transition
      touches the relevant places, so skipping is exact, not a
      heuristic);
    * ``deadline_missed(marking)`` / ``reached_final(marking)`` — the
      compiled marking predicates themselves.

    States are opaque to the core; the only requirements are hashable
    identity (for the visited set) and a ``.marking`` attribute (for
    the two predicates).
    """

    name: str
    engine: object
    touches_miss: tuple[bool, ...]
    touches_final: tuple[bool, ...]

    def root(self) -> tuple[object, int]:
        """``(root state, absolute time at the root)``."""

    def successor(self, state, transition: int, delay: int):
        """The child state, or ``None`` for an inconsistent dead end
        (only the dense engine can produce one; the core counts it as
        a deadline prune rather than crashing a long search)."""

    def candidates_of(self, state, stats: SearchStats) -> list:
        """Ordered ``(transition, delay)`` pairs of a state, after the
        priority filter, the partial-order reduction (counted on
        ``stats.reductions``) and the delay-policy expansion."""

    def state_key(self, state) -> int:
        """64-bit compaction key for the cross-process visited filter
        (hash-compacted claims; full-equality tagging stays local)."""

    def clocks_view(self, state):
        """The object reorder policies read ``.clocks`` from."""

    def deadline_missed(self, marking) -> bool: ...

    def reached_final(self, marking) -> bool: ...

    def finalize_path(
        self, actions: list[tuple[int, int, int]], stats: SearchStats
    ) -> tuple[list[tuple[str, int, int]], list | None]:
        """Turn the accepting path into the result payload.

        ``actions`` are ``(transition, delay, absolute time)`` triples
        in firing order.  Returns ``(firing_schedule,
        interval_schedule)``; the dense adapter concretises the class
        path to integer time and replays it through the checked
        reference engine here, so a feasible dense verdict leaves the
        core already validated.
        """


# ----------------------------------------------------------------------
# Shared candidate machinery
# ----------------------------------------------------------------------
def forced_immediate(
    net: CompiledNet,
    cands: list[tuple[int, int]],
    clocks: tuple[int, ...],
) -> tuple[int, int] | None:
    """Partial-order reduction pick shared by both discrete adapters.

    A candidate may soundly be fired without branching when it is
    *structurally conflict-free* (every input place is consumed by this
    transition only, so its firing can never steal a token from any
    other transition — now or in the future) and it fires with zero
    delay, so no clock advances and every alternative stays fireable
    afterwards.  Three conditions make firing ``t`` alone sound:

    * ``t`` is *forced now*: its dynamic upper bound is zero, so
      strong semantics fires it at this very instant in every
      continuation — and the zero ceiling means every other candidate
      is also zero-delay, so no time passes either way;
    * ``t`` is structurally conflict-free, so no interleaving can
      disable it and it can disable nothing;
    * ``t``'s postset avoids the preset of every other currently
      enabled transition: producing into a place another enabled
      transition consumes from does not commute at the *clock* level.
      The boundary case is an instance completing exactly when the
      next one arrives — the arrival (producing the deadline-timer
      token) and the finish (consuming the old one) must be
      interleaved both ways, because only finish-then-arrival lets the
      deadline clock reset.  The check walks the precomputed (small)
      :attr:`CompiledNet.post_conflicts` set and reads enabledness
      straight off the clock vector.

    Earlier revisions also reduced merely-eager candidates under the
    earliest-delay policy; that loses real schedules (eagerly releasing
    a task forecloses interleavings where another task's arrival
    advances time first), so only forced firings reduce.
    """
    conflict_free = net.conflict_free
    post_conflicts = net.post_conflicts
    lft = net.lft
    for t, lower in cands:
        if lower != 0 or not conflict_free[t]:
            continue
        if lft[t] == INF or lft[t] - clocks[t] > 0:
            continue  # not forced at this instant
        for other in post_conflicts[t]:
            if clocks[other] >= 0:
                break  # an enabled transition consumes from t•
        else:
            return (t, 0)
    return None


def order_and_expand(
    cands: list[tuple[int, int]],
    ceiling: float,
    priorities: tuple[int, ...],
    delay_mode: str,
) -> list[tuple[int, int]]:
    """Delay-policy expansion + the ``(delay, priority, index)`` sort.

    ``"earliest"`` keeps each candidate at its lower bound; the
    enumeration modes add the window ceiling (``"extremes"``) or every
    integer delay up to it (``"full"``).  An unbounded ceiling always
    collapses to earliest-only (there is nothing finite to enumerate).
    """
    if delay_mode == "earliest" or ceiling == INF:
        if len(cands) == 1:
            return cands
        expanded = [(lower, priorities[t], t) for t, lower in cands]
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]
    expanded = []
    for t, lower in cands:
        if delay_mode == "extremes":
            upper = int(ceiling)
            delays = (lower,) if upper == lower else (lower, upper)
        else:  # full
            delays = tuple(range(lower, int(ceiling) + 1))
        for q in delays:
            expanded.append((q, priorities[t], t))
    expanded.sort()
    return [(t, q) for q, _p, t in expanded]


class _AdapterBase:
    """Config/net knobs every adapter hoists once per search."""

    #: Span recorder for adapter-side phases (the state-class adapter's
    #: concretisation and reference replay).  The class default is the
    #: shared no-op recorder; the scheduler shell swaps in a live one
    #: when ``config.trace_jsonl`` is set.
    obs = NULL_RECORDER

    def __init__(self, net: CompiledNet, config):
        self.net = net
        self.config = config
        self._strict = config.priority_mode == "strict"
        self._delay_mode = config.delay_mode
        self._earliest = config.delay_mode == "earliest"
        self._partial_order = config.partial_order
        self._eft = net.eft
        self._lft = net.lft
        self._priority = net.priority
        self._miss = net.miss_transitions
        self.touches_miss = net.touches_miss
        self.touches_final = net.touches_final
        self.deadline_missed = net.has_missed_deadline
        self.reached_final = net.is_final

    def state_key(self, state) -> int:
        return hash(state)

    def clocks_view(self, state):
        return state

    def finalize_path(self, actions, stats):
        names = self.net.transition_names
        return [(names[t], q, at) for t, q, at in actions], None


class IncrementalAdapter(_AdapterBase):
    """The production hot path over :class:`IncrementalEngine`."""

    name = "incremental"

    def __init__(self, net: CompiledNet, config):
        super().__init__(net, config)
        self.engine = IncrementalEngine(
            net, reset_policy=config.reset_policy
        )
        # bound method, not a wrapper: the core hoists it into a local
        self.successor = self.engine.successor
        self._root: FastState | None = None
        self._root_now = 0

    def set_root(self, root: FastState | None, now: int) -> None:
        """Inject a subtree root (work-stealing); ``None`` resets."""
        self._root = root
        self._root_now = now

    def root(self) -> tuple[FastState, int]:
        if self._root is not None:
            return self._root, self._root_now
        return self.engine.initial(), 0

    def state_key(self, state: FastState) -> int:
        return state._hash

    def candidates_of(
        self, state: FastState, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Ordered ``(transition, delay)`` pairs — queue extraction.

        Reads the ceiling in O(1) from the state's derived views and
        extracts the firing window as a prefix of the lower-bound
        queue, so the per-expansion cost tracks the number of
        *fireable* transitions rather than the size of the net.
        """
        miss = self._miss
        shift = state.shift
        imms = state.imms

        # O(1) ceiling: enabled immediates pin it to 0, otherwise the
        # upper-bound queue head holds min DUB (INF when empty); the
        # window is then a prefix of the lower-bound queue — no pass
        # over the enabled set at all
        if imms:
            ceiling = 0
            bound = shift
            cands = [(t, 0) for t in imms if t not in miss]
        else:
            tub = state.tub
            ceiling = tub[0][0] - shift if tub else INF
            bound = shift + ceiling
            cands = []
        for v, tk in state.tlb:
            if v > bound:
                break
            if tk not in miss:
                lower = v - shift
                cands.append((tk, lower if lower > 0 else 0))
        if not cands:
            return cands
        cands.sort()

        # specialised common path: earliest-delay, no strict filter —
        # one candidate needs no ordering at all, several sort by
        # (delay, priority, index)
        if self._earliest and not self._strict:
            if len(cands) == 1:
                return cands
            if self._partial_order:
                reduced = forced_immediate(
                    self.net, cands, state.clocks
                )
                if reduced is not None:
                    stats.reductions += 1
                    return [reduced]
            priority = self._priority
            expanded = [
                (lower, priority[t], t) for t, lower in cands
            ]
            expanded.sort()
            return [(t, q) for q, _p, t in expanded]
        return self._finalize(cands, ceiling, state.clocks, stats)

    def _finalize(
        self,
        cands: list[tuple[int, int]],
        ceiling: float,
        clocks: tuple[int, ...],
        stats: SearchStats,
    ) -> list[tuple[int, int]]:
        """Priority filter, partial-order reduction, delay expansion."""
        priorities = self._priority
        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]
        if self._partial_order and len(cands) > 1:
            reduced = forced_immediate(self.net, cands, clocks)
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]
        return order_and_expand(
            cands, ceiling, priorities, self._delay_mode
        )


class KernelAdapter(_AdapterBase):
    """The packed-buffer kernel over :class:`KernelEngine`.

    States are two flat buffers plus an incremental 64-bit Zobrist
    key; in earliest-delay searches the entire candidate pipeline
    (ceiling, window, strict filter, partial-order reduction,
    ordering) runs inside one engine call — a single foreign call
    when the compiled core is live.  The delay-enumeration modes get
    the same one-call treatment through :meth:`KernelEngine.expand`
    (window, filters, reduction, delay expansion and ordering in C);
    without a compiled core they fall back to the raw window plus the
    shared expansion helpers, using the engine's packed partial-order
    variant (the tuple-based :func:`forced_immediate` reads
    enabledness as ``clocks[t] >= 0`` and cannot run on the
    ``0xFFFF``-sentinel clock buffer).
    """

    name = "kernel"

    def __init__(self, net: CompiledNet, config):
        super().__init__(net, config)
        self.engine = KernelEngine(
            net, reset_policy=config.reset_policy
        )
        # bound method, not a wrapper: the core hoists it into a local
        self.successor = self.engine.successor

    def root(self) -> tuple[KernelState, int]:
        self.obs.instant(
            "kernel-core",
            cat="kernel",
            native=self.engine.native,
        )
        return self.engine.initial(), 0

    def state_key(self, state: KernelState) -> int:
        return state._hash

    def candidates_of(
        self, state: KernelState, stats: SearchStats
    ) -> list[tuple[int, int]]:
        if self._earliest:
            cands, reduced = self.engine.candidates(
                state, self._strict, self._partial_order
            )
            if reduced:
                stats.reductions += 1
            return cands
        native = self.engine.expand(
            state, self._strict, self._partial_order, self._delay_mode
        )
        if native is not None:
            cands, reduced = native
            if reduced:
                stats.reductions += 1
            return cands
        ceiling, cands = self.engine.window(state)
        if not cands:
            return cands
        priorities = self._priority
        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]
        if self._partial_order and len(cands) > 1:
            reduced = self.engine.forced_immediate(cands, state.clk)
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]
        return order_and_expand(
            cands, ceiling, priorities, self._delay_mode
        )

    def clocks_view(self, state: KernelState):
        return _DenseView(state.clocks_tuple())


class ReferenceAdapter(_AdapterBase):
    """The measured baseline over the checked :class:`StateEngine`.

    Candidate enumeration is deliberately kept as two dense passes
    over the whole transition set per expansion (the pre-incremental
    scheduler's cost model), and successors pay the engine's dense
    O(|T|·|P|) firing rule — this is the honest baseline the hot-path
    benchmark measures the incremental adapter against, and the fixed
    point the equivalence suites compare to.  Unlike the deleted
    pre-PR-2 verbatim loop it *does* share the core's loop mechanics
    (slotted frames, marking-predicate skip masks) — a deliberate
    baseline redefinition: the engines differ only in their cost
    model, so the speedup the bench reports is the successor/candidate
    asymptotics, not incidental loop-body differences.  (The skip
    masks are exact, so counters and verdicts are unchanged — only
    wall-clock moved, and the bench's floors held.)
    """

    name = "reference"

    def __init__(self, net: CompiledNet, config):
        super().__init__(net, config)
        self.engine = StateEngine(
            net, reset_policy=config.reset_policy
        )
        self.successor = self.engine._fire_unchecked

    def root(self) -> tuple[State, int]:
        return self.engine.initial_state(), 0

    def candidates_of(
        self, state: State, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Reference candidate enumeration: dense scans over all of T."""
        eft = self._eft
        lft = self._lft
        clocks = state.clocks

        ceiling = INF
        for t, clock in enumerate(clocks):
            if clock == DISABLED or lft[t] == INF:
                continue
            bound = lft[t] - clock
            if bound < ceiling:
                ceiling = bound

        miss = self._miss
        cands: list[tuple[int, int]] = []
        for t, clock in enumerate(clocks):
            if clock == DISABLED or t in miss:
                continue
            lower = eft[t] - clock
            if lower < 0:
                lower = 0
            if lower <= ceiling:
                cands.append((t, lower))
        if not cands:
            return []

        priorities = self._priority
        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]
        if self._partial_order and len(cands) > 1:
            reduced = forced_immediate(self.net, cands, clocks)
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]
        return order_and_expand(
            cands, ceiling, priorities, self._delay_mode
        )


class StateClassAdapter(_AdapterBase):
    """The dense-time engine over the packed :class:`DbmEngine`.

    A state is a Berthomieu–Diaz class, so one search edge covers
    *every* dense firing delay of a transition; candidate delays are
    the dense lower bounds (used for ordering only).  Classes are
    packed flat buffers with precomputed fused Zobrist keys
    (:class:`repro.tpn.dbm.PackedClass`); the whole firing rule and
    the whole candidate pipeline — firability column scans, miss and
    strict-priority filters, the dense forced-immediate reduction and
    the ``(lower, priority, index)`` ordering — are one engine call
    each, a single foreign call when the compiled DBM core is live.
    The tuple-based :class:`StateClassEngine` remains the checked
    Floyd–Warshall specification the packed engine is differentially
    tested against.

    A feasible class path is concretised back to integer firing times
    and replayed through the checked reference engine in
    :meth:`finalize_path` — the same contract the parallel scheduler
    applies to worker wins — so the result is verdict-equivalent to
    the discrete engines by construction.
    """

    name = "stateclass"

    def __init__(self, net: CompiledNet, config):
        super().__init__(net, config)
        self.engine = DbmEngine(
            net, reset_policy=config.reset_policy
        )

    def root(self) -> tuple[PackedClass, int]:
        self.obs.instant(
            "dbm-core",
            cat="stateclass",
            native=self.engine.native,
        )
        return self.engine.initial_class(), 0

    def state_key(self, cls: PackedClass) -> int:
        return cls._hash

    def successor(
        self, cls: PackedClass, transition: int, _delay: int
    ) -> PackedClass | None:
        # candidates are pre-checked firable; an inconsistent
        # successor would mean a DBM bug, but the core treats the
        # ``None`` as a dead end rather than crashing a long search
        return self.engine.try_fire(cls, transition)

    def candidates_of(
        self, cls: PackedClass, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Ordered ``(transition, dense lower bound)`` pairs of a class.

        Firability and windows read straight off the canonical DBM;
        deadline-miss transitions are never scheduled, but their LFT
        rows still cap every window, so a forced miss empties the
        candidate list and the branch dead-ends exactly like the
        discrete engines.  Ordering matches the discrete candidate
        rule: ``(lower bound, priority, index)``.  The whole pipeline
        (including the dense forced-immediate partial-order pick)
        runs inside :meth:`repro.tpn.dbm.DbmEngine.candidates`.
        """
        cands, reduced = self.engine.candidates(
            cls, self._strict, self._partial_order
        )
        if reduced:
            stats.reductions += 1
        return cands

    def clocks_view(self, cls: PackedClass) -> _DenseView:
        """Surrogate clock vector of a class for the reorder policies.

        Reorder policies read ``state.clocks`` (min-laxity keys off
        the deadline timer's remaining time).  A class has no single
        clock valuation, but ``EFT(t) − lower(θ_t)`` is the time ``t``
        has provably been enabled, which is exactly the clock the
        policies want; disabled transitions keep the :data:`DISABLED`
        marker.
        """
        clocks = [DISABLED] * self.net.num_transitions
        eft = self._eft
        dbm = cls.dbm
        for var, t in enumerate(cls.enabled, start=1):
            elapsed = eft[t] + dbm[var]  # eft − lower bound
            clocks[t] = elapsed if elapsed > 0 else 0
        return _DenseView(tuple(clocks))

    def finalize_path(self, actions, stats):
        sequence = [t for t, _q, _at in actions]
        with self.obs.span("concretisation", cat="stateclass"):
            realized = realize_firing_sequence(
                self.net, sequence, self.config.reset_policy
            )
        # same reference-replay gate the parallel scheduler applies to
        # worker wins (deferred import: parallel imports the scheduler
        # stack for its workers)
        from repro.scheduler.parallel import validate_with_reference

        with self.obs.span("reference-replay", cat="validate"):
            validate_with_reference(
                self.net, self.config, realized.schedule
            )
        return realized.schedule, realized.windows


#: Adapter registry, keyed by the engine names of
#: :data:`repro.scheduler.config.ENGINES`.
ADAPTERS = {
    "incremental": IncrementalAdapter,
    "kernel": KernelAdapter,
    "reference": ReferenceAdapter,
    "stateclass": StateClassAdapter,
}


def make_adapter(engine: str, net: CompiledNet, config) -> EngineAdapter:
    """Build the adapter for ``engine`` over ``net``."""
    try:
        factory = ADAPTERS[engine]
    except KeyError:
        raise SchedulingError(
            f"unknown engine {engine!r}; expected one of "
            f"{tuple(ADAPTERS)}"
        ) from None
    return factory(net, config)


# ----------------------------------------------------------------------
# The shared loop
# ----------------------------------------------------------------------
class SearchCore:
    """The depth-first search, engine-agnostic.

    Search structure (matching the paper's description):

    * depth-first, with *tagging* of visited states so no state is
      expanded twice (revisits backtrack immediately);
    * *undesirable states are removed*: candidates that fire a
      deadline-miss transition are never taken, and successors whose
      marking contains a token in a deadline-missed place are pruned —
      when the model forces a miss, the branch dead-ends and the
      search backtracks to the previous scheduling decision;
    * *partial-order state-space minimisation* (the paper cites
      Lilius), applied inside the adapters' candidate enumeration;
    * candidates are ordered by ``(delay, priority, index)`` unless a
      reorder policy overrides it; the stop criterion is reaching
      ``M_F``.

    Two injection points serve the parallel scheduler's workers (both
    no-ops for a plain serial search): ``tick`` is a cooperative
    callback polled every 1024 expansions with the live counters plus
    the current stack depth (returning True aborts the search —
    first-win cancellation, shared state budgets), and
    ``shared_filter`` is a cross-process visited filter with an
    ``add(key) -> bool`` protocol (False when the key was already
    present); states another worker claimed are skipped like local
    revisits.

    Three more injection points serve :mod:`repro.obs` (all ``None``
    by default, costing the loop nothing): ``obs`` is a span recorder —
    when enabled, the hoisted successor/candidate locals are wrapped in
    nanosecond-accumulating closures and emitted as aggregate child
    spans of the ``search`` span at exit; ``metrics`` is a registry
    whose snapshot lands on ``SchedulerResult.metrics``; ``heartbeat``
    is a progress callback sharing ``tick``'s 1024-expansion poll.
    The registry alone never turns polling on — the ``search.max_depth``
    gauge is sampled at the poll cadence, so it is recorded only when
    a deadline, tick or heartbeat already pays for the poll.
    """

    def __init__(
        self,
        adapter: EngineAdapter,
        config,
        reorder=None,
        tick=None,
        shared_filter=None,
        obs=None,
        metrics=None,
        heartbeat=None,
        resplit=None,
    ):
        self.adapter = adapter
        self.config = config
        self.reorder = reorder
        self.tick = tick
        self.shared_filter = shared_filter
        self.obs = obs
        self.metrics = metrics
        self.heartbeat = heartbeat
        #: work-stealing re-split hook (None for serial searches): an
        #: object with ``wants_export(n_visited) -> bool`` and
        #: ``export([(state, now, actions), ...])`` plus a
        #: ``max_export`` bound.  Polled at the 1024-expansion cadence;
        #: when it asks, a prefix of the *shallowest* open frame's
        #: remaining candidates is handed back to the shared job queue
        #: instead of being searched locally (see ``_export_prefix``).
        self.resplit = resplit

    def run(self) -> SchedulerResult:
        result = self._run()
        if self.metrics is not None:
            result.metrics = self.metrics.snapshot()
        return result

    def _emit_spans(self, start_ns: int, span_acc, stats) -> None:
        """Emit the ``search`` span plus its aggregate phase children.

        The per-call successor/candidate costs were accumulated as
        plain nanosecond counters inside the loop (never formatting an
        event on the hot path); here they become two child spans laid
        out back-to-back from the search start — a valid Chrome
        nesting that reads as "of this search, X µs went to successor
        generation and Y µs to candidate enumeration".
        """
        obs = self.obs
        obs.record_span(
            "search",
            start_ns,
            obs.now_ns(),
            cat="search",
            args={
                "engine": self.adapter.name,
                "states_visited": stats.states_visited,
                "states_generated": stats.states_generated,
            },
        )
        cursor = start_ns
        for name, (spent_ns, calls) in (
            ("successor-generation", span_acc["succ"]),
            ("candidate-enumeration", span_acc["cand"]),
        ):
            if not calls:
                continue
            obs.record_span(
                name,
                cursor,
                cursor + spent_ns,
                cat="search",
                args={"aggregate": True, "calls": calls},
            )
            cursor += spent_ns

    def _export_prefix(
        self, stack, visited, shared_add, state_key
    ) -> tuple[int, int, int]:
        """Hand a prefix of the DFS frontier back to the job queue.

        Cold path of the work-stealing re-split: when one subtree
        dwarfs the rest and other workers are starving, the *shallowest*
        stack frame with unexpanded candidates donates up to
        ``resplit.max_export`` of them as fresh jobs.  Donated children
        go through exactly the successor/prune/revisit pipeline of the
        hot loop — including the shared-filter claim, so at most one
        worker ever searches a donated subtree (modulo the filter's
        usual lock-free race, which only ever duplicates work) — and
        the frame's index advances past them, so this worker never
        expands them again.  A donated child that already reaches the
        final marking is *not* exported: the export stops and the
        frame index stays put, so this worker's own DFS reaches the
        win through the normal code path.

        Returns ``(generated, prunes, revisits)`` deltas so the
        caller's counters stay truthful.
        """
        adapter = self.adapter
        resplit = self.resplit
        successor = adapter.successor
        touches_miss = adapter.touches_miss
        touches_final = adapter.touches_final
        has_missed = adapter.deadline_missed
        is_final = adapter.reached_final
        generated = prunes = revisits = 0
        exported: list[tuple] = []
        for depth, frame in enumerate(stack):
            candidates = frame.candidates
            if frame.index >= len(candidates):
                continue
            actions = [
                f.action
                for f in stack[1 : depth + 1]
                if f.action is not None
            ]
            now = frame.now
            while (
                frame.index < len(candidates)
                and len(exported) < resplit.max_export
            ):
                transition, delay = candidates[frame.index]
                generated += 1
                child = successor(frame.state, transition, delay)
                if child is None or (
                    touches_miss[transition]
                    and has_missed(child.marking)
                ):
                    frame.index += 1
                    prunes += 1
                    continue
                if touches_final[transition] and is_final(
                    child.marking
                ):
                    # one step from a win: keep it local (index not
                    # advanced), the hot loop takes it from here
                    generated -= 1
                    break
                if child in visited or (
                    shared_add is not None
                    and not shared_add(state_key(child))
                ):
                    frame.index += 1
                    revisits += 1
                    continue
                frame.index += 1
                exported.append(
                    (
                        child,
                        now + delay,
                        actions + [(transition, delay, now + delay)],
                    )
                )
            break  # only the shallowest open frame donates
        if exported:
            resplit.export(exported)
        return generated, prunes, revisits

    def _run(self) -> SchedulerResult:
        adapter = self.adapter
        config = self.config
        stats = SearchStats()
        started = time.monotonic()
        obs = self.obs
        record = obs is not None and obs.enabled
        span_acc = None
        trace_t0 = 0
        if record:
            trace_t0 = obs.now_ns()
            span_acc = {"succ": [0, 0], "cand": [0, 0]}
        deadline = (
            None
            if config.max_seconds is None
            else started + config.max_seconds
        )

        s0, now0 = adapter.root()
        if adapter.deadline_missed(s0.marking):
            raise SchedulingError(
                "initial marking already contains a missed deadline"
            )
        visited = {s0}
        stats.states_visited = 1

        if adapter.reached_final(s0.marking):
            stats.elapsed_seconds = time.monotonic() - started
            schedule, windows = adapter.finalize_path([], stats)
            if record:
                self._emit_spans(trace_t0, span_acc, stats)
            return SchedulerResult(
                feasible=True,
                firing_schedule=schedule,
                stats=stats,
                config=config,
                interval_schedule=windows,
            )

        candidates_of = adapter.candidates_of
        reorder = self.reorder
        if reorder is not None:
            base_candidates = candidates_of
            clocks_view = adapter.clocks_view

            def candidates_of(state, stats):
                return reorder(
                    base_candidates(state, stats), clocks_view(state)
                )

        if record:
            # tracing wraps the hoisted callables in ns-accumulating
            # closures; when disabled these lines never run and the
            # loop is byte-for-byte the untraced one
            clock_ns = time.monotonic_ns
            cand_cell = span_acc["cand"]
            traced_candidates = candidates_of

            def candidates_of(state, stats):
                t0 = clock_ns()
                cands = traced_candidates(state, stats)
                cand_cell[0] += clock_ns() - t0
                cand_cell[1] += 1
                return cands

        stack: list[_Frame] = [
            _Frame(s0, now0, candidates_of(s0, stats))
        ]
        exhausted = False

        # Hot-loop locals: the marking predicates re-run only when the
        # fired transition can change their verdict (parents on the
        # stack already passed both checks), and the per-expansion
        # counters stay in locals, folded back into `stats` on exit.
        successor = adapter.successor
        if record:
            succ_cell = span_acc["succ"]
            traced_successor = successor

            def successor(state, transition, delay):
                t0 = clock_ns()
                child = traced_successor(state, transition, delay)
                succ_cell[0] += clock_ns() - t0
                succ_cell[1] += 1
                return child

        touches_miss = adapter.touches_miss
        touches_final = adapter.touches_final
        has_missed = adapter.deadline_missed
        is_final = adapter.reached_final
        state_key = adapter.state_key
        max_states = config.max_states
        monotonic = time.monotonic
        visited_add = visited.add
        tick = self.tick
        shared = self.shared_filter
        shared_add = None if shared is None else shared.add
        heartbeat = self.heartbeat
        metrics = self.metrics
        max_depth = 1
        # the metrics registry alone never turns polling on: the bare
        # hot loop and the registry-only default path run the same
        # per-expansion bytecode (the <2% gate in bench_obs_overhead)
        resplit = self.resplit
        polled = (
            deadline is not None
            or tick is not None
            or heartbeat is not None
            or resplit is not None
        )
        n_visited = 1
        n_generated = 0
        n_revisits = 0
        n_prunes = 0
        n_backtracks = 0

        try:
            while stack:
                frame = stack[-1]
                index = frame.index
                candidates = frame.candidates
                if index >= len(candidates):
                    stack.pop()
                    if stack:
                        n_backtracks += 1
                    continue
                frame.index = index + 1
                transition, delay = candidates[index]

                n_generated += 1
                if polled and not n_generated & _TIME_CHECK_MASK:
                    depth = len(stack)
                    if depth > max_depth:
                        max_depth = depth
                    if heartbeat is not None:
                        heartbeat(n_visited, n_generated, depth)
                    if deadline is not None and monotonic() > deadline:
                        exhausted = True
                        break
                    if tick is not None and tick(
                        n_visited,
                        n_generated,
                        n_revisits,
                        n_prunes,
                        n_backtracks,
                        depth,
                    ):
                        exhausted = True
                        break
                    if resplit is not None and resplit.wants_export(
                        n_visited
                    ):
                        d_gen, d_prune, d_revisit = (
                            self._export_prefix(
                                stack, visited, shared_add, state_key
                            )
                        )
                        n_generated += d_gen
                        n_prunes += d_prune
                        n_revisits += d_revisit

                child = successor(frame.state, transition, delay)
                if child is None:
                    n_prunes += 1
                    continue
                if touches_miss[transition] and has_missed(
                    child.marking
                ):
                    n_prunes += 1
                    continue
                if child in visited:
                    n_revisits += 1
                    continue
                if shared_add is not None and not shared_add(
                    state_key(child)
                ):
                    # another worker already claimed (and will fully
                    # explore) this state
                    n_revisits += 1
                    continue
                visited_add(child)
                n_visited += 1
                now = frame.now
                action = (transition, delay, now + delay)

                if touches_final[transition] and is_final(
                    child.marking
                ):
                    actions = [
                        f.action
                        for f in stack[1:]
                        if f.action is not None
                    ]
                    actions.append(action)
                    stats.elapsed_seconds = monotonic() - started
                    schedule, windows = adapter.finalize_path(
                        actions, stats
                    )
                    return SchedulerResult(
                        feasible=True,
                        firing_schedule=schedule,
                        stats=stats,
                        config=config,
                        interval_schedule=windows,
                    )

                if n_visited >= max_states:
                    exhausted = True
                    break
                stack.append(
                    _Frame(
                        child,
                        now + delay,
                        candidates_of(child, stats),
                        action,
                    )
                )
        finally:
            stats.states_visited = n_visited
            stats.states_generated = n_generated
            stats.revisits_skipped = n_revisits
            stats.deadline_prunes = n_prunes
            stats.backtracks = n_backtracks
            if metrics is not None and polled:
                # depth is sampled at the poll cadence; without a
                # poller nothing was sampled, so record no gauge
                metrics.max_gauge("search.max_depth", max_depth)
            if record:
                self._emit_spans(trace_t0, span_acc, stats)

        stats.elapsed_seconds = time.monotonic() - started
        return SchedulerResult(
            feasible=False,
            stats=stats,
            config=config,
            exhausted=exhausted,
        )
