"""Pre-runtime schedule synthesis by depth-first search (Section 4.4.1).

**Overview for new contributors.**  This module is the heart of the
synthesis pipeline: it takes the compiled time Petri net produced by
the block composer and searches its timed state space for a firing
sequence that reaches the desired final marking — that sequence *is*
the pre-runtime schedule the code generator turns into a C table.
Everything else in ``scheduler/`` supports this search:
``config.py`` holds the knobs, ``result.py`` the outcome/statistics
containers, ``policies.py`` the alternative candidate orderings, and
``parallel.py`` races or partitions this search across worker
processes.  Start reading at :meth:`PreRuntimeScheduler._search_fast`
(the production loop) with :meth:`_candidates_fast` (how one state's
successor choices are enumerated); ``_search_reference`` is the same
algorithm kept deliberately naive as the measured baseline.

The algorithm explores the timed labeled transition system derived from
the composed TPN, looking for a firing sequence that reaches the desired
final marking ``M_F`` — by Definition 3.2 such a sequence *is* a
feasible pre-runtime schedule, and finding one proves the task set
schedulable under the searched policy.

Search structure (matching the paper's description):

* depth-first, with *tagging* of visited states so no state is expanded
  twice (revisits backtrack immediately);
* *undesirable states are removed*: candidates that fire a
  deadline-miss transition are never taken, and successors whose
  marking contains a token in a deadline-missed place are pruned —
  when the model forces a miss, the branch dead-ends and the search
  backtracks to the previous scheduling decision;
* *partial-order state-space minimisation* (the paper cites Lilius):
  when an immediate (zero-delay) candidate is structurally independent
  of every other candidate — sharing no input place, so firing it can
  neither disable nor be disabled by the alternatives — it is fired
  alone instead of branching over interleavings.  Arrival cascades and
  finish bookkeeping linearise this way; only genuine resource
  conflicts (processor grants, exclusion locks) branch;
* candidates are ordered by ``(delay, priority, index)``, so the search
  is work-conserving first and urgency-driven second; the stop
  criterion is reaching ``M_F``.

Three successor engines drive the expansion:

* ``engine="incremental"`` (default) — the
  :class:`~repro.tpn.fastengine.IncrementalEngine` hot path: O(degree)
  successor computation over the compile-time ``affected`` adjacency,
  compact :class:`~repro.tpn.fastengine.FastState` states with cached
  hashes and enabled sets;
* ``engine="reference"`` — the checked-semantics
  :class:`~repro.tpn.state.StateEngine` with dense O(|T|·|P|) rescans,
  kept as the baseline the benchmarks and the CI smoke job
  cross-validate against (identical schedules, identical state counts);
* ``engine="stateclass"`` — the dense-time
  :class:`~repro.tpn.stateclass.StateClassEngine`: states are
  Berthomieu–Diaz state classes (marking + difference-bound matrix),
  so every dense firing delay of a transition is one search edge
  instead of one edge per integer delay.  On models with wide firing
  intervals this collapses whole families of integer clock valuations
  into single classes.  A feasible class path is *concretised* back to
  integer firing times (:func:`repro.tpn.stateclass.
  realize_firing_sequence`) and replayed through the checked reference
  engine before being returned — the same contract the parallel
  scheduler applies to worker wins — so the result is
  verdict-equivalent to the discrete engines by construction.
"""

from __future__ import annotations

import time

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.blocks.composer import ComposedModel
from repro.scheduler.config import ENGINES, SchedulerConfig
from repro.scheduler.policies import make_reorder
from repro.scheduler.result import SchedulerResult, SearchStats
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet
from repro.tpn.state import DISABLED, State, StateEngine
from repro.tpn.stateclass import (
    StateClass,
    StateClassEngine,
    realize_firing_sequence,
)

# check the wall clock every 1024 expansions; the budget is measured
# on time.monotonic() — never the adjustable system clock — matching
# the batch engine's timing
_TIME_CHECK_MASK = 0x3FF


class _Frame:
    """One DFS stack entry (slotted: the stack is the hot data path)."""

    __slots__ = ("state", "now", "candidates", "index", "action")

    def __init__(
        self,
        state: FastState | State,
        now: int,
        candidates: list[tuple[int, int]],
        action: tuple[int, int, int] | None = None,
    ):
        self.state = state
        self.now = now
        self.candidates = candidates
        self.index = 0
        self.action = action


class _DenseView:
    """Clock-vector facade handed to reorder policies by the dense DFS.

    Policies only read ``state.clocks``; a state class exposes a
    surrogate vector (see ``PreRuntimeScheduler._dense_clocks``).
    """

    __slots__ = ("clocks",)

    def __init__(self, clocks: tuple[int, ...]):
        self.clocks = clocks


class PreRuntimeScheduler:
    """Depth-first schedule synthesiser over a compiled net."""

    def __init__(
        self,
        net: CompiledNet,
        config: SchedulerConfig | None = None,
        engine: str | None = None,
    ):
        self.net = net
        self.config = config or SchedulerConfig()
        if engine is None:
            engine = self.config.engine
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if (
            engine == "stateclass"
            and self.config.delay_mode != "earliest"
        ):
            raise SchedulingError(
                "delay_mode has no effect on the dense-time state-class "
                "engine (the class graph covers every dense delay); "
                "keep the default 'earliest'"
            )
        self.engine_mode = engine
        self.engine = StateEngine(
            net, reset_policy=self.config.reset_policy
        )
        self.fast = IncrementalEngine(
            net, reset_policy=self.config.reset_policy
        )
        self.dense = (
            StateClassEngine(
                net, reset_policy=self.config.reset_policy
            )
            if engine == "stateclass"
            else None
        )
        # hoisted config knobs and net arrays (read once per candidate
        # set instead of per attribute hop in the hot loop)
        self._strict = self.config.priority_mode == "strict"
        self._delay_mode = self.config.delay_mode
        self._earliest = self.config.delay_mode == "earliest"
        self._partial_order = self.config.partial_order
        self._eft = net.eft
        self._lft = net.lft
        self._priority = net.priority
        self._miss = net.miss_transitions
        self._reorder = make_reorder(
            self.config.policy, net, self.config.policy_seed
        )
        # Injection points for the parallel scheduler's workers (all
        # no-ops for a plain serial search):
        #: cooperative callback, polled every 1024 expansions with the
        #: live counters; returning True aborts the search (used for
        #: first-win cancellation and shared state budgets).
        self.tick = None
        #: cross-process visited filter with an ``add(hash) -> bool``
        #: protocol (False when the hash was already present); states
        #: another worker claimed are skipped like local revisits.
        self.shared_filter = None
        self._root: FastState | None = None
        self._root_now = 0
        if not net.final_constraints:
            raise SchedulingError(
                "net has no final marking; set one (the join block does "
                "this automatically) before scheduling"
            )

    # ------------------------------------------------------------------
    def search(self) -> SchedulerResult:
        """Run the DFS; returns a result whether or not it succeeds."""
        if self.engine_mode == "incremental":
            return self._search_fast()
        if self.engine_mode == "stateclass":
            return self._search_stateclass()
        return self._search_reference()

    def search_from(self, root: FastState, now: int) -> SchedulerResult:
        """Run the DFS from a subtree root instead of the initial state.

        Used by the work-stealing mode: ``root`` is a frontier state
        exported by :func:`repro.scheduler.parallel.split_frontier` and
        ``now`` the absolute time its prefix ends at, so the returned
        ``firing_schedule`` carries absolute times that concatenate
        directly onto the prefix.  Incremental engine only (the root is
        a :class:`FastState`).
        """
        if self.engine_mode != "incremental":
            raise SchedulingError(
                "subtree search requires the incremental engine"
            )
        self._root = root
        self._root_now = now
        try:
            return self._search_fast()
        finally:
            self._root = None
            self._root_now = 0

    def _search_fast(self) -> SchedulerResult:
        """DFS on the incremental engine (the production hot path)."""
        config = self.config
        net = self.net
        stats = SearchStats()
        started = time.monotonic()
        deadline = (
            None
            if config.max_seconds is None
            else started + config.max_seconds
        )

        root = self._root
        s0 = self.fast.initial() if root is None else root
        now0 = self._root_now
        successor = self.fast.successor
        candidates_of = self._candidates_fast
        reorder = self._reorder
        if reorder is not None:
            base_candidates = candidates_of

            def candidates_of(state, stats):
                return reorder(base_candidates(state, stats), state)

        if net.has_missed_deadline(s0.marking):
            raise SchedulingError(
                "initial marking already contains a missed deadline"
            )
        visited = {s0}
        stats.states_visited = 1

        if net.is_final(s0.marking):
            stats.elapsed_seconds = time.monotonic() - started
            return SchedulerResult(
                feasible=True, stats=stats, config=config
            )

        stack: list[_Frame] = [
            _Frame(s0, now0, candidates_of(s0, stats))
        ]
        exhausted = False

        # Hot-loop locals: the marking predicates re-run only when the
        # fired transition can change their verdict (parents on the
        # stack already passed both checks), and the per-expansion
        # counters stay in locals, folded back into `stats` on exit.
        touches_miss = net.touches_miss
        touches_final = net.touches_final
        has_missed = net.has_missed_deadline
        is_final = net.is_final
        max_states = config.max_states
        monotonic = time.monotonic
        visited_add = visited.add
        tick = self.tick
        shared = self.shared_filter
        shared_add = None if shared is None else shared.add
        polled = deadline is not None or tick is not None
        n_visited = 1
        n_generated = 0
        n_revisits = 0
        n_prunes = 0
        n_backtracks = 0

        try:
            while stack:
                frame = stack[-1]
                index = frame.index
                candidates = frame.candidates
                if index >= len(candidates):
                    stack.pop()
                    if stack:
                        n_backtracks += 1
                    continue
                frame.index = index + 1
                transition, delay = candidates[index]

                n_generated += 1
                if polled and not n_generated & _TIME_CHECK_MASK:
                    if deadline is not None and monotonic() > deadline:
                        exhausted = True
                        break
                    if tick is not None and tick(
                        n_visited,
                        n_generated,
                        n_revisits,
                        n_prunes,
                        n_backtracks,
                    ):
                        exhausted = True
                        break

                child = successor(frame.state, transition, delay)
                if touches_miss[transition] and has_missed(
                    child.marking
                ):
                    n_prunes += 1
                    continue
                if child in visited:
                    n_revisits += 1
                    continue
                if shared_add is not None and not shared_add(
                    child._hash
                ):
                    # another worker already claimed (and will fully
                    # explore) this state
                    n_revisits += 1
                    continue
                visited_add(child)
                n_visited += 1
                now = frame.now
                action = (transition, delay, now + delay)

                if touches_final[transition] and is_final(
                    child.marking
                ):
                    names = net.transition_names
                    schedule = [
                        (
                            names[f.action[0]],
                            f.action[1],
                            f.action[2],
                        )
                        for f in stack[1:]
                        if f.action is not None
                    ]
                    schedule.append(
                        (names[transition], delay, now + delay)
                    )
                    stats.elapsed_seconds = monotonic() - started
                    return SchedulerResult(
                        feasible=True,
                        firing_schedule=schedule,
                        stats=stats,
                        config=config,
                    )

                if n_visited >= max_states:
                    exhausted = True
                    break
                stack.append(
                    _Frame(
                        child,
                        now + delay,
                        candidates_of(child, stats),
                        action,
                    )
                )
        finally:
            stats.states_visited = n_visited
            stats.states_generated = n_generated
            stats.revisits_skipped = n_revisits
            stats.deadline_prunes = n_prunes
            stats.backtracks = n_backtracks

        stats.elapsed_seconds = time.monotonic() - started
        return SchedulerResult(
            feasible=False,
            stats=stats,
            config=config,
            exhausted=exhausted,
        )

    def _search_reference(self) -> SchedulerResult:
        """DFS on the dense reference engine.

        Byte-faithful to the pre-incremental scheduler (list frames,
        per-child marking predicates, dense candidate scans): this is
        the baseline the hot-path benchmark and the CI smoke job
        measure and cross-validate against, so it intentionally does
        NOT inherit the fast path's loop optimisations.
        """
        config = self.config
        engine = self.engine
        net = self.net
        stats = SearchStats()
        started = time.monotonic()
        deadline = (
            None
            if config.max_seconds is None
            else started + config.max_seconds
        )

        s0 = engine.initial_state()
        if net.has_missed_deadline(s0.marking):
            raise SchedulingError(
                "initial marking already contains a missed deadline"
            )
        visited: set[State] = {s0}
        stats.states_visited = 1

        if net.is_final(s0.marking):
            stats.elapsed_seconds = time.monotonic() - started
            return SchedulerResult(
                feasible=True, stats=stats, config=config
            )

        candidates_of = self._candidates_ref
        reorder = self._reorder
        if reorder is not None:
            base_candidates = candidates_of

            def candidates_of(state, stats):
                return reorder(base_candidates(state, stats), state)

        tick = self.tick
        polled = deadline is not None or tick is not None

        # Frame: [state, abs_time, candidates, next_index, action]
        stack: list[list] = [
            [s0, 0, candidates_of(s0, stats), 0, None]
        ]
        exhausted = False

        while stack:
            frame = stack[-1]
            state, now, candidates, index = (
                frame[0],
                frame[1],
                frame[2],
                frame[3],
            )
            if index >= len(candidates):
                stack.pop()
                if stack:
                    stats.backtracks += 1
                continue
            frame[3] = index + 1
            transition, delay = candidates[index]

            stats.states_generated += 1
            if polled and not stats.states_generated & _TIME_CHECK_MASK:
                if deadline is not None and time.monotonic() > deadline:
                    exhausted = True
                    break
                if tick is not None and tick(
                    stats.states_visited,
                    stats.states_generated,
                    stats.revisits_skipped,
                    stats.deadline_prunes,
                    stats.backtracks,
                ):
                    exhausted = True
                    break

            child = engine._fire_unchecked(state, transition, delay)
            if net.has_missed_deadline(child.marking):
                stats.deadline_prunes += 1
                continue
            if child in visited:
                stats.revisits_skipped += 1
                continue
            visited.add(child)
            stats.states_visited += 1
            action = (transition, delay, now + delay)

            if net.is_final(child.marking):
                stats.elapsed_seconds = time.monotonic() - started
                schedule = [
                    (
                        net.transition_names[f[4][0]],
                        f[4][1],
                        f[4][2],
                    )
                    for f in stack[1:]
                    if f[4] is not None
                ]
                schedule.append(
                    (
                        net.transition_names[transition],
                        delay,
                        now + delay,
                    )
                )
                return SchedulerResult(
                    feasible=True,
                    firing_schedule=schedule,
                    stats=stats,
                    config=config,
                )

            if stats.states_visited >= config.max_states:
                exhausted = True
                break
            stack.append(
                [
                    child,
                    now + delay,
                    candidates_of(child, stats),
                    0,
                    action,
                ]
            )

        stats.elapsed_seconds = time.monotonic() - started
        return SchedulerResult(
            feasible=False,
            stats=stats,
            config=config,
            exhausted=exhausted,
        )

    def _search_stateclass(self) -> SchedulerResult:
        """DFS on the dense-time state-class engine.

        The loop mirrors :meth:`_search_reference` — same frames, same
        tagging, same deadline pruning, same budget/tick polling, same
        policy reordering — but a state is a Berthomieu–Diaz class, so
        one edge covers *every* dense firing delay of a transition.
        Frames therefore record only the fired transition: when a
        final-marking class is reached, the firing sequence is
        concretised to earliest integer firing times
        (:func:`~repro.tpn.stateclass.realize_firing_sequence`) and
        replayed through the checked reference engine before the
        result is returned.
        """
        config = self.config
        dense = self.dense
        net = self.net
        stats = SearchStats()
        started = time.monotonic()
        deadline = (
            None
            if config.max_seconds is None
            else started + config.max_seconds
        )

        s0 = dense.initial_class()
        if net.has_missed_deadline(s0.marking):
            raise SchedulingError(
                "initial marking already contains a missed deadline"
            )
        visited: set[StateClass] = {s0}
        stats.states_visited = 1

        if net.is_final(s0.marking):
            stats.elapsed_seconds = time.monotonic() - started
            return SchedulerResult(
                feasible=True,
                stats=stats,
                config=config,
                interval_schedule=[],
            )

        candidates_of = self._candidates_stateclass
        reorder = self._reorder
        if reorder is not None:
            base_candidates = candidates_of
            clocks_of = self._dense_clocks

            def candidates_of(cls, stats):
                return reorder(
                    base_candidates(cls, stats), _DenseView(clocks_of(cls))
                )

        tick = self.tick
        polled = deadline is not None or tick is not None
        touches_miss = net.touches_miss
        touches_final = net.touches_final

        # Frame: [class, candidates, next_index, fired_transition]
        stack: list[list] = [[s0, candidates_of(s0, stats), 0, None]]
        exhausted = False

        while stack:
            frame = stack[-1]
            cls, candidates, index = frame[0], frame[1], frame[2]
            if index >= len(candidates):
                stack.pop()
                if stack:
                    stats.backtracks += 1
                continue
            frame[2] = index + 1
            transition, _lower = candidates[index]

            stats.states_generated += 1
            if polled and not stats.states_generated & _TIME_CHECK_MASK:
                if deadline is not None and time.monotonic() > deadline:
                    exhausted = True
                    break
                if tick is not None and tick(
                    stats.states_visited,
                    stats.states_generated,
                    stats.revisits_skipped,
                    stats.deadline_prunes,
                    stats.backtracks,
                ):
                    exhausted = True
                    break

            child = dense._fire(cls, transition)
            if child is None:
                # candidates are pre-checked firable; an inconsistent
                # successor would mean a DBM bug, but treat it as a
                # dead end rather than crashing a long search
                stats.deadline_prunes += 1
                continue
            if touches_miss[transition] and net.has_missed_deadline(
                child.marking
            ):
                stats.deadline_prunes += 1
                continue
            if child in visited:
                stats.revisits_skipped += 1
                continue
            visited.add(child)
            stats.states_visited += 1

            if touches_final[transition] and net.is_final(child.marking):
                sequence = [f[3] for f in stack[1:]]
                sequence.append(transition)
                realized = realize_firing_sequence(
                    net, sequence, config.reset_policy
                )
                # same reference-replay gate the parallel scheduler
                # applies to worker wins (deferred import: parallel
                # imports this module for its workers)
                from repro.scheduler.parallel import (
                    validate_with_reference,
                )

                validate_with_reference(
                    net, config, realized.schedule
                )
                stats.elapsed_seconds = time.monotonic() - started
                return SchedulerResult(
                    feasible=True,
                    firing_schedule=realized.schedule,
                    stats=stats,
                    config=config,
                    interval_schedule=realized.windows,
                )

            if stats.states_visited >= config.max_states:
                exhausted = True
                break
            stack.append(
                [child, candidates_of(child, stats), 0, transition]
            )

        stats.elapsed_seconds = time.monotonic() - started
        return SchedulerResult(
            feasible=False,
            stats=stats,
            config=config,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    def _candidates_stateclass(
        self, cls: StateClass, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Ordered ``(transition, dense lower bound)`` pairs of a class.

        Firability and windows read straight off the canonical DBM
        (see :meth:`~repro.tpn.stateclass.StateClassEngine.firable`);
        deadline-miss transitions are never scheduled, but their LFT
        rows still cap every window, so a forced miss empties the
        candidate list and the branch dead-ends exactly like the
        discrete engines.  Ordering matches the discrete candidate
        rule: ``(lower bound, priority, index)``.
        """
        miss = self._miss
        dbm = cls.dbm
        size = len(cls.enabled) + 1
        cands: list[tuple[int, int]] = []
        for var, t in enumerate(cls.enabled, start=1):
            if t in miss:
                continue
            for u in range(1, size):
                if dbm[u][var] < 0:
                    break
            else:
                cands.append((t, int(-dbm[0][var])))
        if not cands:
            return cands

        priorities = self._priority
        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]

        if self._partial_order and len(cands) > 1:
            reduced = self._forced_immediate_dense(cls, cands)
            if reduced is not None:
                stats.reductions += 1
                return [reduced]

        if len(cands) == 1:
            return cands
        expanded = [(lower, priorities[t], t) for t, lower in cands]
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]

    def _forced_immediate_dense(
        self, cls: StateClass, cands: list[tuple[int, int]]
    ) -> tuple[int, int] | None:
        """Partial-order reduction pick on a state class.

        The dense analogue of :meth:`_independent_immediate`: a
        candidate whose *own* firing bounds are exactly ``[0, 0]``
        must fire at this very instant in every continuation (strong
        semantics, and being conflict-free nothing can disable it
        first), so if its postset also feeds no other enabled
        transition, firing it alone is sound — the same
        three-condition argument as the discrete reduction, with the
        class's own upper bound taking the place of the zero dynamic
        upper bound.  The bound must be the candidate's own
        ``max θ_t``, not the strong-semantics window ceiling: a window
        zeroed by *another* transition's LFT does not force ``t``,
        which may legally fire later once that other transition goes
        first.
        """
        net = self.net
        conflict_free = net.conflict_free
        post_conflicts = net.post_conflicts
        enabled = set(cls.enabled)
        dbm = cls.dbm
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            var = cls.enabled.index(t) + 1
            if dbm[var][0] != 0:
                continue  # not forced at this instant
            for other in post_conflicts[t]:
                if other in enabled:
                    break  # an enabled transition consumes from t•
            else:
                return (t, 0)
        return None

    def _dense_clocks(self, cls: StateClass) -> tuple[int, ...]:
        """Surrogate clock vector of a class for the reorder policies.

        Reorder policies read ``state.clocks`` (min-laxity keys off the
        deadline timer's remaining time).  A class has no single clock
        valuation, but ``EFT(t) − lower(θ_t)`` is the time ``t`` has
        provably been enabled, which is exactly the clock the policies
        want; disabled transitions keep the :data:`DISABLED` marker.
        """
        clocks = [DISABLED] * self.net.num_transitions
        eft = self._eft
        row0 = cls.dbm[0]
        for var, t in enumerate(cls.enabled, start=1):
            elapsed = eft[t] + int(row0[var])  # eft − lower bound
            clocks[t] = elapsed if elapsed > 0 else 0
        return tuple(clocks)

    # ------------------------------------------------------------------
    def _candidates_fast(
        self, state: FastState, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Ordered ``(transition, delay)`` pairs — queue extraction.

        Reads the ceiling in O(1) from the state's derived views and
        extracts the firing window as a prefix of the lower-bound
        queue, so the per-expansion cost tracks the number of
        *fireable* transitions rather than the size of the net.
        """
        miss = self._miss
        shift = state.shift
        imms = state.imms

        # O(1) ceiling: enabled immediates pin it to 0, otherwise the
        # upper-bound queue head holds min DUB (INF when empty); the
        # window is then a prefix of the lower-bound queue — no pass
        # over the enabled set at all
        if imms:
            ceiling = 0
            bound = shift
            cands = [(t, 0) for t in imms if t not in miss]
        else:
            tub = state.tub
            ceiling = tub[0][0] - shift if tub else INF
            bound = shift + ceiling
            cands = []
        for v, tk in state.tlb:
            if v > bound:
                break
            if tk not in miss:
                lower = v - shift
                cands.append((tk, lower if lower > 0 else 0))
        if not cands:
            return cands
        cands.sort()

        # specialised common path: earliest-delay, no strict filter —
        # one candidate needs no ordering at all, several sort by
        # (delay, priority, index)
        if self._earliest and not self._strict:
            if len(cands) == 1:
                return cands
            if self._partial_order:
                reduced = self._independent_immediate_fast(
                    cands, state.clocks, state.enabled
                )
                if reduced is not None:
                    stats.reductions += 1
                    return [reduced]
            priority = self._priority
            expanded = [
                (lower, priority[t], t) for t, lower in cands
            ]
            expanded.sort()
            return [(t, q) for q, _p, t in expanded]
        return self._finalize(
            cands, ceiling, state.clocks, state.enabled, stats
        )

    def _candidates_ref(
        self, state: State, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Reference candidate enumeration: dense scans over all of T.

        Kept equivalent to the pre-incremental scheduler — two full
        passes over the transition set per expansion — so the benchmark
        baseline is honest and the equivalence suite has a fixed point
        to compare against.
        """
        net = self.net
        config = self.config
        eft = net.eft
        lft = net.lft
        clocks = state.clocks

        ceiling = INF
        for t, clock in enumerate(clocks):
            if clock == DISABLED or lft[t] == INF:
                continue
            bound = lft[t] - clock
            if bound < ceiling:
                ceiling = bound

        miss = net.miss_transitions
        cands: list[tuple[int, int]] = []
        for t, clock in enumerate(clocks):
            if clock == DISABLED or t in miss:
                continue
            lower = eft[t] - clock
            if lower < 0:
                lower = 0
            if lower <= ceiling:
                cands.append((t, lower))
        if not cands:
            return []

        priorities = net.priority
        if config.priority_mode == "strict":
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]

        if config.partial_order and len(cands) > 1:
            enabled = [
                t for t, clock in enumerate(clocks) if clock != DISABLED
            ]
            reduced = self._independent_immediate(cands, clocks, enabled)
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]

        expanded: list[tuple[int, int, int]] = []
        for t, lower in cands:
            if config.delay_mode == "earliest" or ceiling == INF:
                delays = (lower,)
            elif config.delay_mode == "extremes":
                upper = int(ceiling)
                delays = (lower,) if upper == lower else (lower, upper)
            else:  # full
                delays = tuple(range(lower, int(ceiling) + 1))
            for q in delays:
                expanded.append((q, priorities[t], t))
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]

    def _finalize(
        self,
        cands: list[tuple[int, int]],
        ceiling: float,
        clocks: tuple[int, ...],
        enabled,
        stats: SearchStats,
    ) -> list[tuple[int, int]]:
        """Priority filter, partial-order reduction, delay expansion."""
        if not cands:
            return []
        priorities = self.net.priority

        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]

        if self._partial_order and len(cands) > 1:
            reduced = self._independent_immediate_fast(
                cands, clocks, enabled
            )
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]

        delay_mode = self._delay_mode
        if delay_mode == "earliest" or ceiling == INF:
            if len(cands) == 1:
                return cands
            expanded = [
                (lower, priorities[t], t) for t, lower in cands
            ]
            expanded.sort()
            return [(t, q) for q, _p, t in expanded]

        expanded = []
        for t, lower in cands:
            if delay_mode == "extremes":
                upper = int(ceiling)
                delays = (lower,) if upper == lower else (lower, upper)
            else:  # full
                delays = tuple(range(lower, int(ceiling) + 1))
            for q in delays:
                expanded.append((q, priorities[t], t))
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]

    def _independent_immediate_fast(
        self,
        cands: list[tuple[int, int]],
        clocks: tuple[int, ...],
        enabled,
    ) -> tuple[int, int] | None:
        """Partial-order reduction pick, static-set formulation.

        Same decision as :meth:`_independent_immediate` (see there for
        the soundness argument), but the clock-commutation condition
        "``t``'s postset feeds no other enabled transition" walks the
        precomputed (small) :attr:`CompiledNet.post_conflicts` set and
        reads enabledness straight off the clock vector instead of
        looping over the enabled transitions.
        """
        net = self.net
        conflict_free = net.conflict_free
        post_conflicts = net.post_conflicts
        lft = self._lft
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            if lft[t] == INF or lft[t] - clocks[t] > 0:
                continue  # not forced at this instant
            for other in post_conflicts[t]:
                if clocks[other] >= 0:
                    break  # an enabled transition consumes from t•
            else:
                return (t, 0)
        return None

    def _independent_immediate(
        self,
        cands: list[tuple[int, int]],
        clocks: tuple[int, ...],
        enabled,
    ) -> tuple[int, int] | None:
        """Pick a candidate that may soundly be fired without branching.

        A candidate qualifies when it is *structurally conflict-free*
        (every input place is consumed by this transition only, so its
        firing can never steal a token from any other transition — now
        or in the future) and it fires with zero delay, so no clock
        advances and every alternative stays fireable afterwards.

        Three conditions make firing ``t`` alone sound:

        * ``t`` is *forced now*: its dynamic upper bound is zero, so
          strong semantics fires it at this very instant in every
          continuation — and the zero ceiling means every other
          candidate is also zero-delay, so no time passes either way;
        * ``t`` is structurally conflict-free, so no interleaving can
          disable it and it can disable nothing;
        * ``t``'s postset avoids the preset of every other currently
          enabled transition: producing into a place another enabled
          transition consumes from does not commute at the *clock*
          level.  The boundary case is an instance completing exactly
          when the next one arrives — the arrival (producing the
          deadline-timer token) and the finish (consuming the old one)
          must be interleaved both ways, because only
          finish-then-arrival lets the deadline clock reset.

        Earlier revisions also reduced merely-eager candidates under
        the earliest-delay policy; that loses real schedules (eagerly
        releasing a task forecloses interleavings where another task's
        arrival advances time first), so only forced firings reduce.
        """
        net = self.net
        conflict_free = net.conflict_free
        presets = net.pre_places
        postsets = net.post_places
        lft = net.lft
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            if lft[t] == INF or lft[t] - clocks[t] > 0:
                continue  # not forced at this instant
            post = postsets[t]
            clean = True
            for other in enabled:
                if other != t and post & presets[other]:
                    clean = False
                    break
            if clean:
                return (t, 0)
        return None


def search(
    net: CompiledNet,
    config: SchedulerConfig | None = None,
    engine: str | None = None,
) -> SchedulerResult:
    """Synthesise a schedule for a compiled net.

    Dispatches on ``config.parallel``: ``0``/``1`` run the serial DFS
    in-process, ``>= 2`` hand the net to the
    :class:`~repro.scheduler.parallel.ParallelScheduler` (portfolio
    racing or work-stealing subtree search across worker processes).
    ``engine=None`` uses ``config.engine``; an explicit argument
    overrides it for this call.
    """
    config = config or SchedulerConfig()
    if config.parallel >= 2:
        # deferred import: parallel imports this module for its workers
        from repro.scheduler.parallel import ParallelScheduler

        return ParallelScheduler(net, config, engine=engine).search()
    return PreRuntimeScheduler(net, config, engine=engine).search()


def find_schedule(
    model: ComposedModel,
    config: SchedulerConfig | None = None,
    engine: str | None = None,
) -> SchedulerResult:
    """Synthesise a schedule for a composed model.

    Convenience wrapper that compiles the net (cached on the model, so
    downstream stages reuse it) and attaches the model's theoretical
    minimum firing count to the result for the paper's
    visited-vs-minimum comparison.
    """
    result = search(model.compiled(), config, engine=engine)
    result.minimum_firings = model.minimum_firings()
    return result


def require_schedule(
    model: ComposedModel, config: SchedulerConfig | None = None
) -> SchedulerResult:
    """Like :func:`find_schedule` but raises when no schedule is found."""
    result = find_schedule(model, config)
    if not result.feasible:
        raise InfeasibleScheduleError(
            f"no feasible pre-runtime schedule found for "
            f"{model.spec.name!r} (visited {result.stats.states_visited} "
            f"states{'; budget exhausted' if result.exhausted else ''})"
        )
    return result
