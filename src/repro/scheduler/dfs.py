"""Pre-runtime schedule synthesis by depth-first search (Section 4.4.1).

The algorithm explores the timed labeled transition system derived from
the composed TPN, looking for a firing sequence that reaches the desired
final marking ``M_F`` — by Definition 3.2 such a sequence *is* a
feasible pre-runtime schedule, and finding one proves the task set
schedulable under the searched policy.

Search structure (matching the paper's description):

* depth-first, with *tagging* of visited states so no state is expanded
  twice (revisits backtrack immediately);
* *undesirable states are removed*: candidates that fire a
  deadline-miss transition are never taken, and successors whose
  marking contains a token in a deadline-missed place are pruned —
  when the model forces a miss, the branch dead-ends and the search
  backtracks to the previous scheduling decision;
* *partial-order state-space minimisation* (the paper cites Lilius):
  when an immediate (zero-delay) candidate is structurally independent
  of every other candidate — sharing no input place, so firing it can
  neither disable nor be disabled by the alternatives — it is fired
  alone instead of branching over interleavings.  Arrival cascades and
  finish bookkeeping linearise this way; only genuine resource
  conflicts (processor grants, exclusion locks) branch;
* candidates are ordered by ``(delay, priority, index)``, so the search
  is work-conserving first and urgency-driven second; the stop
  criterion is reaching ``M_F``.
"""

from __future__ import annotations

import time

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.blocks.composer import ComposedModel
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.result import SchedulerResult, SearchStats
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet, ROLE_DEADLINE_MISS
from repro.tpn.state import DISABLED, State, StateEngine

# check the wall clock every 1024 expansions; the budget is measured
# on time.monotonic() — never the adjustable system clock — matching
# the batch engine's timing
_TIME_CHECK_MASK = 0x3FF


class PreRuntimeScheduler:
    """Depth-first schedule synthesiser over a compiled net."""

    def __init__(
        self, net: CompiledNet, config: SchedulerConfig | None = None
    ):
        self.net = net
        self.config = config or SchedulerConfig()
        self.engine = StateEngine(
            net, reset_policy=self.config.reset_policy
        )
        self._miss_transitions = frozenset(
            t
            for t, role in enumerate(net.roles)
            if role == ROLE_DEADLINE_MISS
        )
        self._preset_places = tuple(
            frozenset(p for p, _w in row) for row in net.pre
        )
        consumers: dict[int, int] = {}
        for row in net.pre:
            for place, _w in row:
                consumers[place] = consumers.get(place, 0) + 1
        # Transitions that cannot conflict with anything, now or in the
        # future: every input place is consumed by this transition only.
        self._conflict_free = tuple(
            all(consumers[p] == 1 for p in places) and bool(places)
            for places in self._preset_places
        )
        self._postset_places = tuple(
            frozenset(p for p, _w in row) for row in net.post
        )
        if not any(v is not None for v in net.final_marking):
            raise SchedulingError(
                "net has no final marking; set one (the join block does "
                "this automatically) before scheduling"
            )

    # ------------------------------------------------------------------
    def search(self) -> SchedulerResult:
        """Run the DFS; returns a result whether or not it succeeds."""
        config = self.config
        engine = self.engine
        net = self.net
        stats = SearchStats()
        started = time.monotonic()
        deadline = (
            None
            if config.max_seconds is None
            else started + config.max_seconds
        )

        s0 = engine.initial_state()
        if net.has_missed_deadline(s0.marking):
            raise SchedulingError(
                "initial marking already contains a missed deadline"
            )
        visited: set[State] = {s0}
        stats.states_visited = 1

        if net.is_final(s0.marking):
            stats.elapsed_seconds = time.monotonic() - started
            return SchedulerResult(
                feasible=True, stats=stats, config=config
            )

        # Frame: [state, abs_time, candidates, next_index, action]
        stack: list[list] = [
            [s0, 0, self._candidates(s0, stats), 0, None]
        ]
        exhausted = False

        while stack:
            frame = stack[-1]
            state, now, candidates, index = (
                frame[0],
                frame[1],
                frame[2],
                frame[3],
            )
            if index >= len(candidates):
                stack.pop()
                if stack:
                    stats.backtracks += 1
                continue
            frame[3] = index + 1
            transition, delay = candidates[index]

            stats.states_generated += 1
            if (
                deadline is not None
                and not stats.states_generated & _TIME_CHECK_MASK
                and time.monotonic() > deadline
            ):
                exhausted = True
                break

            child = engine._fire_unchecked(state, transition, delay)
            if net.has_missed_deadline(child.marking):
                stats.deadline_prunes += 1
                continue
            if child in visited:
                stats.revisits_skipped += 1
                continue
            visited.add(child)
            stats.states_visited += 1
            action = (transition, delay, now + delay)

            if net.is_final(child.marking):
                stats.elapsed_seconds = time.monotonic() - started
                schedule = [
                    (
                        net.transition_names[f[4][0]],
                        f[4][1],
                        f[4][2],
                    )
                    for f in stack[1:]
                    if f[4] is not None
                ]
                schedule.append(
                    (
                        net.transition_names[transition],
                        delay,
                        now + delay,
                    )
                )
                return SchedulerResult(
                    feasible=True,
                    firing_schedule=schedule,
                    stats=stats,
                    config=config,
                )

            if stats.states_visited >= config.max_states:
                exhausted = True
                break
            stack.append(
                [
                    child,
                    now + delay,
                    self._candidates(child, stats),
                    0,
                    action,
                ]
            )

        stats.elapsed_seconds = time.monotonic() - started
        return SchedulerResult(
            feasible=False,
            stats=stats,
            config=config,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    def _candidates(
        self, state: State, stats: SearchStats
    ) -> list[tuple[int, int]]:
        """Ordered ``(transition, delay)`` pairs to try from ``state``."""
        net = self.net
        config = self.config
        eft = net.eft
        lft = net.lft
        clocks = state.clocks

        # min DUB over enabled transitions (strong-semantics ceiling)
        ceiling = INF
        for t, clock in enumerate(clocks):
            if clock == DISABLED or lft[t] == INF:
                continue
            bound = lft[t] - clock
            if bound < ceiling:
                ceiling = bound

        miss = self._miss_transitions
        cands: list[tuple[int, int]] = []
        for t, clock in enumerate(clocks):
            if clock == DISABLED or t in miss:
                continue
            lower = eft[t] - clock
            if lower < 0:
                lower = 0
            if lower <= ceiling:
                cands.append((t, lower))
        if not cands:
            return []

        if config.priority_mode == "strict":
            priorities = net.priority
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]

        if config.partial_order and len(cands) > 1:
            reduced = self._independent_immediate(cands, state)
            if reduced is not None:
                stats.reductions += 1
                cands = [reduced]

        priorities = net.priority
        expanded: list[tuple[int, int, int]] = []
        for t, lower in cands:
            if config.delay_mode == "earliest" or ceiling == INF:
                delays = (lower,)
            elif config.delay_mode == "extremes":
                upper = int(ceiling)
                delays = (lower,) if upper == lower else (lower, upper)
            else:  # full
                delays = tuple(range(lower, int(ceiling) + 1))
            for q in delays:
                expanded.append((q, priorities[t], t))
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]

    def _independent_immediate(
        self, cands: list[tuple[int, int]], state: State
    ) -> tuple[int, int] | None:
        """Pick a candidate that may soundly be fired without branching.

        A candidate qualifies when it is *structurally conflict-free*
        (every input place is consumed by this transition only, so its
        firing can never steal a token from any other transition — now
        or in the future) and it fires with zero delay, so no clock
        advances and every alternative stays fireable afterwards.

        Three conditions make firing ``t`` alone sound:

        * ``t`` is *forced now*: its dynamic upper bound is zero, so
          strong semantics fires it at this very instant in every
          continuation — and the zero ceiling means every other
          candidate is also zero-delay, so no time passes either way;
        * ``t`` is structurally conflict-free, so no interleaving can
          disable it and it can disable nothing;
        * ``t``'s postset avoids the preset of every other currently
          enabled transition: producing into a place another enabled
          transition consumes from does not commute at the *clock*
          level.  The boundary case is an instance completing exactly
          when the next one arrives — the arrival (producing the
          deadline-timer token) and the finish (consuming the old one)
          must be interleaved both ways, because only
          finish-then-arrival lets the deadline clock reset.

        Earlier revisions also reduced merely-eager candidates under
        the earliest-delay policy; that loses real schedules (eagerly
        releasing a task forecloses interleavings where another task's
        arrival advances time first), so only forced firings reduce.
        """
        conflict_free = self._conflict_free
        presets = self._preset_places
        postsets = self._postset_places
        lft = self.net.lft
        clocks = state.clocks
        enabled = [
            t for t, clock in enumerate(clocks) if clock != DISABLED
        ]
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            if lft[t] == INF or lft[t] - clocks[t] > 0:
                continue  # not forced at this instant
            post = postsets[t]
            clean = True
            for other in enabled:
                if other != t and post & presets[other]:
                    clean = False
                    break
            if clean:
                return (t, 0)
        return None


def search(
    net: CompiledNet, config: SchedulerConfig | None = None
) -> SchedulerResult:
    """Synthesise a schedule for a compiled net."""
    return PreRuntimeScheduler(net, config).search()


def find_schedule(
    model: ComposedModel, config: SchedulerConfig | None = None
) -> SchedulerResult:
    """Synthesise a schedule for a composed model.

    Convenience wrapper that compiles the net and attaches the model's
    theoretical minimum firing count to the result for the paper's
    visited-vs-minimum comparison.
    """
    result = search(model.net.compile(), config)
    result.minimum_firings = model.minimum_firings()
    return result


def require_schedule(
    model: ComposedModel, config: SchedulerConfig | None = None
) -> SchedulerResult:
    """Like :func:`find_schedule` but raises when no schedule is found."""
    result = find_schedule(model, config)
    if not result.feasible:
        raise InfeasibleScheduleError(
            f"no feasible pre-runtime schedule found for "
            f"{model.spec.name!r} (visited {result.stats.states_visited} "
            f"states{'; budget exhausted' if result.exhausted else ''})"
        )
    return result
