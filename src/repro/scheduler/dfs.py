"""Pre-runtime schedule synthesis by depth-first search (Section 4.4.1).

**Overview for new contributors.**  This module is the front door of
the synthesis pipeline: it takes the compiled time Petri net produced
by the block composer and searches its timed state space for a firing
sequence that reaches the desired final marking — that sequence *is*
the pre-runtime schedule the code generator turns into a C table.
Everything else in ``scheduler/`` supports this search: ``core.py``
holds the single engine-agnostic DFS loop and the four
:class:`~repro.scheduler.core.EngineAdapter` implementations,
``config.py`` the knobs, ``result.py`` the outcome/statistics
containers, ``policies.py`` the alternative candidate orderings,
``adaptive.py`` the portfolio-seeding statistics, and ``parallel.py``
races or partitions the search across worker processes.  Start reading
at :class:`repro.scheduler.core.SearchCore` (the loop) and
:meth:`repro.scheduler.core.IncrementalAdapter.candidates_of` (how one
state's successor choices are enumerated).

The algorithm explores the timed labeled transition system derived from
the composed TPN, looking for a firing sequence that reaches the desired
final marking ``M_F`` — by Definition 3.2 such a sequence *is* a
feasible pre-runtime schedule, and finding one proves the task set
schedulable under the searched policy.

Four successor engines drive the expansion, each wrapped by a thin
adapter behind the shared loop:

* ``engine="incremental"`` (default) — the
  :class:`~repro.tpn.fastengine.IncrementalEngine` hot path: O(degree)
  successor computation over the compile-time ``affected`` adjacency,
  compact :class:`~repro.tpn.fastengine.FastState` states with cached
  hashes and enabled sets;
* ``engine="kernel"`` — the packed-buffer
  :class:`~repro.tpn.kernel.KernelEngine`: markings and clocks live in
  flat byte/word buffers with an incrementally maintained 64-bit
  Zobrist state key, and the successor/firable/min-DUB inner loop runs
  in an optional compiled C core (:mod:`repro.tpn._kernelc`) with a
  semantics-identical pure-Python fallback — the fastest engine when
  the native core is built;
* ``engine="reference"`` — the checked-semantics
  :class:`~repro.tpn.state.StateEngine` with dense O(|T|·|P|) rescans,
  kept as the baseline the benchmarks and the CI smoke job
  cross-validate against (identical schedules, identical state counts);
* ``engine="stateclass"`` — the dense-time
  :class:`~repro.tpn.stateclass.StateClassEngine`: states are
  Berthomieu–Diaz state classes (marking + difference-bound matrix),
  so every dense firing delay of a transition is one search edge
  instead of one edge per integer delay.  A feasible class path is
  *concretised* back to integer firing times and replayed through the
  checked reference engine before being returned — the same contract
  the parallel scheduler applies to worker wins.
"""

from __future__ import annotations

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.blocks.composer import ComposedModel
from repro.obs.events import JsonlSink, Recorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressPrinter
from repro.scheduler.config import ENGINES, SchedulerConfig
from repro.scheduler.core import SearchCore, make_adapter
from repro.scheduler.policies import make_reorder
from repro.scheduler.result import SchedulerResult
from repro.tpn.fastengine import FastState, IncrementalEngine
from repro.tpn.net import CompiledNet


class PreRuntimeScheduler:
    """Depth-first schedule synthesiser over a compiled net.

    A thin shell around :class:`repro.scheduler.core.SearchCore`: it
    validates the configuration, builds the engine adapter and the
    policy reorder function, and exposes the injection points the
    parallel scheduler's workers use (``tick``, ``shared_filter``,
    :meth:`search_from`).
    """

    def __init__(
        self,
        net: CompiledNet,
        config: SchedulerConfig | None = None,
        engine: str | None = None,
    ):
        self.net = net
        self.config = config or SchedulerConfig()
        if engine is None:
            engine = self.config.engine
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if (
            engine == "stateclass"
            and self.config.delay_mode != "earliest"
        ):
            raise SchedulingError(
                "delay_mode has no effect on the dense-time state-class "
                "engine (the class graph covers every dense delay); "
                "keep the default 'earliest'"
            )
        self.engine_mode = engine
        self.adapter = make_adapter(engine, net, self.config)
        self._reorder = make_reorder(
            self.config.policy, net, self.config.policy_seed
        )
        # Injection points for the parallel scheduler's workers (all
        # no-ops for a plain serial search):
        #: cooperative callback, polled every 1024 expansions with the
        #: live counters; returning True aborts the search (used for
        #: first-win cancellation and shared state budgets).
        self.tick = None
        #: cross-process visited filter with an ``add(key) -> bool``
        #: protocol (False when the key was already present); states
        #: another worker claimed are skipped like local revisits.
        self.shared_filter = None
        #: work-stealing re-split hook: when set, the search core
        #: donates frontier prefixes back to the shared job queue
        #: whenever the hook reports other workers are starving (see
        #: :meth:`repro.scheduler.core.SearchCore._export_prefix`).
        self.resplit = None
        # Observability (repro.obs).  The metrics registry is always
        # on — a few dict writes per search, snapshotted onto
        # ``SchedulerResult.metrics``; portfolio workers swap in their
        # own registry so every worker's counters ship home.  The span
        # recorder and the progress heartbeat exist only when their
        # config knobs ask for them (otherwise the core's hot loop
        # never sees them).
        self.metrics = MetricsRegistry()
        if engine == "kernel":
            # which core the kernel engine resolved to (1.0 = compiled
            # C inner loop, 0.0 = pure-Python fallback) — the CI pure
            # job and the benches read this off the result metrics
            self.metrics.set_gauge(
                "kernel.native_core",
                1.0 if self.adapter.engine.native else 0.0,
            )
        elif engine == "stateclass":
            # same contract for the packed DBM core
            self.metrics.set_gauge(
                "dbm.native_core",
                1.0 if self.adapter.engine.native else 0.0,
            )
        self.obs = None
        if self.config.trace_jsonl:
            self.obs = Recorder(
                JsonlSink(self.config.trace_jsonl),
                track=f"search:{engine}",
            )
            self.adapter.obs = self.obs
        self.heartbeat = None
        if self.config.progress:
            self.heartbeat = ProgressPrinter(
                label=f"search:{engine}",
                recorder=self.obs,
                metrics=self.metrics,
            )
        if not net.final_constraints:
            raise SchedulingError(
                "net has no final marking; set one (the join block does "
                "this automatically) before scheduling"
            )

    @property
    def fast(self) -> IncrementalEngine:
        """The incremental successor engine (work-stealing handoff)."""
        if self.engine_mode != "incremental":
            raise SchedulingError(
                "only the incremental adapter carries a FastState "
                "engine"
            )
        return self.adapter.engine

    # ------------------------------------------------------------------
    def search(self) -> SchedulerResult:
        """Run the DFS; returns a result whether or not it succeeds."""
        return SearchCore(
            self.adapter,
            self.config,
            reorder=self._reorder,
            tick=self.tick,
            shared_filter=self.shared_filter,
            obs=self.obs,
            metrics=self.metrics,
            heartbeat=self.heartbeat,
            resplit=self.resplit,
        ).run()

    def search_from(self, root: FastState, now: int) -> SchedulerResult:
        """Run the DFS from a subtree root instead of the initial state.

        Used by the work-stealing mode: ``root`` is a frontier state
        exported by :func:`repro.scheduler.parallel.split_frontier` and
        ``now`` the absolute time its prefix ends at, so the returned
        ``firing_schedule`` carries absolute times that concatenate
        directly onto the prefix.  Incremental engine only (the root is
        a :class:`FastState`).
        """
        if self.engine_mode != "incremental":
            raise SchedulingError(
                "subtree search requires the incremental engine"
            )
        self.adapter.set_root(root, now)
        try:
            return self.search()
        finally:
            self.adapter.set_root(None, 0)


def search(
    net: CompiledNet,
    config: SchedulerConfig | None = None,
    engine: str | None = None,
    heartbeat=None,
) -> SchedulerResult:
    """Synthesise a schedule for a compiled net.

    Dispatches on ``config.parallel``: ``0``/``1`` run the serial DFS
    in-process, ``>= 2`` hand the net to the
    :class:`~repro.scheduler.parallel.ParallelScheduler` (portfolio
    racing or work-stealing subtree search across worker processes).
    ``engine=None`` uses ``config.engine``; an explicit argument
    overrides it for this call.

    ``heartbeat`` is an optional progress callback with the search
    core's ``(visited, generated, depth)`` signature (e.g. a
    :class:`repro.obs.progress.ProgressFile` spooling live counters
    for SSE streaming); it overrides the ``config.progress`` printer
    on the serial path.  Parallel searches run their workers in other
    processes and ignore it.
    """
    config = config or SchedulerConfig()
    if config.parallel >= 2:
        # deferred import: parallel imports this module for its workers
        from repro.scheduler.parallel import ParallelScheduler

        return ParallelScheduler(net, config, engine=engine).search()
    scheduler = PreRuntimeScheduler(net, config, engine=engine)
    if heartbeat is not None:
        scheduler.heartbeat = heartbeat
    return scheduler.search()


def find_schedule(
    model: ComposedModel,
    config: SchedulerConfig | None = None,
    engine: str | None = None,
    prelint: bool = True,
    heartbeat=None,
) -> SchedulerResult:
    """Synthesise a schedule for a composed model.

    Convenience wrapper that compiles the net (cached on the model, so
    downstream stages reuse it) and attaches the model's theoretical
    minimum firing count to the result for the paper's
    visited-vs-minimum comparison.

    ``prelint`` (default on) runs the O(tasks) necessary-condition
    checks of :func:`repro.lint.specrules.presearch_diagnostics`
    first: a spec that provably cannot be scheduled (processor/bus
    overutilisation, a precedence chain that cannot meet its
    deadline) returns a *diagnosed* infeasible result immediately —
    ``result.diagnostics`` names the violated condition and no state
    is ever searched.  Warning-severity findings (e.g. the kernel
    engine's token-cap risk) never change the verdict; they attach to
    whatever result the search produces.  Pass ``prelint=False`` to
    force the exhaustive search to refute such specs the long way.
    """
    config = config or SchedulerConfig()
    diagnostics: list = []
    if prelint:
        # deferred import: repro.lint imports the scheduler config
        from repro.lint.diagnostics import has_errors
        from repro.lint.specrules import presearch_diagnostics

        diagnostics = presearch_diagnostics(
            model.spec, engine=engine or config.engine
        )
        if has_errors(diagnostics):
            result = SchedulerResult(
                feasible=False,
                config=config,
                exhausted=False,
                diagnostics=diagnostics,
            )
            result.minimum_firings = model.minimum_firings()
            return result
    result = search(
        model.compiled(), config, engine=engine, heartbeat=heartbeat
    )
    result.minimum_firings = model.minimum_firings()
    if diagnostics:
        result.diagnostics = diagnostics
    return result


def require_schedule(
    model: ComposedModel, config: SchedulerConfig | None = None
) -> SchedulerResult:
    """Like :func:`find_schedule` but raises when no schedule is found."""
    result = find_schedule(model, config)
    if not result.feasible:
        raise InfeasibleScheduleError(
            f"no feasible pre-runtime schedule found for "
            f"{model.spec.name!r} (visited {result.stats.states_visited} "
            f"states{'; budget exhausted' if result.exhausted else ''})"
        )
    return result
