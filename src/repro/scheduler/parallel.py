"""Parallel pre-runtime search: portfolio racing and work stealing.

**Overview for new contributors.**  ``repro.batch`` already
parallelises *across* models (one process per specification); this
module parallelises *within* one hard model, the ROADMAP's "a single
hard model should also scale" item.  Two orthogonal strategies share
the same worker plumbing:

* **Portfolio racing** (``parallel_mode="portfolio"``) — every worker
  runs a complete, independent DFS over the same state space, each
  under a different *(engine, policy)* slot: a candidate ordering from
  :mod:`repro.scheduler.policies` (the serial default, latest-first,
  min-laxity, seeded-random with geometric restarts), optionally on a
  different successor engine (``"stateclass:earliest"`` races the
  dense state-class search against the discrete hot path — the win on
  wide-interval models).  Neither orderings nor engines change the
  verdict, only the time to reach it, and combinatorial search times
  are heavy-tailed — so the *first* definitive verdict wins the race
  and cancels the rest.  This wins even on a single core: a 4-way race
  time-shared on one CPU still finishes ~N/4× faster whenever some
  slot needs N× fewer states than the default.  An optional
  :class:`~repro.scheduler.adaptive.AdaptiveStore` orders the slot
  rotation from prior winner statistics per model family.
* **Work stealing** (``parallel_mode="worksteal"``) — one search is
  partitioned instead of replicated: the parent expands a breadth-first
  prefix of the space (:func:`split_frontier`), exports each frontier
  state as a picklable :class:`~repro.tpn.fastengine.SubtreeJob`, and
  workers drain the job queue, searching subtrees against a
  **shared visited filter** (:class:`SharedVisitedFilter`, a
  hash-compacted open-addressing table in multiprocessing shared
  memory over the ``FastState`` precomputed hashes).  A state claimed
  by one worker is skipped by all others, so the union of the subtree
  searches covers the serial search space without re-exploration; with
  real cores the exhaustive (infeasible) case scales with the worker
  count.  When one subtree dwarfs the rest, the busy worker *re-splits*
  mid-search: it donates a prefix of its shallowest open DFS frame
  back to the shared queue (:class:`_Resplitter`), so a lopsided
  frontier partition no longer serialises the tail of the search.

Determinism contract (both modes):

* the returned *verdict* (feasible / infeasible) matches the serial
  search on the same configuration — orderings and partitions change
  which schedule is found and how fast, never whether one exists;
* every feasible schedule is replayed through the **reference engine**
  (:class:`repro.tpn.state.StateEngine`, checked firing rule) before
  being returned, so a parallel win is independently proven legal;
* the winning policy is recorded on the result
  (``result.winner_policy``) and rerunning that policy serially
  (``SchedulerConfig(policy=..., policy_seed=...)``) reproduces the
  winner's search deterministically.

Cancellation is cooperative-first: workers poll a shared event every
1024 expansions (the scheduler's ``tick`` hook) and report their final
counters before exiting, so the merged :class:`SearchStats` accounts
for the whole race; ``terminate()`` is only the backstop for a worker
stuck outside the search loop.  :meth:`ParallelScheduler.search` does
not return until every worker process has been joined or killed — no
orphans survive a win.

The work-stealing visited filter stores 64-bit state hashes, not full
states: two distinct states colliding on all 64 bits could in theory
be conflated (standard hash-compaction caveat, cf. bitstate hashing in
explicit-state model checkers); at the state counts this repository
searches the probability is negligible, and the feasible path is
always re-validated exactly.
"""

from __future__ import annotations

import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import get_context

from repro.errors import SchedulingError
from repro.obs.events import NULL_RECORDER, JsonlSink, Recorder
from repro.obs.metrics import MetricsRegistry
from repro.scheduler.adaptive import AdaptiveStore, net_family
from repro.scheduler.config import ENGINES, SchedulerConfig
from repro.scheduler.dfs import PreRuntimeScheduler
from repro.scheduler.policies import (
    default_portfolio,
    parse_policy,
    parse_slot,
)
from repro.scheduler.result import SchedulerResult, SearchStats
from repro.tpn.fastengine import SubtreeJob, export_job
from repro.tpn.net import CompiledNet
from repro.tpn.state import StateEngine

#: Frontier jobs exported per worker: enough imbalance absorption that
#: an unlucky worker's huge subtree does not serialise the rest.
JOBS_PER_WORKER = 4

#: Expansion budget of the breadth-first frontier split; small models
#: complete entirely inside it, which is the serial fallback path.
SPLIT_BUDGET = 2048

#: First restart budget (states) of the seeded-random portfolio
#: policy, doubled on every restart (geometric / Luby-style schedule).
RESTART_BASE_STATES = 4096

#: States a worker must have visited in its current subtree before it
#: is allowed to re-split: donating a frontier prefix only pays off
#: when the subtree has already proven big, and the floor keeps small
#: jobs from ping-ponging between workers.
RESPLIT_MIN_VISITED = 4096

#: Frontier candidates donated per re-split: enough to feed several
#: idle workers at once, small enough that the donor keeps the bulk
#: of its (already claim-filtered) subtree.
RESPLIT_MAX_EXPORT = 8

#: Seconds the parent keeps draining stats messages after a win.
_DRAIN_GRACE = 2.0

_MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Shared visited filter (work-stealing mode)
# ----------------------------------------------------------------------
class SharedVisitedFilter:
    """Cross-process visited set over 64-bit state hashes.

    A fixed-size open-addressing table in multiprocessing shared
    memory.  ``add(h)`` claims a hash: ``True`` means "new, yours to
    explore", ``False`` means "another worker already claimed it".
    Updates are deliberately lock-free: the worst race duplicates a
    claim, which costs redundant exploration but never skips a state
    that nobody explores — the filter errs on the side of work, so the
    infeasible verdict stays sound.  A saturated probe window likewise
    degrades to "treat as new".
    """

    __slots__ = ("_table", "_mask", "_probes")

    def __init__(self, slots: int, context=None):
        if slots < 2 or slots & (slots - 1):
            raise SchedulingError(
                f"filter size must be a power of two >= 2, got {slots}"
            )
        ctx = context if context is not None else get_context()
        self._table = ctx.RawArray("Q", slots)
        self._mask = slots - 1
        self._probes = 32

    @classmethod
    def for_budget(cls, max_states: int, context=None) -> "SharedVisitedFilter":
        """Size the table to ~2x the state budget (capped at 4M slots)."""
        slots = 1 << 14
        while slots < 2 * max_states and slots < (1 << 22):
            slots <<= 1
        return cls(slots, context=context)

    @property
    def slots(self) -> int:
        return self._mask + 1

    def add(self, state_hash: int) -> bool:
        """Claim a hash; False when it was already present."""
        value = state_hash & _MASK64
        if value == 0:
            value = 1  # 0 is the empty-slot sentinel
        table = self._table
        mask = self._mask
        index = value & mask
        for _ in range(self._probes):
            current = table[index]
            if current == value:
                return False
            if current == 0:
                table[index] = value
                return True
            index = (index + 1) & mask
        return True  # saturated window: explore rather than skip

    def seed(self, hashes) -> None:
        """Pre-claim states already expanded by the frontier split."""
        for state_hash in hashes:
            self.add(state_hash)


# ----------------------------------------------------------------------
# Frontier split (work-stealing mode)
# ----------------------------------------------------------------------
@dataclass
class FrontierSplit:
    """Outcome of the breadth-first prefix expansion.

    Either ``result`` is set (the split finished the search by itself —
    tiny model, immediate schedule, or fully exhausted space: the exact
    serial verdict) or ``jobs`` carries at least one subtree to hand
    out, with ``seen_hashes`` holding every state the split expanded or
    enqueued (they seed the shared filter).
    """

    jobs: list[SubtreeJob] = field(default_factory=list)
    seen_hashes: list[int] = field(default_factory=list)
    result: SchedulerResult | None = None
    stats: SearchStats = field(default_factory=SearchStats)


def split_frontier(
    net: CompiledNet,
    config: SchedulerConfig,
    target_jobs: int,
    budget: int = SPLIT_BUDGET,
) -> FrontierSplit:
    """Expand a BFS prefix of the search into ``target_jobs`` subtrees.

    Runs the same candidate enumeration, deadline pruning and
    final-marking detection as the serial DFS, so any verdict reached
    *during* the split is already the serial verdict.  The frontier is
    expanded shallowest-first, which keeps the exported ``_Frame``
    prefixes short and the subtree sizes comparable.
    """
    scheduler = PreRuntimeScheduler(
        net, replace(config, parallel=0), engine="incremental"
    )
    adapter = scheduler.adapter
    fast = adapter.engine
    stats = SearchStats()
    started = time.monotonic()

    s0 = fast.initial()
    if net.has_missed_deadline(s0.marking):
        raise SchedulingError(
            "initial marking already contains a missed deadline"
        )
    if net.is_final(s0.marking):
        stats.states_visited = 1
        stats.elapsed_seconds = time.monotonic() - started
        return FrontierSplit(
            result=SchedulerResult(
                feasible=True, stats=stats, config=config
            ),
            stats=stats,
        )

    candidates_of = adapter.candidates_of
    reorder = scheduler._reorder
    touches_miss = net.touches_miss
    touches_final = net.touches_final
    names = net.transition_names

    visited = {s0}
    frontier: deque[tuple] = deque([(s0, 0, ())])
    expansions = 0

    while frontier and len(frontier) < target_jobs and expansions < budget:
        state, now, prefix = frontier.popleft()
        candidates = candidates_of(state, stats)
        if reorder is not None:
            candidates = reorder(candidates, state)
        expansions += 1
        for transition, delay in candidates:
            stats.states_generated += 1
            child = fast.successor(state, transition, delay)
            if touches_miss[transition] and net.has_missed_deadline(
                child.marking
            ):
                stats.deadline_prunes += 1
                continue
            if child in visited:
                stats.revisits_skipped += 1
                continue
            visited.add(child)
            action = (transition, delay, now + delay)
            if touches_final[transition] and net.is_final(child.marking):
                schedule = [
                    (names[t], q, at) for t, q, at in prefix
                ]
                schedule.append((names[transition], delay, now + delay))
                stats.states_visited = len(visited)
                stats.elapsed_seconds = time.monotonic() - started
                return FrontierSplit(
                    result=SchedulerResult(
                        feasible=True,
                        firing_schedule=schedule,
                        stats=stats,
                        config=config,
                    ),
                    stats=stats,
                )
            frontier.append((child, now + delay, prefix + (action,)))

    stats.states_visited = len(visited)
    stats.elapsed_seconds = time.monotonic() - started
    if not frontier:
        # the BFS exhausted the whole reachable space: definitive
        # infeasible, exactly what the serial DFS would conclude
        return FrontierSplit(
            result=SchedulerResult(
                feasible=False, stats=stats, config=config
            ),
            stats=stats,
        )
    jobs = [
        export_job(state, now, prefix)
        for state, now, prefix in frontier
    ]
    return FrontierSplit(
        jobs=jobs,
        seen_hashes=[state.hash64 for state in visited],
        stats=stats,
    )


# ----------------------------------------------------------------------
# Schedule validation (the determinism contract)
# ----------------------------------------------------------------------
def validate_with_reference(
    net: CompiledNet,
    config: SchedulerConfig,
    schedule: list[tuple[str, int, int]],
) -> None:
    """Replay a firing schedule through the checked reference engine.

    Every firing is validated against Definition 3.1 (enabledness,
    admissible delay window under strong semantics) by
    :meth:`StateEngine.fire`, and the final marking must satisfy
    ``M_F``.  Raises :class:`SchedulingError` when the schedule is not
    a legal feasible run — which would mean the producing search (a
    parallel worker, or the dense state-class concretisation, which
    shares this gate) returned garbage, so the error is loud rather
    than folded into a verdict.
    """
    engine = StateEngine(net, reset_policy=config.reset_policy)
    state = engine.initial_state()
    index = net.transition_index
    now = 0
    for name, delay, at in schedule:
        state = engine.fire(state, index[name], delay)
        now += delay
        if now != at:
            raise SchedulingError(
                f"schedule timestamp mismatch at {name!r}: "
                f"recorded {at}, replayed {now}"
            )
    if not net.is_final(state.marking):
        raise SchedulingError(
            "schedule does not reach the final marking under the "
            "reference engine"
        )


# ----------------------------------------------------------------------
# Work-stealing re-split
# ----------------------------------------------------------------------
class _Resplitter:
    """Donates frontier prefixes back to the shared job queue.

    One instance per work-stealing worker, handed to the search core
    as its ``resplit`` hook.  The trigger is *starvation*: the shared
    ``outstanding`` counter tracks jobs enqueued but not yet finished
    (queue depth plus in-flight), so ``outstanding < workers`` means
    at least one worker is idle or about to be.  A busy worker that
    has already sunk :data:`RESPLIT_MIN_VISITED` states into its
    current subtree then exports up to :data:`RESPLIT_MAX_EXPORT`
    unexpanded frontier children as fresh jobs — each one claimed in
    the shared visited filter *before* export, so duplication stays
    bounded by the filter's usual lock-free race (which only ever
    duplicates work, never loses it).

    The exported jobs carry ``prefix + path-to-child`` action tuples,
    so a receiving worker's win concatenates into a complete schedule
    exactly like a first-generation frontier job.
    """

    __slots__ = (
        "jobs",
        "outstanding",
        "workers",
        "metrics",
        "max_export",
        "prefix",
    )

    def __init__(self, jobs, outstanding, workers: int, metrics):
        self.jobs = jobs
        self.outstanding = outstanding
        self.workers = workers
        self.metrics = metrics
        self.max_export = RESPLIT_MAX_EXPORT
        self.prefix: tuple = ()

    def begin_job(self, prefix: tuple) -> None:
        """Record the action prefix of the job about to be searched."""
        self.prefix = tuple(prefix)

    def wants_export(self, n_visited: int) -> bool:
        # dirty read: worst case a donation races a fresh enqueue and
        # the queue briefly holds one more job than strictly needed
        return (
            n_visited >= RESPLIT_MIN_VISITED
            and self.outstanding.value < self.workers
        )

    def export(self, entries) -> None:
        """Enqueue donated ``(state, now, actions)`` frontier children.

        The outstanding counter is raised *before* the puts so an idle
        worker polling an empty queue never concludes "all work done"
        while donations are in flight.
        """
        with self.outstanding.get_lock():
            self.outstanding.value += len(entries)
        prefix = self.prefix
        for state, now, actions in entries:
            self.jobs.put(
                export_job(state, now, prefix + tuple(actions))
            )
        self.metrics.inc("worksteal.resplits")
        self.metrics.inc("worksteal.jobs_resplit", len(entries))


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _stats_payload(stats: SearchStats) -> dict:
    payload = stats.as_dict()
    payload.pop("states_per_second", None)
    return payload


def _accumulate(total: dict, payload: dict) -> None:
    for key, value in payload.items():
        if key == "elapsed_seconds":
            continue
        total[key] = total.get(key, 0) + value


def _portfolio_worker(
    index: int,
    slot_text: str,
    net: CompiledNet,
    config: SchedulerConfig,
    default_engine: str,
    results,
    cancel,
) -> None:
    """Run one complete search under one slot; report the outcome.

    A slot is ``[engine:]policy[:seed]`` — the engine prefix races
    successor engines as well as orderings; without one the slot
    inherits ``default_engine`` (the scheduler's configured engine).
    """
    engine, policy_text = parse_slot(slot_text)
    if engine is None:
        engine = default_engine
    name, seed = parse_policy(policy_text)
    if seed is None:
        seed = index
    merged: dict = {}
    restarts = 0
    # one registry for the worker's whole lifetime (shared across
    # restarts); its snapshot rides home on the stats payload and the
    # parent merges every worker's snapshot onto result.metrics
    metrics = MetricsRegistry()
    worker_started = time.monotonic()
    try:
        deadline = (
            None
            if config.max_seconds is None
            else time.monotonic() + config.max_seconds
        )

        def tick(*_counters) -> bool:
            return cancel.is_set()

        def run_once(cfg: SchedulerConfig) -> SchedulerResult:
            scheduler = PreRuntimeScheduler(net, cfg, engine=engine)
            scheduler.tick = tick
            scheduler.metrics = metrics
            if scheduler.obs is not None:
                # one trace track per portfolio worker slot
                scheduler.obs.track = f"w{index}:{slot_text}"
            if scheduler.heartbeat is not None:
                scheduler.heartbeat.label = f"w{index}:{slot_text}"
                scheduler.heartbeat.metrics = metrics
            return scheduler.search()

        overrides = dict(
            parallel=0,
            portfolio=(),
            policy=name,
            policy_seed=seed,
        )
        if engine == "stateclass" and config.delay_mode != "earliest":
            # one state class covers *every* dense firing delay, so
            # the discrete delay-enumeration modes have nothing to
            # enumerate for this slot — and the dense search already
            # subsumes them: with finite LFTs a delay-enumerated
            # discrete run is one realisation of some class path
            overrides["delay_mode"] = "earliest"
        base = replace(config, **overrides)
        if name == "random":
            # geometric restarts: heavy-tailed instances usually fall
            # to *some* seed quickly; doubling budgets bound the total
            # overhead to <= 2x the lucky seed's work
            spent = 0
            budget = min(RESTART_BASE_STATES, config.max_states)
            result = None
            while True:
                remaining = config.max_states - spent
                if remaining <= 0:
                    break
                seconds_left = (
                    None
                    if deadline is None
                    else max(0.001, deadline - time.monotonic())
                )
                cfg = replace(
                    base,
                    policy_seed=seed + restarts,
                    max_states=min(budget, remaining),
                    max_seconds=seconds_left,
                )
                attempt = run_once(cfg)
                _accumulate(merged, _stats_payload(attempt.stats))
                spent += attempt.stats.states_visited
                result = attempt
                if cancel.is_set():
                    break
                if attempt.feasible or not attempt.exhausted:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                restarts += 1
                budget *= 2
        else:
            result = run_once(base)
            _accumulate(merged, _stats_payload(result.stats))

        merged["restarts"] = restarts
        if cancel.is_set():
            kind = "cancelled"
        elif result is None or (not result.feasible and result.exhausted):
            kind = "exhausted"
        elif result.feasible:
            kind = "feasible"
        else:
            kind = "infeasible"
        # per-slot wall-clock and outcome land in the metrics snapshot
        # (gauges carry the slot name, so workers never collide); the
        # parent reads the wall-clock gauge back into the AdaptiveStore
        metrics.set_gauge(
            f"slot.{slot_text}.wall_seconds",
            round(time.monotonic() - worker_started, 6),
        )
        metrics.inc(f"slot.{slot_text}.{kind}")
        if restarts:
            metrics.inc(f"slot.{slot_text}.restarts", restarts)
        # after the last _accumulate: that helper does numeric addition
        # over the payload and must never see the nested snapshot
        merged["metrics"] = metrics.snapshot()
        # feasible payload: the schedule plus the dense windows the
        # stateclass engine attaches (None for the discrete engines)
        payload = (
            (list(result.firing_schedule), result.interval_schedule)
            if result is not None and result.feasible
            else None
        )
        results.put((kind, index, slot_text, merged, payload))
    except Exception as error:  # noqa: BLE001 — workers must not die silently
        merged["metrics"] = metrics.snapshot()
        results.put(
            (
                "error",
                index,
                slot_text,
                merged,
                f"{type(error).__name__}: {error}",
            )
        )


def _worksteal_worker(
    index: int,
    net: CompiledNet,
    config: SchedulerConfig,
    jobs,
    results,
    cancel,
    visited_filter: SharedVisitedFilter,
    visited_total,
    outstanding,
    n_workers: int,
) -> None:
    """Drain subtree jobs against the shared visited filter.

    Termination is counter-based rather than sentinel-based:
    ``outstanding`` holds the number of jobs enqueued but not yet
    finished (the parent seeds it with the frontier size; re-splits
    raise it before enqueueing; every drained job lowers it on
    completion).  An empty queue with ``outstanding <= 0`` means the
    whole space has been handed out and finished — sentinels cannot
    express that once workers are allowed to *add* jobs mid-search.
    """
    merged: dict = {}
    exhausted_any = False
    names = net.transition_names
    metrics = MetricsRegistry()
    worker_started = time.monotonic()
    try:
        scheduler = PreRuntimeScheduler(
            net, replace(config, parallel=0), engine="incremental"
        )
        scheduler.shared_filter = visited_filter
        scheduler.metrics = metrics
        resplitter = _Resplitter(jobs, outstanding, n_workers, metrics)
        scheduler.resplit = resplitter
        if scheduler.obs is not None:
            scheduler.obs.track = f"w{index}:worksteal"
        if scheduler.heartbeat is not None:
            scheduler.heartbeat.label = f"w{index}:worksteal"
            scheduler.heartbeat.metrics = metrics
        flushed = [0]

        def tick(n_visited, *_counters) -> bool:
            if cancel.is_set():
                return True
            delta = n_visited - flushed[0]
            flushed[0] = n_visited
            with visited_total.get_lock():
                visited_total.value += delta
                return visited_total.value >= config.max_states

        scheduler.tick = tick
        while not cancel.is_set():
            try:
                job = jobs.get(timeout=0.2)
            except queue_module.Empty:
                with outstanding.get_lock():
                    if outstanding.value <= 0:
                        break
                continue
            flushed[0] = 0
            # one steal per drained job; counters sum across workers,
            # so the merged snapshot carries both the per-worker split
            # and the total
            metrics.inc("worksteal.jobs_stolen")
            metrics.inc(f"worker.{index}.jobs_stolen")
            resplitter.begin_job(job.prefix)
            root = scheduler.fast.revive(job.marking, job.clocks)
            try:
                result = scheduler.search_from(root, job.now)
            finally:
                with outstanding.get_lock():
                    outstanding.value -= 1
            with visited_total.get_lock():
                visited_total.value += (
                    result.stats.states_visited - flushed[0]
                )
                over_budget = visited_total.value >= config.max_states
            _accumulate(merged, _stats_payload(result.stats))
            if result.feasible:
                schedule = [
                    (names[t], q, at) for t, q, at in job.prefix
                ]
                schedule.extend(result.firing_schedule)
                metrics.set_gauge(
                    f"worker.{index}.wall_seconds",
                    round(time.monotonic() - worker_started, 6),
                )
                merged["metrics"] = metrics.snapshot()
                results.put(("found", index, None, merged, schedule))
                return
            if result.exhausted:
                # budget- or cancel-aborted: this subtree was not
                # fully explored, so the verdict cannot claim the
                # space was exhausted
                exhausted_any = True
            if over_budget:
                exhausted_any = True
                break
        if cancel.is_set():
            # cancelled between jobs: whatever is still queued was
            # never searched
            exhausted_any = True
        metrics.set_gauge(
            f"worker.{index}.wall_seconds",
            round(time.monotonic() - worker_started, 6),
        )
        merged["metrics"] = metrics.snapshot()
        results.put(("drained", index, None, merged, exhausted_any))
    except Exception as error:  # noqa: BLE001
        merged["metrics"] = metrics.snapshot()
        results.put(
            (
                "error",
                index,
                None,
                merged,
                f"{type(error).__name__}: {error}",
            )
        )


# ----------------------------------------------------------------------
# The parallel scheduler
# ----------------------------------------------------------------------
class ParallelScheduler:
    """Race or partition the pre-runtime DFS across worker processes.

    Construct with the same ``(net, config, engine)`` triple as
    :class:`PreRuntimeScheduler`; ``config.parallel`` (>= 2) is the
    worker count and ``config.parallel_mode`` picks the strategy.
    :meth:`search` blocks until a verdict is reached and every worker
    process has been reaped.

    Portfolio slots are engine-aware: ``config.portfolio`` entries may
    prefix their policy with a successor engine
    (``"stateclass:earliest"``), racing the dense state-class search
    against the discrete engines; unprefixed slots inherit the
    configured engine.  An optional :class:`AdaptiveStore` seeds the
    rotation from prior winner statistics of the net's model family
    and records this race's winner back into the store — ordering only
    ever permutes the slots, so the verdict contract is untouched.
    """

    def __init__(
        self,
        net: CompiledNet,
        config: SchedulerConfig | None = None,
        engine: str | None = None,
        adaptive: AdaptiveStore | None = None,
    ):
        self.net = net
        self.adaptive = adaptive
        self.config = config or SchedulerConfig()
        if engine is None:
            engine = self.config.engine
        if engine not in ENGINES:
            raise SchedulingError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine_mode = engine
        if self.config.parallel < 2:
            raise SchedulingError(
                "ParallelScheduler needs config.parallel >= 2 "
                "(use PreRuntimeScheduler for a serial search)"
            )
        if (
            self.config.parallel_mode == "worksteal"
            and engine != "incremental"
        ):
            raise SchedulingError(
                "work-stealing mode requires the incremental engine "
                "(the shared filter runs on FastState hashes)"
            )
        try:
            self._context = get_context("fork")
        except ValueError:  # platforms without fork
            self._context = get_context()

    # ------------------------------------------------------------------
    def portfolio_policies(self) -> tuple[str, ...]:
        """The slot (``[engine:]policy[:seed]``) raced by each worker.

        An explicit ``config.portfolio`` is honoured (truncated to the
        worker count, padded with fresh random seeds when shorter);
        otherwise the default rotation applies.  With an
        :class:`AdaptiveStore` attached, the rotation is reordered by
        the net's model-family winner statistics (recorded winners
        first; a pure permutation, so exactly the same searches race).
        """
        workers = self.config.parallel
        if not self.config.portfolio:
            entries = list(default_portfolio(workers))
        else:
            entries = list(self.config.portfolio[:workers])
            used_seeds = set()
            for index, entry in enumerate(entries):
                name, seed = parse_policy(parse_slot(entry)[1])
                if name == "random":
                    # unseeded entries default to the worker index
                    used_seeds.add(index if seed is None else seed)
            seed = 0
            while len(entries) < workers:
                while seed in used_seeds:
                    seed += 1
                used_seeds.add(seed)
                entries.append(f"random:{seed}")
        # pin unseeded random slots to their rotation index *before*
        # any adaptive permutation: the worker-index fallback would
        # otherwise resolve them post-reorder, so reordering could
        # alias two slots onto one seed (burning a worker on a
        # byte-identical search)
        for index, entry in enumerate(entries):
            engine_prefix, policy = parse_slot(entry)
            name, seed = parse_policy(policy)
            if name == "random" and seed is None:
                pinned = f"random:{index}"
                entries[index] = (
                    pinned
                    if engine_prefix is None
                    else f"{engine_prefix}:{pinned}"
                )
        if self.adaptive is not None:
            entries = list(
                self.adaptive.order_slots(
                    net_family(self.net), tuple(entries)
                )
            )
        return tuple(entries)

    def search(self) -> SchedulerResult:
        if self.config.parallel_mode == "worksteal":
            return self._search_worksteal()
        return self._search_portfolio()

    # ------------------------------------------------------------------
    def _search_portfolio(self) -> SchedulerResult:
        config = self.config
        started = time.monotonic()
        # parent-side recorder: one "portfolio-race" track framing the
        # whole race plus the reference-replay gate (workers record
        # their own tracks into the same O_APPEND sink)
        obs = NULL_RECORDER
        if config.trace_jsonl:
            obs = Recorder(
                JsonlSink(config.trace_jsonl), track="portfolio-race"
            )
        race_t0 = obs.now_ns()
        ctx = self._context
        results = ctx.Queue()
        cancel = ctx.Event()
        policies = self.portfolio_policies()
        workers = [
            ctx.Process(
                target=_portfolio_worker,
                args=(
                    index,
                    policy,
                    self.net,
                    config,
                    self.engine_mode,
                    results,
                    cancel,
                ),
                name=f"ezrt-portfolio-{index}",
            )
            for index, policy in enumerate(policies)
        ]
        for process in workers:
            process.start()

        messages = self._collect(
            workers, results, cancel, expected=len(workers)
        )
        winner = None
        for message in messages:
            if message[0] in ("feasible", "infeasible"):
                winner = message
                break
        merged = self._merge_stats(messages)
        merged.elapsed_seconds = time.monotonic() - started
        race_metrics = MetricsRegistry.merge_snapshots(
            (m[3] or {}).get("metrics") for m in messages
        )
        obs.record_span(
            "portfolio-race",
            race_t0,
            obs.now_ns(),
            cat="portfolio",
            args={"workers": len(workers), "slots": list(policies)},
        )
        if winner is None:
            errors = [m for m in messages if m[0] == "error"]
            if len(errors) == len(workers) and errors:
                raise SchedulingError(
                    f"every portfolio worker failed; first: {errors[0][4]}"
                )
            if not messages:
                raise SchedulingError(
                    "portfolio search produced no worker results"
                )
            return SchedulerResult(
                feasible=False,
                stats=merged,
                config=config,
                exhausted=True,
                workers=len(workers),
                metrics=race_metrics,
            )
        kind, _index, slot, slot_stats, payload = winner
        slot_engine, policy = parse_slot(slot)
        if slot_engine is None:
            slot_engine = self.engine_mode
        if self.adaptive is not None:
            family = net_family(self.net)
            # per-slot wall-clock (and near-miss credit for losers that
            # still reached a definitive verdict) flows back into the
            # store so a narrowly-losing diverse slot is not starved;
            # the decay halves the horizon so old wins fade
            for message in messages:
                m_kind, _i, m_slot, m_stats, _payload = message
                if not m_slot:
                    continue
                seconds = (
                    ((m_stats or {}).get("metrics") or {})
                    .get("gauges", {})
                    .get(f"slot.{m_slot}.wall_seconds")
                )
                if seconds is not None:
                    self.adaptive.record_slot_time(
                        family,
                        m_slot,
                        seconds,
                        near=(
                            m_kind in ("feasible", "infeasible")
                            and message is not winner
                        ),
                    )
            self.adaptive.decay_family(family)
            self.adaptive.record_win(
                family,
                slot,
                (slot_stats or {}).get("states_visited", 0),
            )
            self.adaptive.save()
        if kind == "feasible":
            raw_schedule, windows = payload
            schedule = [tuple(entry) for entry in raw_schedule]
            with obs.span("reference-replay", cat="validate"):
                validate_with_reference(self.net, config, schedule)
            return SchedulerResult(
                feasible=True,
                firing_schedule=schedule,
                stats=merged,
                config=config,
                winner_policy=policy,
                winner_engine=slot_engine,
                workers=len(workers),
                interval_schedule=(
                    None
                    if windows is None
                    else [tuple(entry) for entry in windows]
                ),
                metrics=race_metrics,
            )
        return SchedulerResult(
            feasible=False,
            stats=merged,
            config=config,
            winner_policy=policy,
            winner_engine=slot_engine,
            workers=len(workers),
            metrics=race_metrics,
        )

    # ------------------------------------------------------------------
    def _search_worksteal(self) -> SchedulerResult:
        config = self.config
        started = time.monotonic()
        n_workers = config.parallel
        split = split_frontier(
            self.net, config, target_jobs=n_workers * JOBS_PER_WORKER
        )
        if split.result is not None:
            # the split finished the search serially: no worker ran,
            # but the contract still holds — feasible schedules are
            # reference-replayed before being returned
            result = split.result
            if result.feasible:
                validate_with_reference(
                    self.net, config, result.firing_schedule
                )
            result.workers = 1
            result.stats.elapsed_seconds = time.monotonic() - started
            return result

        ctx = self._context
        visited_filter = SharedVisitedFilter.for_budget(
            config.max_states, context=ctx
        )
        visited_filter.seed(split.seen_hashes)
        visited_total = ctx.Value("q", len(split.seen_hashes))
        # jobs enqueued but not yet finished; workers exit on an empty
        # queue only once this reaches zero (re-splits raise it, so a
        # fixed sentinel count cannot express termination)
        outstanding = ctx.Value("q", len(split.jobs))
        jobs: object = ctx.Queue()
        for job in split.jobs:
            jobs.put(job)
        results = ctx.Queue()
        cancel = ctx.Event()
        workers = [
            ctx.Process(
                target=_worksteal_worker,
                args=(
                    index,
                    self.net,
                    config,
                    jobs,
                    results,
                    cancel,
                    visited_filter,
                    visited_total,
                    outstanding,
                    n_workers,
                ),
                name=f"ezrt-worksteal-{index}",
            )
            for index in range(n_workers)
        ]
        for process in workers:
            process.start()

        messages = self._collect(
            workers,
            results,
            cancel,
            expected=len(workers),
            win_kinds=("found",),
            extra_queues=(jobs,),
        )
        merged = self._merge_stats(messages, base=split.stats)
        merged.elapsed_seconds = time.monotonic() - started
        parent_metrics = MetricsRegistry()
        parent_metrics.set_gauge(
            "worksteal.frontier_jobs", len(split.jobs)
        )
        steal_metrics = MetricsRegistry.merge_snapshots(
            [parent_metrics.snapshot()]
            + [(m[3] or {}).get("metrics") for m in messages]
        )
        found = next((m for m in messages if m[0] == "found"), None)
        if found is not None:
            schedule = [tuple(entry) for entry in found[4]]
            validate_with_reference(self.net, config, schedule)
            return SchedulerResult(
                feasible=True,
                firing_schedule=schedule,
                stats=merged,
                config=config,
                workers=n_workers,
                metrics=steal_metrics,
            )
        errors = [m for m in messages if m[0] == "error"]
        if len(errors) == len(workers) and errors:
            raise SchedulingError(
                f"every work-stealing worker failed; first: {errors[0][4]}"
            )
        if not messages:
            raise SchedulingError(
                "work-stealing search produced no worker results"
            )
        exhausted = any(
            m[0] == "drained" and m[4] for m in messages
        ) or any(m[0] == "error" for m in messages) or len(
            [m for m in messages if m[0] == "drained"]
        ) < len(workers)
        return SchedulerResult(
            feasible=False,
            stats=merged,
            config=config,
            exhausted=exhausted,
            workers=n_workers,
            metrics=steal_metrics,
        )

    # ------------------------------------------------------------------
    def _collect(
        self,
        workers,
        results,
        cancel,
        expected: int,
        win_kinds: tuple[str, ...] = ("feasible", "infeasible"),
        extra_queues: tuple = (),
    ) -> list[tuple]:
        """Gather worker messages; cancel on the first definitive one.

        Returns every message received.  Guarantees that all worker
        processes are dead (joined, terminated or killed) on return.
        """
        config = self.config
        messages: list[tuple] = []
        budget_deadline = (
            None
            if config.max_seconds is None
            else time.monotonic() + config.max_seconds + _DRAIN_GRACE
        )
        drain_deadline = None
        try:
            while len(messages) < expected:
                if drain_deadline is not None:
                    timeout = drain_deadline - time.monotonic()
                    if timeout <= 0:
                        break
                    timeout = min(timeout, 0.2)
                else:
                    timeout = 0.2
                try:
                    message = results.get(timeout=timeout)
                except queue_module.Empty:
                    if budget_deadline is not None and (
                        time.monotonic() > budget_deadline
                    ):
                        cancel.set()
                        if drain_deadline is None:
                            drain_deadline = (
                                time.monotonic() + _DRAIN_GRACE
                            )
                    alive = sum(1 for p in workers if p.is_alive())
                    if alive + len(messages) < expected:
                        # a worker died without reporting: anything it
                        # held (its in-flight job, its outstanding-
                        # counter slot) can never complete, so release
                        # the survivors instead of letting them spin
                        cancel.set()
                        if drain_deadline is None:
                            drain_deadline = (
                                time.monotonic() + _DRAIN_GRACE
                            )
                    if not any(p.is_alive() for p in workers):
                        # reap whatever is still buffered, then stop
                        while True:
                            try:
                                messages.append(results.get_nowait())
                            except queue_module.Empty:
                                break
                        break
                    continue
                messages.append(message)
                if drain_deadline is None and message[0] in win_kinds:
                    cancel.set()
                    drain_deadline = time.monotonic() + _DRAIN_GRACE
        finally:
            cancel.set()
            for process in workers:
                process.join(timeout=1.0)
            for process in workers:
                if process.is_alive():
                    process.terminate()
            for process in workers:
                if process.is_alive():
                    process.join(timeout=1.0)
            for process in workers:
                if process.is_alive():  # pragma: no cover — last resort
                    process.kill()
                    process.join(timeout=1.0)
            for process in workers:
                try:
                    process.close()
                except ValueError:  # pragma: no cover — unkillable
                    pass
            for extra in extra_queues:
                extra.cancel_join_thread()
                extra.close()
            results.cancel_join_thread()
            results.close()
        return messages

    @staticmethod
    def _merge_stats(
        messages: list[tuple], base: SearchStats | None = None
    ) -> SearchStats:
        """Sum the per-worker counters into one :class:`SearchStats`."""
        merged = SearchStats()
        if base is not None:
            for key, value in base.as_dict().items():
                if key in ("elapsed_seconds", "states_per_second"):
                    continue
                setattr(merged, key, getattr(merged, key) + value)
        for message in messages:
            payload = message[3] or {}
            for key, value in payload.items():
                if not hasattr(merged, key):
                    continue
                setattr(merged, key, getattr(merged, key) + value)
        return merged
