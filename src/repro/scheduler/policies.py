"""Search policies: candidate orderings raced by the portfolio.

**Overview for new contributors.**  The pre-runtime DFS
(:mod:`repro.scheduler.dfs`) is complete within its delay policy: the
candidate *order* never changes which verdict is reached, only how fast
a feasible schedule is found.  On backtracking-heavy models the
default order can commit to a wrong early decision and pay for it with
an enormous refutation subtree, while a different ordering walks almost
straight to a schedule — the classic heavy-tailed runtime distribution
of combinatorial search.  This module defines the alternative orderings
that :class:`repro.scheduler.parallel.ParallelScheduler` races against
each other (first definitive verdict wins):

* ``earliest`` — the serial default: candidates stay sorted by
  ``(delay, priority, index)``, i.e. work-conserving first and
  urgency-driven second.  Always part of the portfolio as the hedge
  that guarantees the race is never slower than serial by more than
  the scheduling overhead.
* ``latest`` — the reversed order: latest-delay candidates first, so
  inserted idle time is tried before greedy grants.  Wins on models
  whose only feasible schedules delay work (non-work-conserving
  schedules, the textbook argument for pre-runtime scheduling).
* ``min-laxity`` — candidates with equal delay are re-ranked by the
  *dynamic* laxity of their task (time remaining until the task's
  deadline-miss transition fires).  A run-time urgency measure that
  rescues models whose static priorities are absent or misleading.
* ``random`` — a seeded per-node shuffle.  Different seeds sample
  independent orderings, which is what makes racing several of them
  effective on heavy-tailed instances; the portfolio worker couples
  this with geometric restarts (see ``dfs`` docs).

A policy is represented as a *reorder function* applied to the
candidate list the scheduler computed for one state; ``None`` means
"keep the default order" so the hot path pays nothing for the common
case.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import SchedulingError
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet, ROLE_DEADLINE_MISS

#: Policy names accepted by :func:`make_reorder` and
#: :attr:`repro.scheduler.config.SchedulerConfig.policy`.
POLICIES = ("earliest", "latest", "min-laxity", "random")

#: Reorder signature: ``(candidates, state) -> candidates`` where
#: ``candidates`` is the scheduler's ``[(transition, delay), ...]``
#: list and ``state`` exposes ``.clocks``.
Reorder = Callable[[list, object], list]


def parse_slot(text: str) -> tuple[str | None, str]:
    """Parse a portfolio slot ``"[engine:]policy[:seed]"``.

    A slot optionally prefixes the policy with a successor engine
    (``"stateclass:earliest"``, ``"incremental:random:3"``); without a
    prefix the slot inherits the scheduler's engine, signalled by
    ``None``.  Engine and policy names are disjoint, so the grammar is
    unambiguous; the policy part is validated by :func:`parse_policy`
    (raising on unknown names or misplaced seeds).
    """
    # deferred import: config's validation imports this module
    from repro.scheduler.config import ENGINES

    head, sep, rest = text.partition(":")
    head = head.strip()
    if sep and head in ENGINES:
        policy = rest.strip()
        if not policy:
            raise SchedulingError(
                f"portfolio slot {text!r} names an engine but no "
                "policy; write e.g. "
                f"{head}:earliest or {head}:random:3"
            )
        parse_policy(policy)
        return head, policy
    parse_policy(text)
    return None, text


def parse_policy(text: str) -> tuple[str, int | None]:
    """Parse ``"name"`` or ``"name:seed"`` into ``(name, seed)``.

    The seed suffix is only meaningful for ``random`` (it selects the
    shuffle stream); other policies reject it.
    """
    name, sep, suffix = text.partition(":")
    name = name.strip()
    if name not in POLICIES:
        raise SchedulingError(
            f"unknown search policy {name!r}; expected one of {POLICIES}"
        )
    if not sep:
        return name, None
    try:
        seed = int(suffix)
    except ValueError:
        raise SchedulingError(
            f"policy seed must be an integer, got {suffix!r}"
        ) from None
    if name != "random":
        raise SchedulingError(
            f"policy {name!r} takes no seed (only 'random:N' does)"
        )
    return name, seed


def default_portfolio(workers: int) -> tuple[str, ...]:
    """The default policy rotation for a ``workers``-wide race.

    The serial-default ordering always occupies slot 0 (the hedge);
    the remaining slots alternate the diversifiers, padding with
    distinct random seeds once the deterministic policies are used up.
    """
    if workers < 1:
        raise SchedulingError("portfolio needs at least one worker")
    rotation = ("earliest", "random:1", "min-laxity", "latest")
    policies = list(rotation[:workers])
    seed = 2
    while len(policies) < workers:
        policies.append(f"random:{seed}")
        seed += 1
    return tuple(policies)


def make_reorder(
    policy: str, net: CompiledNet, seed: int = 0
) -> Reorder | None:
    """Build the reorder function for ``policy`` over ``net``.

    Returns ``None`` for ``earliest`` so the scheduler keeps its
    zero-overhead default path.  The returned callables are
    deterministic given ``(policy, seed)`` and the sequence of states
    they are applied to (the DFS expansion order), which is what makes
    a portfolio win exactly replayable.
    """
    if policy == "earliest":
        return None
    if policy == "latest":
        def latest(cands: list, _state: object) -> list:
            return cands[::-1]
        return latest
    if policy == "min-laxity":
        return _make_min_laxity(net)
    if policy == "random":
        rng = random.Random(seed)
        shuffle = rng.shuffle
        def shuffled(cands: list, _state: object) -> list:
            cands = list(cands)
            shuffle(cands)
            return cands
        return shuffled
    raise SchedulingError(
        f"unknown search policy {policy!r}; expected one of {POLICIES}"
    )


def _make_min_laxity(net: CompiledNet) -> Reorder:
    """Sort by ``(delay, dynamic laxity, index)``.

    The laxity of a candidate is read off the clock of its task's
    deadline-miss transition: ``LFT(miss) − c(miss)`` is exactly the
    time left until the deadline expires.  Candidates whose task has no
    armed deadline timer (bookkeeping transitions, arrivals) keep their
    relative position at the back of their delay class.
    """
    miss_of: dict[str, int] = {}
    for index, role in enumerate(net.roles):
        task = net.tasks[index]
        if role == ROLE_DEADLINE_MISS and task is not None:
            miss_of[task] = index
    miss_timer: list[int | None] = [
        miss_of.get(task) if task is not None else None
        for task in net.tasks
    ]
    lft = net.lft

    def min_laxity(cands: list, state: object) -> list:
        clocks = state.clocks

        def key(cand: tuple[int, int]):
            transition, delay = cand
            timer = miss_timer[transition]
            if timer is None or clocks[timer] < 0:
                return (delay, INF, transition)
            return (delay, lft[timer] - clocks[timer], transition)

        return sorted(cands, key=key)

    return min_laxity
