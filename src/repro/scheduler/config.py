"""Scheduler configuration.

The pre-runtime scheduler (paper Section 4.4.1) is a depth-first search
over the TLTS; its behaviour is controlled by a handful of knobs that
the ablation benches sweep:

* ``priority_mode`` — ``"ordered"`` (default) uses the priority function
  π only to *order* candidates, preserving completeness within the delay
  policy; ``"strict"`` applies the paper's ``FT(s)`` filter literally,
  keeping only minimum-priority candidates (a stronger prune that can
  sacrifice completeness);
* ``delay_mode`` — which firing delays of the domain
  ``[DLB(t), min DUB]`` are tried: ``"earliest"`` (as-soon-as-possible
  firing; the blocks' ``[0,0]`` grants make the search work-conserving,
  which is also how the paper's model behaves), ``"extremes"`` (earliest
  and latest), or ``"full"`` (every integer delay; exhaustive but
  potentially exponential);
* ``partial_order`` — the state-space minimisation of the paper
  (Lilius-style): when an immediate candidate is structurally
  independent of every other candidate, fire it alone instead of
  branching;
* ``reset_policy`` — clock-reset semantics (see
  :mod:`repro.tpn.state`);
* ``engine`` — the successor engine driving the search:
  ``"incremental"`` (the O(degree) discrete-time hot path, default),
  ``"kernel"`` (the packed-buffer kernel of :mod:`repro.tpn.kernel`
  — flat marking/clock buffers, incremental 64-bit state keys, and
  an optional compiled C inner loop with a pure-Python fallback),
  ``"reference"`` (the checked discrete semantics baseline) or
  ``"stateclass"`` (the dense-time Berthomieu–Diaz state-class
  engine of :mod:`repro.tpn.stateclass`, which searches difference-
  bound classes instead of integer clock valuations and concretises
  any feasible dense schedule back to integer firing times);
* resource limits (``max_states``, ``max_seconds``);
* ``policy`` — the candidate *ordering* used by a serial search (see
  :mod:`repro.scheduler.policies`); orderings never change the verdict,
  only how fast a feasible schedule is found;
* the parallel knobs — ``parallel`` (worker count; ``0``/``1`` keep
  the search serial), ``parallel_mode`` (``"portfolio"`` races
  independent policies and the first definitive verdict wins;
  ``"worksteal"`` splits the root frontier into subtree jobs that
  workers drain against a shared visited filter) and ``portfolio``
  (explicit slot list for the race; empty picks the default
  rotation of :func:`repro.scheduler.policies.default_portfolio`).
  A portfolio slot is ``"[engine:]policy[:seed]"`` — prefixing a
  policy with an engine name races successor *engines* as well as
  orderings (e.g. ``("incremental:earliest", "stateclass:earliest")``
  pits the dense state-class search against the discrete hot path on
  wide-interval models); unprefixed slots inherit ``engine``;
* the observability knobs (:mod:`repro.obs`) — ``trace_jsonl``
  (when set, every pipeline phase records spans into this JSONL file;
  the CLI converts it to a Chrome trace viewable in Perfetto) and
  ``progress`` (stream ``[progress]`` heartbeat lines to stderr).
  Neither changes the search: tracing only observes, and the batch
  cache fingerprint deliberately excludes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.tpn.state import RESET_POLICIES

PRIORITY_MODES = ("ordered", "strict")
DELAY_MODES = ("earliest", "extremes", "full")
PARALLEL_MODES = ("portfolio", "worksteal")

#: Successor engines the scheduler can run on.  ``incremental``,
#: ``kernel`` and ``reference`` share the discrete-time TLTS semantics
#: (``kernel`` over packed buffers with an optional compiled core);
#: ``stateclass`` searches the dense-time state-class graph.
ENGINES = ("incremental", "kernel", "reference", "stateclass")


@dataclass
class SchedulerConfig:
    """Knobs of the pre-runtime depth-first scheduler."""

    priority_mode: str = "ordered"
    delay_mode: str = "earliest"
    partial_order: bool = True
    reset_policy: str = "paper"
    engine: str = "incremental"
    max_states: int = 2_000_000
    max_seconds: float | None = None
    policy: str = "earliest"
    policy_seed: int = 0
    parallel: int = 0
    parallel_mode: str = "portfolio"
    portfolio: tuple[str, ...] = field(default_factory=tuple)
    #: observability (repro.obs): JSONL span/event sink path (None =
    #: tracing off, the no-op recorder) and heartbeat streaming —
    #: neither affects the search verdict or the cache fingerprint
    trace_jsonl: str | None = None
    progress: bool = False

    def __post_init__(self) -> None:
        if self.priority_mode not in PRIORITY_MODES:
            raise SchedulingError(
                f"unknown priority mode {self.priority_mode!r}; "
                f"expected one of {PRIORITY_MODES}"
            )
        if self.delay_mode not in DELAY_MODES:
            raise SchedulingError(
                f"unknown delay mode {self.delay_mode!r}; "
                f"expected one of {DELAY_MODES}"
            )
        if self.reset_policy not in RESET_POLICIES:
            raise SchedulingError(
                f"unknown reset policy {self.reset_policy!r}; "
                f"expected one of {RESET_POLICIES}"
            )
        if self.engine not in ENGINES:
            raise SchedulingError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {ENGINES}"
            )
        if self.engine == "stateclass" and self.delay_mode != "earliest":
            # a state class covers every dense firing delay at once, so
            # the discrete delay-enumeration modes have nothing to
            # enumerate — rejecting them beats silently ignoring them
            raise SchedulingError(
                "delay_mode has no effect on the dense-time state-class "
                "engine (the class graph covers every dense delay); "
                "keep the default 'earliest'"
            )
        if self.max_states < 1:
            raise SchedulingError("max_states must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise SchedulingError("max_seconds must be positive")
        # deferred import: policies imports nothing from this module,
        # but keeping config importable first avoids a cycle with dfs
        from repro.scheduler.policies import POLICIES, parse_policy

        if self.policy not in POLICIES:
            raise SchedulingError(
                f"unknown search policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.parallel < 0:
            raise SchedulingError(
                "parallel must be >= 0 (0/1 mean a serial search)"
            )
        if self.parallel_mode not in PARALLEL_MODES:
            raise SchedulingError(
                f"unknown parallel mode {self.parallel_mode!r}; "
                f"expected one of {PARALLEL_MODES}"
            )
        if (
            self.parallel >= 2
            and self.parallel_mode == "worksteal"
            and self.engine != "incremental"
        ):
            raise SchedulingError(
                "work-stealing mode requires the incremental engine "
                "(the shared filter runs on FastState hashes)"
            )
        from repro.scheduler.policies import parse_slot

        self.portfolio = tuple(self.portfolio)
        for entry in self.portfolio:
            # raises on unknown engines/policies/bad seeds; a slot may
            # prefix its policy with an engine ("stateclass:earliest")
            # to race engines as well as orderings
            parse_slot(entry)
