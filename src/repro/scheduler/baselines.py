"""Runtime (priority-driven) scheduling baselines.

The motivation for pre-runtime scheduling — the approach ezRealtime
implements, following Mok [10] — is that priority-driven *runtime*
schedulers are work-conserving and decide online, so task sets whose
feasibility requires inserted idle time or non-greedy orderings
(typically in the presence of exclusion relations and non-preemptable
sections) are unschedulable for them even though a pre-runtime schedule
exists.  This module provides the classical comparators:

* :func:`simulate_runtime` — a discrete-time simulator for EDF
  (earliest absolute deadline first), DM (deadline monotonic) and RM
  (rate monotonic) dispatching, honouring per-task preemptive /
  non-preemptive execution, precedence, exclusion and message delays;
* :func:`mok_trap` — a two-task specification where every
  work-conserving runtime policy misses a deadline but the pre-runtime
  scheduler (with delayed releases) succeeds;
* :func:`rm_overload_pair` — the classical pair where fixed-priority
  dispatching misses and EDF meets all deadlines.

The benches in ``benchmarks/bench_baselines.py`` tabulate the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.scheduler.schedule import ExecutionSegment
from repro.spec.builder import SpecBuilder
from repro.spec.model import EzRTSpec
from repro.spec.timing import TaskInstance, expand_instances, schedule_period

RUNTIME_POLICIES = ("edf", "dm", "rm")


@dataclass(frozen=True)
class DeadlineMiss:
    """A missed deadline observed during a runtime simulation."""

    task: str
    instance: int
    deadline: int
    completion: int | None  # None: still unfinished at the horizon


@dataclass
class RuntimeOutcome:
    """Result of one runtime-scheduling simulation."""

    policy: str
    horizon: int
    segments: list[ExecutionSegment] = field(default_factory=list)
    misses: list[DeadlineMiss] = field(default_factory=list)
    response_times: dict[str, int] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True when every instance met its deadline."""
        return not self.misses

    def summary(self) -> str:
        verdict = "all deadlines met" if self.feasible else (
            f"{len(self.misses)} deadline miss(es)"
        )
        worst = ", ".join(
            f"{task}={value}"
            for task, value in sorted(self.response_times.items())
        )
        return (
            f"{self.policy.upper():3s}: {verdict}; worst response "
            f"times: {worst}"
        )


@dataclass
class _Job:
    """Mutable per-instance simulation state."""

    instance: TaskInstance
    remaining: int
    started: bool = False
    finished_at: int | None = None
    segment_start: int | None = None


def simulate_runtime(
    spec: EzRTSpec,
    policy: str = "edf",
    horizon: int | None = None,
    miss_policy: str = "continue",
) -> RuntimeOutcome:
    """Simulate priority-driven dispatching over the schedule period.

    ``policy`` selects the priority rule: ``"edf"`` (dynamic, earliest
    absolute deadline), ``"dm"`` (static, smallest relative deadline) or
    ``"rm"`` (static, smallest period).  ``miss_policy`` chooses what
    happens after a miss: ``"continue"`` keeps executing the late
    instance (recording the miss), ``"abort"`` drops its remaining work.

    Semantics of the specification's relations:

    * a non-preemptive instance, once started, runs to completion;
    * an instance may not *start* while an instance of an excluded task
      has started and not finished (and vice versa — symmetric);
    * instance ``k`` of a task may not start before instance ``k`` of
      each predecessor task has finished; message-mediated precedence
      additionally delays readiness by the bus grant and communication
      times (an infinite-capacity bus — a simplification recorded in
      DESIGN.md, adequate for baseline comparisons).
    """
    if policy not in RUNTIME_POLICIES:
        raise SchedulingError(
            f"unknown runtime policy {policy!r}; expected one of "
            f"{RUNTIME_POLICIES}"
        )
    if miss_policy not in ("continue", "abort"):
        raise SchedulingError(
            f"unknown miss policy {miss_policy!r}"
        )
    end = horizon if horizon is not None else schedule_period(spec)
    jobs = [
        _Job(instance=i, remaining=i.computation)
        for i in expand_instances(spec, horizon=end)
    ]
    by_key = {(j.instance.task, j.instance.index): j for j in jobs}
    tasks = {t.name: t for t in spec.tasks}
    exclusion: dict[str, set[str]] = {t.name: set() for t in spec.tasks}
    for a, b in spec.exclusion_pairs():
        exclusion[a].add(b)
        exclusion[b].add(a)
    predecessors: dict[str, list[str]] = {
        t.name: [] for t in spec.tasks
    }
    for before, after in spec.precedence_pairs():
        predecessors[after].append(before)
    message_delay: dict[str, list[tuple[str, int]]] = {
        t.name: [] for t in spec.tasks
    }
    for message in spec.messages:
        if message.sender and message.precedes:
            message_delay[message.precedes].append(
                (
                    message.sender,
                    message.grant_bus + message.communication,
                )
            )

    def priority_key(job: _Job) -> tuple:
        task = tasks[job.instance.task]
        if policy == "edf":
            primary = job.instance.deadline
        elif policy == "dm":
            primary = task.deadline
        else:
            primary = task.period
        return (primary, spec.tasks.index(task), job.instance.index)

    # frontier structures: only released, unfinished jobs are scanned
    # each tick (the dense per-tick loop dominated profiles otherwise)
    pending = sorted(jobs, key=lambda j: j.instance.release)
    pending_index = 0
    active: list[_Job] = []
    open_by_task: dict[str, int] = {t.name: 0 for t in spec.tasks}

    def ready(job: _Job, now: int) -> bool:
        if job.finished_at is not None or job.remaining <= 0:
            return False
        if job.instance.release > now:
            return False
        name = job.instance.task
        for before in predecessors[name]:
            pred = by_key.get((before, job.instance.index))
            if pred is None or pred.finished_at is None:
                return False
            if pred.finished_at > now:
                return False
        for sender, delay in message_delay[name]:
            pred = by_key.get((sender, job.instance.index))
            if pred is None or pred.finished_at is None:
                return False
            if pred.finished_at + delay > now:
                return False
        if not job.started:
            for partner in exclusion[name]:
                if open_by_task[partner]:
                    return False
        return True

    outcome = RuntimeOutcome(policy=policy, horizon=end)
    running: _Job | None = None
    raw_segments: list[ExecutionSegment] = []

    def close_segment(job: _Job, now: int) -> None:
        if job.segment_start is not None:
            raw_segments.append(
                ExecutionSegment(
                    job.instance.task,
                    job.instance.index,
                    job.segment_start,
                    now,
                )
            )
            job.segment_start = None

    for now in range(end):
        while (
            pending_index < len(pending)
            and pending[pending_index].instance.release <= now
        ):
            active.append(pending[pending_index])
            pending_index += 1
        # deadline accounting (misses recorded exactly once per job)
        for job in active:
            if (
                job.finished_at is None
                and job.remaining > 0
                and job.instance.deadline == now
            ):
                outcome.misses.append(
                    DeadlineMiss(
                        job.instance.task,
                        job.instance.index,
                        job.instance.deadline,
                        None,
                    )
                )
                if miss_policy == "abort":
                    if running is job:
                        close_segment(job, now)
                        running = None
                    job.remaining = 0
                    job.finished_at = now
                    if job.started:
                        open_by_task[job.instance.task] -= 1
                    active[:] = [
                        j for j in active if j.finished_at is None
                    ]

        candidates = [j for j in active if ready(j, now)]
        chosen: _Job | None = None
        if (
            running is not None
            and running.remaining > 0
            and not tasks[running.instance.task].is_preemptive
        ):
            chosen = running  # non-preemptive: runs to completion
        elif candidates:
            chosen = min(candidates, key=priority_key)
            if (
                running is not None
                and running.remaining > 0
                and running in candidates
                and priority_key(running) <= priority_key(chosen)
            ):
                chosen = running
        elif running is not None and running.remaining > 0:
            chosen = running if ready(running, now) else None

        if chosen is not running and running is not None:
            close_segment(running, now)
        if chosen is not None:
            if chosen.segment_start is None:
                chosen.segment_start = now
            if not chosen.started:
                chosen.started = True
                open_by_task[chosen.instance.task] += 1
            chosen.remaining -= 1
            if chosen.remaining == 0:
                chosen.finished_at = now + 1
                open_by_task[chosen.instance.task] -= 1
                active[:] = [
                    j for j in active if j.finished_at is None
                ]
                close_segment(chosen, now + 1)
                response = now + 1 - chosen.instance.arrival
                task = chosen.instance.task
                outcome.response_times[task] = max(
                    outcome.response_times.get(task, 0), response
                )
                if now + 1 > chosen.instance.deadline:
                    # late completion: fix up the recorded miss
                    for i, miss in enumerate(outcome.misses):
                        if (
                            miss.task == task
                            and miss.instance == chosen.instance.index
                            and miss.completion is None
                        ):
                            outcome.misses[i] = DeadlineMiss(
                                miss.task,
                                miss.instance,
                                miss.deadline,
                                now + 1,
                            )
                            break
                chosen = None
        running = chosen

    if running is not None:
        close_segment(running, end)
    for job in jobs:
        if job.finished_at is None and job.remaining > 0:
            already = any(
                m.task == job.instance.task
                and m.instance == job.instance.index
                for m in outcome.misses
            )
            if not already and job.instance.deadline >= end:
                outcome.misses.append(
                    DeadlineMiss(
                        job.instance.task,
                        job.instance.index,
                        job.instance.deadline,
                        None,
                    )
                )
    outcome.segments = sorted(raw_segments, key=lambda s: s.start)
    return outcome


# ----------------------------------------------------------------------
# Canned comparison workloads
# ----------------------------------------------------------------------
def mok_trap() -> EzRTSpec:
    """A set no work-conserving runtime policy schedules (Mok [10]).

    ``LONG`` is a non-preemptive 6-unit task available at time 0;
    ``SHORT`` arrives at time 5 with a 2-unit deadline.  Any
    work-conserving scheduler starts ``LONG`` at 0 and blocks ``SHORT``
    past its deadline; the feasible schedule must leave the processor
    idle until ``SHORT`` is done (or start ``LONG`` late), which the
    pre-runtime scheduler finds once delayed releases are explored
    (``delay_mode="extremes"``).
    """
    return (
        SpecBuilder("mok-trap")
        .processor("proc0")
        .task("SHORT", computation=2, deadline=2, period=20, phase=5,
              scheduling="NP")
        .task("LONG", computation=6, deadline=20, period=20,
              scheduling="NP")
        .build()
    )


def rm_overload_pair() -> EzRTSpec:
    """The classical pair where RM/DM misses and EDF meets (U ≈ 0.97)."""
    return (
        SpecBuilder("rm-overload")
        .processor("proc0")
        .task("T1", computation=2, deadline=5, period=5, scheduling="P")
        .task("T2", computation=4, deadline=7, period=7, scheduling="P")
        .build()
    )


def exclusion_blocking_pair() -> EzRTSpec:
    """Preemptive pair with an exclusion relation that traps EDF.

    ``GUARD`` shares an exclusion with ``ALARM``.  Under EDF and DM the
    earlier-deadline ``BG`` runs first (0–3), pushing ``GUARD``'s
    critical instance to 3–8 — open exactly when ``ALARM`` arrives at 6
    with a 2-unit deadline, so runtime dispatching blocks ``ALARM`` past
    its deadline.  The pre-runtime search backtracks on that miss and
    emits ``GUARD`` at 0–5 instead, which no deadline-ordered
    work-conserving runtime policy ever tries.
    """
    return (
        SpecBuilder("exclusion-blocking")
        .processor("proc0")
        .task("ALARM", computation=2, deadline=2, period=25, phase=6,
              scheduling="P")
        .task("GUARD", computation=5, deadline=25, period=25,
              scheduling="P")
        .task("BG", computation=3, deadline=10, period=25,
              scheduling="P")
        .exclusion("ALARM", "GUARD")
        .build()
    )
