"""Simulated execution substrate (hardware substitute, DESIGN.md S14)."""

from repro.sim.machine import (
    DispatcherMachine,
    MachineResult,
    run_schedule,
)
from repro.sim.trace import EVENT_KINDS, Trace, TraceEvent
from repro.sim.verifier import ensure_trace_ok, verify_trace

__all__ = [
    "DispatcherMachine",
    "EVENT_KINDS",
    "MachineResult",
    "Trace",
    "TraceEvent",
    "ensure_trace_ok",
    "run_schedule",
    "verify_trace",
]
