"""Simulated execution substrate (hardware substitute, DESIGN.md S14)."""

from repro.sim.machine import (
    DispatcherMachine,
    MachineResult,
    run_schedule,
)
from repro.sim.netsim import (
    NetSimRun,
    NetSimulator,
    WALK_POLICIES,
    simulate_net,
)
from repro.sim.trace import EVENT_KINDS, Trace, TraceEvent
from repro.sim.verifier import ensure_trace_ok, verify_trace

__all__ = [
    "DispatcherMachine",
    "EVENT_KINDS",
    "MachineResult",
    "NetSimRun",
    "NetSimulator",
    "Trace",
    "TraceEvent",
    "WALK_POLICIES",
    "ensure_trace_ok",
    "run_schedule",
    "simulate_net",
    "verify_trace",
]
