"""Execution traces of the dispatcher machine.

The simulated target (see :mod:`repro.sim.machine`) records an event
for every observable action: dispatches, starts, preemptions, resumes,
completions and idle periods.  Traces convert to execution segments so
the scheduler's independent validator can re-check them, and provide
the raw material for the trace verifier and the ASCII Gantt renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.scheduler.schedule import ExecutionSegment

#: Event kinds recorded by the dispatcher machine.
EVENT_KINDS = (
    "dispatch",
    "start",
    "preempt",
    "resume",
    "complete",
    "noop-resume",
    "idle",
)


@dataclass(frozen=True)
class TraceEvent:
    """One observable action of the simulated dispatcher.

    Attributes:
        time: simulation tick at which the event happened.
        kind: one of :data:`EVENT_KINDS`.
        task: task name (empty for ``idle``).
        instance: 1-based instance number (0 for ``idle``).
        detail: free-form annotation (who preempted whom, ...).
    """

    time: int
    kind: str
    task: str = ""
    instance: int = 0
    detail: str = ""

    def __str__(self) -> str:
        label = f"{self.task}{self.instance}" if self.task else "-"
        detail = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:>6} {self.kind:<12} {label}{detail}"


@dataclass
class Trace:
    """A complete simulation trace."""

    events: list[TraceEvent] = field(default_factory=list)
    horizon: int = 0

    def record(
        self,
        time: int,
        kind: str,
        task: str = "",
        instance: int = 0,
        detail: str = "",
    ) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self.events.append(
            TraceEvent(time, kind, task, instance, detail)
        )

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Events matching any of the given kinds, in order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def completions(self) -> dict[tuple[str, int], int]:
        """Completion time per (task, instance)."""
        return {
            (e.task, e.instance): e.time
            for e in self.events
            if e.kind == "complete"
        }

    def to_segments(self) -> list[ExecutionSegment]:
        """Reconstruct execution segments from start/stop events.

        A segment opens on ``start``/``resume`` and closes on the next
        ``preempt``/``complete`` of the same instance.
        """
        open_at: dict[tuple[str, int], int] = {}
        segments: list[ExecutionSegment] = []
        for event in self.events:
            key = (event.task, event.instance)
            if event.kind in ("start", "resume"):
                open_at[key] = event.time
            elif event.kind in ("preempt", "complete"):
                begin = open_at.pop(key, None)
                if begin is not None and event.time > begin:
                    segments.append(
                        ExecutionSegment(
                            event.task, event.instance, begin, event.time
                        )
                    )
        for (task, instance), begin in open_at.items():
            if self.horizon > begin:
                segments.append(
                    ExecutionSegment(task, instance, begin, self.horizon)
                )
        return sorted(segments, key=lambda s: (s.start, s.task))

    def busy_time(self) -> int:
        """Total executed time units across all segments."""
        return sum(s.duration for s in self.to_segments())

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        parts = [f"{k}={v}" for k, v in sorted(kinds.items())]
        return (
            f"trace: horizon={self.horizon}, events={len(self.events)} "
            f"({', '.join(parts)})"
        )

    def render(self, limit: int | None = None) -> str:
        """Human-readable event log (optionally truncated)."""
        events: Iterable[TraceEvent] = self.events
        if limit is not None:
            events = self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
