"""Direct TLTS simulation of a time Petri net model.

The dispatcher machine (:mod:`repro.sim.machine`) executes *schedule
tables*; this module simulates the *net itself* by walking the timed
labeled transition system — and it does so on the same incremental
successor engine (:class:`repro.tpn.fastengine.IncrementalEngine`) that
powers the pre-runtime scheduler and the reachability explorer, so one
firing-rule implementation backs search, analysis and simulation alike.

Two walk policies:

* ``"earliest"`` — deterministic as-soon-as-possible execution: at every
  state the candidate minimising ``(delay, priority, index)`` fires at
  its dynamic lower bound.  This is the trajectory a work-conserving
  runtime would take, useful for smoke-testing models and for throughput
  measurement (states/second of raw successor computation);
* ``"random"`` — a seeded random walk: a uniformly chosen fireable
  transition fires at a uniformly chosen delay inside its firing domain
  (unbounded domains fall back to the earliest delay).  Randomized
  walks exercise interleavings the deterministic policies never reach,
  which is how the equivalence suite shakes out semantics bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.tpn.fastengine import IncrementalEngine
from repro.tpn.interval import INF
from repro.tpn.net import CompiledNet

WALK_POLICIES = ("earliest", "random")


@dataclass
class NetSimRun:
    """Outcome of one TLTS walk.

    Attributes:
        firings: the walked run as ``(transition name, delay, absolute
            time)`` triples — the same shape as a firing schedule, so
            feasibility of the walk can be re-proved with
            :meth:`repro.tpn.TLTS.is_feasible_schedule`.
        steps: number of firings taken.
        reached_final: the walk hit the net's desired final marking.
        deadlocked: the walk stopped in a state with no fireable
            transition before reaching the final marking.
        missed_deadline: the walk entered a marking with a token in a
            deadline-miss place (the walk stops there).
        final_marking: marking of the last state.
    """

    firings: list[tuple[str, int, int]] = field(default_factory=list)
    steps: int = 0
    reached_final: bool = False
    deadlocked: bool = False
    missed_deadline: bool = False
    final_marking: tuple[int, ...] = ()

    @property
    def makespan(self) -> int:
        """Absolute time of the last firing."""
        return self.firings[-1][2] if self.firings else 0


class NetSimulator:
    """Walks the TLTS of a compiled net on the incremental engine."""

    def __init__(self, net: CompiledNet, reset_policy: str = "paper"):
        self.net = net
        self.fast = IncrementalEngine(net, reset_policy=reset_policy)

    def run(
        self,
        policy: str = "earliest",
        seed: int = 0,
        max_steps: int = 100_000,
        stop_at_final: bool = True,
        priority_filter: bool = False,
    ) -> NetSimRun:
        """Walk up to ``max_steps`` firings; returns the run record.

        The walk stops at the final marking (unless ``stop_at_final``
        is off), on deadlock, on a missed deadline, or when the step
        budget runs out — whichever comes first.
        """
        if policy not in WALK_POLICIES:
            raise SimulationError(
                f"unknown walk policy {policy!r}; "
                f"expected one of {WALK_POLICIES}"
            )
        if max_steps < 0:
            raise SimulationError("max_steps must be >= 0")
        net = self.net
        fast = self.fast
        rng = random.Random(seed) if policy == "random" else None
        priorities = net.priority
        names = net.transition_names

        state = fast.initial()
        outcome = NetSimRun()
        now = 0
        for _step in range(max_steps):
            if net.has_missed_deadline(state.marking):
                outcome.missed_deadline = True
                break
            if stop_at_final and net.is_final(state.marking):
                outcome.reached_final = True
                break
            candidates = fast.fireable(state, priority_filter)
            if not candidates:
                outcome.deadlocked = True
                break
            if rng is None:
                cand = min(
                    candidates,
                    key=lambda c: (
                        c.dlb,
                        priorities[c.transition],
                        c.transition,
                    ),
                )
                delay = cand.dlb
            else:
                cand = rng.choice(candidates)
                if cand.dub == INF:
                    delay = cand.dlb
                else:
                    delay = rng.randint(cand.dlb, int(cand.dub))
            state = fast.successor(state, cand.transition, delay)
            now += delay
            outcome.firings.append((names[cand.transition], delay, now))
            outcome.steps += 1
        else:
            # step budget exhausted: classify the stopping state anyway
            outcome.missed_deadline = net.has_missed_deadline(
                state.marking
            )
            if stop_at_final:
                outcome.reached_final = net.is_final(state.marking)
        outcome.final_marking = state.marking
        return outcome


def simulate_net(
    net: CompiledNet,
    policy: str = "earliest",
    seed: int = 0,
    max_steps: int = 100_000,
    reset_policy: str = "paper",
) -> NetSimRun:
    """Convenience: one TLTS walk over a compiled net."""
    return NetSimulator(net, reset_policy=reset_policy).run(
        policy=policy, seed=seed, max_steps=max_steps
    )
