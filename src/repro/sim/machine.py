"""A simulated table-driven mono-processor target.

This is the repository's substitute for the paper's microcontroller
targets: a discrete-time machine with a timer interrupt that executes a
generated schedule table exactly the way the emitted dispatcher would —
timer match → context save → call or restore → run until the next
match.  Running the synthesised table on this machine and verifying the
trace demonstrates the "timely and predictable" property end to end
without target hardware.

Fidelity knobs:

* ``dispatch_overhead`` — time units consumed by the dispatcher at
  every table entry (the metamodel's ``dispOveh`` concern); overhead
  eats into the slot of the dispatched instance, surfacing as deadline
  violations in the verifier when the schedule has no slack for it;
* ``actual_durations`` — per-instance actual execution times (≤ WCET)
  for under-run injection: a table-driven dispatcher does not reclaim
  early-completion slack, so the processor idles until the next match
  and later ``preempted`` entries of a finished instance become no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.blocks.composer import ComposedModel
from repro.scheduler.schedule import ScheduleItem, TaskLevelSchedule
from repro.sim.trace import Trace


@dataclass
class _TaskContext:
    """Saved execution context of a preempted/running instance."""

    instance: int
    remaining: int
    started_at: int


@dataclass
class MachineResult:
    """Outcome of one dispatcher-machine run."""

    trace: Trace
    completions: dict[tuple[str, int], int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


class DispatcherMachine:
    """Executes a schedule table on a simulated timer-driven target."""

    def __init__(
        self,
        model: ComposedModel,
        dispatch_overhead: int = 0,
        actual_durations: dict[tuple[str, int], int] | None = None,
    ):
        if dispatch_overhead < 0:
            raise SimulationError("dispatch overhead must be >= 0")
        self.model = model
        self.overhead = dispatch_overhead
        self.wcet = {
            t.name: t.computation for t in model.spec.tasks
        }
        self.actual = dict(actual_durations or {})
        for (task, _instance), duration in self.actual.items():
            if task not in self.wcet:
                raise SimulationError(f"unknown task {task!r}")
            if duration < 1 or duration > self.wcet[task]:
                raise SimulationError(
                    f"actual duration of {task!r} must be in "
                    f"[1, {self.wcet[task]}]"
                )

    def run(
        self,
        items: list[ScheduleItem],
        horizon: int | None = None,
    ) -> MachineResult:
        """Execute the table over one schedule period.

        The machine is *time-triggered*: the running instance executes
        one unit per tick until the next table match preempts it or its
        (actual) duration is exhausted.
        """
        if not items:
            raise SimulationError("schedule table is empty")
        end = horizon if horizon is not None else (
            self.model.required_horizon()
        )
        table = sorted(items, key=lambda i: i.start)
        trace = Trace(horizon=end)
        result = MachineResult(trace=trace)

        running: tuple[str, _TaskContext] | None = None
        saved: dict[str, _TaskContext] = {}
        finished: set[tuple[str, int]] = set()
        instance_counter: dict[str, int] = {}
        index = 0
        overhead_left = 0

        for now in range(end + 1):
            # timer interrupt: dispatch all entries matching `now`
            while index < len(table) and table[index].start == now:
                item = table[index]
                index += 1
                running = self._dispatch(
                    item,
                    now,
                    running,
                    saved,
                    finished,
                    instance_counter,
                    trace,
                    result,
                )
                overhead_left = self.overhead
            if now == end:
                break
            # execute one time unit (dispatcher overhead first)
            if overhead_left > 0:
                overhead_left -= 1
                continue
            if running is None:
                trace.record(now, "idle")
                continue
            task, context = running
            context.remaining -= 1
            if context.remaining == 0:
                trace.record(
                    now + 1, "complete", task, context.instance
                )
                result.completions[(task, context.instance)] = now + 1
                finished.add((task, context.instance))
                running = None

        if running is not None:
            task, context = running
            result.errors.append(
                f"{task} instance {context.instance} still running at "
                f"the horizon with {context.remaining} unit(s) left"
            )
        for task, context in saved.items():
            result.errors.append(
                f"{task} instance {context.instance} preempted and "
                "never resumed"
            )
        return result

    def _dispatch(
        self,
        item: ScheduleItem,
        now: int,
        running: tuple[str, _TaskContext] | None,
        saved: dict[str, _TaskContext],
        finished: set[tuple[str, int]],
        instance_counter: dict[str, int],
        trace: Trace,
        result: MachineResult,
    ) -> tuple[str, _TaskContext] | None:
        trace.record(now, "dispatch", item.task, item.instance)
        # context save of whatever is currently running
        if running is not None:
            task, context = running
            saved[task] = context
            trace.record(
                now,
                "preempt",
                task,
                context.instance,
                detail=f"by {item.task}{item.instance}",
            )
        if item.preempted:
            context = saved.pop(item.task, None)
            if context is None:
                key = (item.task, item.instance)
                if key in finished:
                    # early completion: the resume slot is a no-op
                    trace.record(
                        now, "noop-resume", item.task, item.instance
                    )
                    return None
                result.errors.append(
                    f"table resumes {item.task}{item.instance} at "
                    f"{now} but no context is saved"
                )
                return None
            if context.instance != item.instance:
                result.errors.append(
                    f"table resumes {item.task}{item.instance} at "
                    f"{now} but the saved context is instance "
                    f"{context.instance}"
                )
            trace.record(
                now + self.overhead,
                "resume",
                item.task,
                context.instance,
            )
            return (item.task, context)
        # fresh start
        expected = instance_counter.get(item.task, 0) + 1
        if item.instance != expected:
            result.errors.append(
                f"table starts {item.task}{item.instance} at {now} "
                f"but the next instance should be {expected}"
            )
        instance_counter[item.task] = item.instance
        duration = self.actual.get(
            (item.task, item.instance), self.wcet[item.task]
        )
        # dispatcher overhead delays the first executed unit; the
        # trace records execution intervals, so the start is stamped
        # after the overhead
        trace.record(
            now + self.overhead, "start", item.task, item.instance
        )
        return (
            item.task,
            _TaskContext(
                instance=item.instance,
                remaining=duration,
                started_at=now,
            ),
        )


def run_schedule(
    model: ComposedModel,
    schedule: TaskLevelSchedule,
    dispatch_overhead: int = 0,
    actual_durations: dict[tuple[str, int], int] | None = None,
) -> MachineResult:
    """Convenience: execute an extracted schedule on the machine."""
    machine = DispatcherMachine(
        model,
        dispatch_overhead=dispatch_overhead,
        actual_durations=actual_durations,
    )
    return machine.run(schedule.items)
