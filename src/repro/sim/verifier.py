"""Trace verification: the executed behaviour meets the specification.

Closes the loop of the reproduction: the specification constraints are
re-checked on the *executed* trace of the dispatcher machine (not on
the planned schedule), so the whole pipeline — spec → TPN → search →
table → dispatcher — is validated end to end.  Checks:

* machine integrity errors (bad resume, wrong instance order, work left
  at the horizon);
* every instance completes by its absolute deadline;
* every instance starts no earlier than its release;
* executed time equals WCET (or the injected actual duration);
* non-preemptive instances run in one piece;
* precedence and exclusion relations hold on the trace;
* processor mutual exclusion (no overlapping segments).
"""

from __future__ import annotations

from repro.errors import TraceVerificationError
from repro.blocks.composer import ComposedModel
from repro.scheduler.schedule import (
    TaskLevelSchedule,
    validate_schedule,
)
from repro.sim.machine import MachineResult


def verify_trace(
    model: ComposedModel,
    result: MachineResult,
    actual_durations: dict[tuple[str, int], int] | None = None,
) -> list[str]:
    """Collect every violation of the executed trace (empty = clean)."""
    violations = list(result.errors)
    actual = dict(actual_durations or {})
    segments = result.trace.to_segments()

    if actual:
        # WCET under-run injection: check the executed durations
        # directly, then let the schedule validator check everything
        # except total-duration (which it would report against WCET).
        executed: dict[tuple[str, int], int] = {}
        for segment in segments:
            key = (segment.task, segment.instance)
            executed[key] = executed.get(key, 0) + segment.duration
        for key, duration in executed.items():
            expected = actual.get(
                key, model.spec.task(key[0]).computation
            )
            if duration != expected:
                violations.append(
                    f"{key[0]} instance {key[1]}: executed {duration} "
                    f"units, expected {expected}"
                )
        violations.extend(
            v
            for v in validate_schedule(
                model,
                TaskLevelSchedule(
                    segments=segments,
                    items=[],
                    schedule_period=model.schedule_period,
                ),
                check_messages=False,
            )
            if "WCET is" not in v
        )
    else:
        violations.extend(
            validate_schedule(
                model,
                TaskLevelSchedule(
                    segments=segments,
                    items=[],
                    schedule_period=model.schedule_period,
                ),
                check_messages=False,
            )
        )
    return violations


def ensure_trace_ok(
    model: ComposedModel,
    result: MachineResult,
    actual_durations: dict[tuple[str, int], int] | None = None,
) -> None:
    """Raise :class:`TraceVerificationError` on any violation."""
    violations = verify_trace(model, result, actual_durations)
    if violations:
        raise TraceVerificationError(violations)
