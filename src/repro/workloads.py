"""Synthetic workload generation for scaling studies.

The paper evaluates on one case study; the scaling benches sweep the
search over synthetic task sets produced here.  Generation follows the
standard recipe of the real-time literature:

* utilisations by the UUniFast algorithm (Bini/Buttazzo), which samples
  uniformly from the simplex ``Σ U_i = U``;
* periods drawn from a divisor-friendly grid so hyper-periods stay
  bounded (pre-runtime scheduling explodes with the LCM, a property the
  benches surface deliberately);
* computation ``c_i = max(1, round(U_i · p_i))``, constrained deadlines
  sampled in ``[c_i + slack, p_i]``.

Everything is deterministic given the ``seed``.
"""

from __future__ import annotations

import random

from repro.errors import SpecificationError
from repro.spec.builder import SpecBuilder
from repro.spec.model import EzRTSpec
from repro.tpn.interval import TimeInterval
from repro.tpn.net import TimePetriNet

#: Divisor-friendly period grid (pairwise LCM ≤ 6000).
PERIOD_GRID = (20, 25, 40, 50, 100, 125, 200, 250, 500, 1000)


def uunifast(
    n: int, total_utilization: float, rng: random.Random
) -> list[float]:
    """UUniFast: ``n`` utilisations summing to ``total_utilization``."""
    if n < 1:
        raise SpecificationError("need at least one task")
    if not 0.0 < total_utilization <= 1.0:
        raise SpecificationError(
            "total utilisation must be in (0, 1] for one processor"
        )
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_sum = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_sum)
        remaining = next_sum
    utilizations.append(remaining)
    return utilizations


def random_task_set(
    n_tasks: int,
    total_utilization: float = 0.5,
    seed: int = 0,
    preemptive_fraction: float = 0.0,
    deadline_slack: float = 1.0,
    period_grid: tuple[int, ...] = PERIOD_GRID,
    name: str | None = None,
) -> EzRTSpec:
    """Generate a schedulable-looking random specification.

    ``deadline_slack`` scales deadlines between the minimum feasible
    (``c``) and the period: 1.0 gives implicit deadlines (``d = p``),
    smaller values tighten them.
    """
    if not 0.0 <= preemptive_fraction <= 1.0:
        raise SpecificationError(
            "preemptive fraction must be within [0, 1]"
        )
    if not 0.0 < deadline_slack <= 1.0:
        raise SpecificationError("deadline slack must be in (0, 1]")
    rng = random.Random(seed)
    utilizations = uunifast(n_tasks, total_utilization, rng)
    builder = SpecBuilder(
        name or f"random-u{total_utilization:.2f}-n{n_tasks}-s{seed}"
    ).processor("proc0")
    for index, utilization in enumerate(utilizations):
        period = rng.choice(period_grid)
        computation = max(1, round(utilization * period))
        computation = min(computation, period)
        minimum_deadline = computation
        deadline = minimum_deadline + round(
            deadline_slack * (period - minimum_deadline)
        )
        deadline = max(computation, min(deadline, period))
        preemptive = rng.random() < preemptive_fraction
        builder.task(
            f"T{index}",
            computation=computation,
            deadline=deadline,
            period=period,
            scheduling="P" if preemptive else "NP",
        )
    return builder.build()


def time_scaled_task_set(
    spec: EzRTSpec, scale: int, name: str | None = None
) -> EzRTSpec:
    """Multiply every timing attribute of a specification by ``scale``.

    Time-scaling preserves the scheduling *structure* — the same
    tasks, relations, messages and processor assignments, so the same
    grant decisions arise in the same order — while multiplying the
    number of timed states roughly linearly.  This is the knob the
    parallel benches use to grow an instance until process startup
    noise is negligible.  Timing fields scale (computation, deadline,
    period, release, phase, message communication); structure
    (precedence/exclusion relations, energy, source code, bus grants)
    carries over unchanged.
    """
    if scale < 1:
        raise SpecificationError("scale must be >= 1")
    builder = SpecBuilder(
        name or f"{spec.name}-x{scale}", disp_oveh=spec.disp_oveh
    )
    for processor in spec.processors:
        builder.processor(processor.name)
    for task in spec.tasks:
        builder.task(
            task.name,
            computation=task.computation * scale,
            deadline=task.deadline * scale,
            period=task.period * scale,
            release=task.release * scale,
            phase=task.phase * scale,
            scheduling=task.scheduling,
            energy=task.energy,
            processor=task.processor,
            code=task.code.content if task.code else None,
        )
    exclusions: set[tuple[str, str]] = set()
    for task in spec.tasks:
        for after in task.precedes_tasks:
            builder.precedence(task.name, after)
        for other in task.excludes_tasks:
            exclusions.add(tuple(sorted((task.name, other))))
    for first, second in sorted(exclusions):
        builder.exclusion(first, second)
    for message in spec.messages:
        builder.message(
            message.name,
            sender=message.sender,
            receiver=message.precedes,
            communication=message.communication * scale,
            bus=message.bus,
            grant_bus=message.grant_bus * scale,
        )
    return builder.build()


def hard_portfolio_task_set(scale: int = 2) -> EzRTSpec:
    """The portfolio bench's hard model: feasible but order-hostile.

    A fully preemptive five-task set at utilisation 0.85 with tight
    deadlines (``random_task_set(5, 0.85, seed=7,
    preemptive_fraction=1.0, deadline_slack=0.7)``), time-scaled ×2 by
    default.  Preemption points make every grant a genuine branch, and
    on this instance the default ``(delay, priority, index)`` ordering
    commits to early decisions it can only refute hundreds of
    thousands of states later, while alternative orderings (seeded
    shuffles in particular) reach a schedule in a few thousand states
    — the heavy-tailed gap the portfolio race exploits.
    """
    base = random_task_set(
        5,
        0.85,
        seed=7,
        preemptive_fraction=1.0,
        deadline_slack=0.7,
    )
    return time_scaled_task_set(
        base, scale, name=f"portfolio-hard-x{scale}"
    )


def wide_interval_job_net(
    n_jobs: int = 3,
    width: int = 6,
    computations: tuple[int, ...] = (1, 2, 2),
    release_offsets: tuple[int, ...] = (0, 1, 2),
    feasible: bool = True,
    name: str | None = None,
) -> TimePetriNet:
    """A job-shop TPN whose release transitions have *wide* intervals.

    This is the workload family the dense-time state-class engine is
    built for.  ``n_jobs`` one-shot jobs share a single processor:
    each job is released within a wide window
    ``[offset_i, offset_i + width]``, grabs the processor through an
    immediate grant, computes for ``computations[i]`` time units and
    releases it.  The desired final marking is "every job done, the
    processor returned".

    The discrete-time TLTS of this net grows with ``width`` — every
    integer release time is a distinct clock valuation — while the
    state-class graph is *width-independent* (one DBM covers a whole
    release window), which is exactly the states-explored gap
    ``benchmarks/bench_stateclass.py`` gates on.

    ``feasible=False`` adds an unreachable sentinel place to the final
    marking, turning the synthesis into an exhaustive refutation: both
    engines must then sweep their entire space, making the state
    counts directly comparable.
    """
    if n_jobs < 1:
        raise SpecificationError("need at least one job")
    if width < 0:
        raise SpecificationError("release window width must be >= 0")
    net = TimePetriNet(
        name or f"wide-interval-n{n_jobs}-w{width}"
    )
    net.add_place("proc", marking=1)
    for i in range(n_jobs):
        computation = computations[i % len(computations)]
        offset = release_offsets[i % len(release_offsets)]
        net.add_place(f"ready{i}", marking=1)
        net.add_place(f"pend{i}")
        net.add_place(f"run{i}")
        net.add_place(f"done{i}")
        net.add_transition(
            f"release{i}", TimeInterval(offset, offset + width)
        )
        net.add_transition(f"grant{i}", TimeInterval(0, 0))
        net.add_transition(
            f"compute{i}", TimeInterval(computation, computation)
        )
        net.add_arc(f"ready{i}", f"release{i}")
        net.add_arc(f"release{i}", f"pend{i}")
        net.add_arc(f"pend{i}", f"grant{i}")
        net.add_arc("proc", f"grant{i}")
        net.add_arc(f"grant{i}", f"run{i}")
        net.add_arc(f"run{i}", f"compute{i}")
        net.add_arc(f"compute{i}", f"done{i}")
        net.add_arc(f"compute{i}", "proc")
    final = {f"done{i}": 1 for i in range(n_jobs)}
    final["proc"] = 1
    if not feasible:
        net.add_place("never")
        final["never"] = 1
    net.set_final_marking(final)
    return net


def wide_interval_race_net(
    n_jobs: int = 4, width: int = 24
) -> TimePetriNet:
    """The mixed-engine portfolio bench's wide-interval race model.

    An exhaustively-infeasible :func:`wide_interval_job_net` sized so
    the two engine families genuinely diverge: under a delay-
    enumerating discrete search (``delay_mode="full"``) the integer
    state space grows with the release-window ``width``, while the
    state-class graph stays width-independent — so a
    ``stateclass:earliest`` portfolio slot reaches the definitive
    infeasible verdict well before the discrete slots even on a
    single time-shared core.  One definition shared by
    ``benchmarks/bench_parallel_dfs.py`` and
    :func:`repro.scheduler.adaptive.bench_model_families`, so the
    recorded winner statistics warm-start the same fingerprint a live
    race computes.
    """
    return wide_interval_job_net(
        n_jobs=n_jobs,
        width=width,
        computations=(1, 2, 2, 3),
        release_offsets=(0, 1, 2, 3),
        feasible=False,
        name=f"wide-race-n{n_jobs}-w{width}",
    )


def wide_interval_family(
    widths: tuple[int, ...] = (4, 6, 8),
    n_jobs: int = 3,
    feasible: bool = False,
):
    """The bench's wide-interval sweep: one net per window width.

    Yields ``(label, TimePetriNet)`` pairs with every non-width
    parameter held fixed, so state counts across the family isolate
    the cost of interval width alone.
    """
    for width in widths:
        yield (
            f"n{n_jobs}-w{width}",
            wide_interval_job_net(
                n_jobs=n_jobs, width=width, feasible=feasible
            ),
        )


def campaign_task_sets(
    n_tasks_values,
    utilizations,
    seeds,
    preemptive_fraction: float = 0.0,
    deadline_slack: float = 1.0,
    period_grid: tuple[int, ...] = PERIOD_GRID,
):
    """Deterministic ``(params, spec)`` sweep over a campaign grid.

    Iterates the cartesian product ``n_tasks × utilization × seed`` in
    stable nested order (outermost varies slowest), yielding the
    parameter dict alongside the generated specification — the raw
    material of :func:`repro.batch.run_campaign`.  Everything is
    deterministic given the grid, so two sweeps of the same grid
    produce identical specifications (up to auto-assigned ``ez...``
    identifiers, which the batch cache ignores).
    """
    for n_tasks in n_tasks_values:
        for utilization in utilizations:
            for seed in seeds:
                params = {
                    "n_tasks": n_tasks,
                    "utilization": utilization,
                    "seed": seed,
                }
                yield params, random_task_set(
                    n_tasks,
                    utilization,
                    seed=seed,
                    preemptive_fraction=preemptive_fraction,
                    deadline_slack=deadline_slack,
                    period_grid=period_grid,
                )


def random_task_set_with_relations(
    n_tasks: int,
    total_utilization: float = 0.4,
    seed: int = 0,
    precedence_pairs: int = 1,
    exclusion_pairs: int = 1,
    name: str | None = None,
) -> EzRTSpec:
    """Random set with precedence chains and exclusion pairs.

    Precedence requires equal periods, so related tasks are forced onto
    a common period before relations are drawn.
    """
    rng = random.Random(seed)
    spec = random_task_set(
        n_tasks,
        total_utilization,
        seed=seed,
        name=name
        or f"random-rel-n{n_tasks}-s{seed}",
    )
    names = list(spec.task_names())
    # equalise periods of the first 2 * precedence_pairs tasks
    added_prec = 0
    for i in range(precedence_pairs):
        if 2 * i + 1 >= len(names):
            break
        before = spec.task(names[2 * i])
        after = spec.task(names[2 * i + 1])
        common = max(before.period, after.period)
        for task in (before, after):
            task.period = common
            task.deadline = min(task.deadline, common)
            if task.deadline < task.computation:
                task.deadline = task.computation
        spec.add_precedence(before.name, after.name)
        added_prec += 1
    added_excl = 0
    attempts = 0
    while added_excl < exclusion_pairs and attempts < 50:
        attempts += 1
        a, b = rng.sample(names, 2)
        pair = tuple(sorted((a, b)))
        if pair in {tuple(sorted(p)) for p in spec.exclusion_pairs()}:
            continue
        if (a, b) in spec.precedence_pairs() or (
            b,
            a,
        ) in spec.precedence_pairs():
            continue
        spec.add_exclusion(a, b)
        added_excl += 1
    return spec
