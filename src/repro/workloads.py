"""Synthetic workload generation for scaling studies.

The paper evaluates on one case study; the scaling benches sweep the
search over synthetic task sets produced here.  Generation follows the
standard recipe of the real-time literature:

* utilisations by the UUniFast algorithm (Bini/Buttazzo), which samples
  uniformly from the simplex ``Σ U_i = U``;
* periods drawn from a divisor-friendly grid so hyper-periods stay
  bounded (pre-runtime scheduling explodes with the LCM, a property the
  benches surface deliberately);
* computation ``c_i = max(1, round(U_i · p_i))``, constrained deadlines
  sampled in ``[c_i + slack, p_i]``.

Everything is deterministic given the ``seed``.
"""

from __future__ import annotations

import random

from repro.errors import SpecificationError
from repro.spec.builder import SpecBuilder
from repro.spec.model import EzRTSpec

#: Divisor-friendly period grid (pairwise LCM ≤ 6000).
PERIOD_GRID = (20, 25, 40, 50, 100, 125, 200, 250, 500, 1000)


def uunifast(
    n: int, total_utilization: float, rng: random.Random
) -> list[float]:
    """UUniFast: ``n`` utilisations summing to ``total_utilization``."""
    if n < 1:
        raise SpecificationError("need at least one task")
    if not 0.0 < total_utilization <= 1.0:
        raise SpecificationError(
            "total utilisation must be in (0, 1] for one processor"
        )
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_sum = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_sum)
        remaining = next_sum
    utilizations.append(remaining)
    return utilizations


def random_task_set(
    n_tasks: int,
    total_utilization: float = 0.5,
    seed: int = 0,
    preemptive_fraction: float = 0.0,
    deadline_slack: float = 1.0,
    period_grid: tuple[int, ...] = PERIOD_GRID,
    name: str | None = None,
) -> EzRTSpec:
    """Generate a schedulable-looking random specification.

    ``deadline_slack`` scales deadlines between the minimum feasible
    (``c``) and the period: 1.0 gives implicit deadlines (``d = p``),
    smaller values tighten them.
    """
    if not 0.0 <= preemptive_fraction <= 1.0:
        raise SpecificationError(
            "preemptive fraction must be within [0, 1]"
        )
    if not 0.0 < deadline_slack <= 1.0:
        raise SpecificationError("deadline slack must be in (0, 1]")
    rng = random.Random(seed)
    utilizations = uunifast(n_tasks, total_utilization, rng)
    builder = SpecBuilder(
        name or f"random-u{total_utilization:.2f}-n{n_tasks}-s{seed}"
    ).processor("proc0")
    for index, utilization in enumerate(utilizations):
        period = rng.choice(period_grid)
        computation = max(1, round(utilization * period))
        computation = min(computation, period)
        minimum_deadline = computation
        deadline = minimum_deadline + round(
            deadline_slack * (period - minimum_deadline)
        )
        deadline = max(computation, min(deadline, period))
        preemptive = rng.random() < preemptive_fraction
        builder.task(
            f"T{index}",
            computation=computation,
            deadline=deadline,
            period=period,
            scheduling="P" if preemptive else "NP",
        )
    return builder.build()


def campaign_task_sets(
    n_tasks_values,
    utilizations,
    seeds,
    preemptive_fraction: float = 0.0,
    deadline_slack: float = 1.0,
    period_grid: tuple[int, ...] = PERIOD_GRID,
):
    """Deterministic ``(params, spec)`` sweep over a campaign grid.

    Iterates the cartesian product ``n_tasks × utilization × seed`` in
    stable nested order (outermost varies slowest), yielding the
    parameter dict alongside the generated specification — the raw
    material of :func:`repro.batch.run_campaign`.  Everything is
    deterministic given the grid, so two sweeps of the same grid
    produce identical specifications (up to auto-assigned ``ez...``
    identifiers, which the batch cache ignores).
    """
    for n_tasks in n_tasks_values:
        for utilization in utilizations:
            for seed in seeds:
                params = {
                    "n_tasks": n_tasks,
                    "utilization": utilization,
                    "seed": seed,
                }
                yield params, random_task_set(
                    n_tasks,
                    utilization,
                    seed=seed,
                    preemptive_fraction=preemptive_fraction,
                    deadline_slack=deadline_slack,
                    period_grid=period_grid,
                )


def random_task_set_with_relations(
    n_tasks: int,
    total_utilization: float = 0.4,
    seed: int = 0,
    precedence_pairs: int = 1,
    exclusion_pairs: int = 1,
    name: str | None = None,
) -> EzRTSpec:
    """Random set with precedence chains and exclusion pairs.

    Precedence requires equal periods, so related tasks are forced onto
    a common period before relations are drawn.
    """
    rng = random.Random(seed)
    spec = random_task_set(
        n_tasks,
        total_utilization,
        seed=seed,
        name=name
        or f"random-rel-n{n_tasks}-s{seed}",
    )
    names = list(spec.task_names())
    # equalise periods of the first 2 * precedence_pairs tasks
    added_prec = 0
    for i in range(precedence_pairs):
        if 2 * i + 1 >= len(names):
            break
        before = spec.task(names[2 * i])
        after = spec.task(names[2 * i + 1])
        common = max(before.period, after.period)
        for task in (before, after):
            task.period = common
            task.deadline = min(task.deadline, common)
            if task.deadline < task.computation:
                task.deadline = task.computation
        spec.add_precedence(before.name, after.name)
        added_prec += 1
    added_excl = 0
    attempts = 0
    while added_excl < exclusion_pairs and attempts < 50:
        attempts += 1
        a, b = rng.sample(names, 2)
        pair = tuple(sorted((a, b)))
        if pair in {tuple(sorted(p)) for p in spec.exclusion_pairs()}:
            continue
        if (a, b) in spec.precedence_pairs() or (
            b,
            a,
        ) in spec.precedence_pairs():
            continue
        spec.add_exclusion(a, b)
        added_excl += 1
    return spec
