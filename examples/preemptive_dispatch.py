#!/usr/bin/env python3
"""Preemptive dispatching: reproduce the paper's Fig. 8 schedule table.

The paper illustrates the generated ``struct ScheduleItem`` array with
a preemptive application: two instances each of TaskA/TaskB/TaskC, one
of TaskD, with B preempted twice and the table's ``preempted`` flag
driving context restore in the dispatcher.  The parameters are not
given in the paper; the reverse-engineered set in
``repro.spec.fig8_preemptive`` yields a table with the same shape.

The script synthesises the schedule, prints the table in the exact
figure format, generates the C project, compiles it with the system C
compiler (hostsim target) and runs it; finally it executes the same
table on the Python dispatcher machine with a dispatcher-overhead
sweep, showing when overhead starts breaking deadlines.

Run:  python examples/preemptive_dispatch.py
"""

import os
import shutil
import tempfile

from repro import (
    compose,
    fig8_preemptive,
    find_schedule,
    generate_project,
    run_schedule,
    schedule_from_result,
    verify_trace,
)
from repro.codegen import render_paper_style


def main() -> None:
    spec = fig8_preemptive()
    model = compose(spec)
    result = find_schedule(model)
    assert result.feasible
    schedule = schedule_from_result(model, result)

    print("Fig. 8 — example of a schedule table (reproduced)")
    print()
    print(render_paper_style(schedule.items))
    print()
    resumes = sum(1 for item in schedule.items if item.preempted)
    preemptions = sum(
        1 for item in schedule.items if "preempts" in item.comment
    )
    print(
        f"{len(schedule.items)} entries, {preemptions} preemptions, "
        f"{resumes} resumes (paper's table: 11 entries, 5 resumes)"
    )
    print()

    # generate + compile + run the C project with the host compiler
    project = generate_project(model, schedule, target="hostsim")
    workdir = tempfile.mkdtemp(prefix="ezrt_fig8_")
    try:
        if shutil.which("cc"):
            output = project.compile_and_run(workdir)
            print("generated C project output (hostsim):")
            print(output)
        else:
            paths = project.write(workdir)
            print(
                f"no C compiler on PATH; wrote {len(paths)} files to "
                f"{workdir}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # dispatcher overhead sweep on the Python machine
    print("dispatcher overhead sweep (simulated target):")
    for overhead in (0, 1, 2):
        machine_result = run_schedule(
            model, schedule, dispatch_overhead=overhead
        )
        violations = verify_trace(model, machine_result)
        verdict = (
            "all deadlines met"
            if not violations
            else f"{len(violations)} violation(s), e.g. {violations[0]}"
        )
        print(f"  overhead={overhead}: {verdict}")
    print(
        "\n(the schedule was synthesised for zero overhead; the sweep "
        "shows how much dispatcher cost this table tolerates — the "
        "dispOveh metamodel flag exists exactly for this concern)"
    )


if __name__ == "__main__":
    main()
