#!/usr/bin/env python3
"""The full model-driven workflow of the paper's Fig. 6, file by file.

Walks the tool architecture end to end through its interchange
formats:

1. start from the paper's published ez-spec DSL snippet (Fig. 7) —
   parsed verbatim;
2. extend it with a message-mediated precedence (bus communication,
   exercising the Message metamodel class of Fig. 5);
3. write the spec back to XML (round-trip);
4. translate to the time Petri net and export PNML (ISO/IEC 15909-2);
5. re-read the PNML and prove the model survived the round-trip;
6. schedule and print the result, including the bus transfer;
7. run the runtime baselines on the same spec for comparison.

Run:  python examples/dsl_workflow.py
"""

import os
import tempfile

from repro import compose, find_schedule, schedule_from_result
from repro.pnml import dumps as pnml_dumps, loads as pnml_loads
from repro.scheduler import simulate_runtime
from repro.spec import (
    PAPER_FIG7_SNIPPET,
    SpecBuilder,
    dumps as dsl_dumps,
    loads as dsl_loads,
)


def main() -> None:
    # 1. parse the paper's own DSL fragment ----------------------------
    spec = dsl_loads(PAPER_FIG7_SNIPPET)
    print(
        f"parsed Fig. 7 snippet: {spec.name!r} with tasks "
        f"{[t.name for t in spec.tasks]}, precedence "
        f"{spec.precedence_pairs()}"
    )

    # 2. a richer spec with a message on a bus -------------------------
    rich = (
        SpecBuilder("sensor-network-node")
        .processor("mcu0")
        .task("SAMPLE", computation=2, deadline=10, period=25,
              code="adc_sample();")
        .task("FILTER", computation=3, deadline=20, period=25,
              code="fir_filter();")
        .task("TX", computation=4, deadline=25, period=25,
              code="radio_tx();")
        .task("HOUSE", computation=3, deadline=50, period=50,
              code="housekeeping();")
        .precedence("SAMPLE", "FILTER")
        .message("m_filtered", sender="FILTER", receiver="TX",
                 communication=2, bus="spi0", grant_bus=1)
        .build()
    )

    # 3. DSL round-trip -------------------------------------------------
    document = dsl_dumps(rich)
    reparsed = dsl_loads(document)
    assert [t.name for t in reparsed.tasks] == [
        t.name for t in rich.tasks
    ]
    assert reparsed.messages[0].bus == "spi0"
    with tempfile.NamedTemporaryFile(
        "w", suffix=".xml", delete=False
    ) as handle:
        handle.write(document)
        xml_path = handle.name
    print(f"DSL round-trip OK; spec written to {xml_path}")

    # 4. TPN + PNML ------------------------------------------------------
    model = compose(reparsed)
    pnml_text = pnml_dumps(model.net)
    print(
        f"TPN: {model.net.stats()} — PNML document is "
        f"{len(pnml_text.splitlines())} lines"
    )

    # 5. PNML round-trip -------------------------------------------------
    reloaded = pnml_loads(pnml_text)
    assert reloaded.stats() == model.net.stats()
    assert (
        reloaded.transition("tr_SAMPLE").interval
        == model.net.transition("tr_SAMPLE").interval
    )
    print("PNML round-trip OK (structure, intervals, final marking)")

    # 6. schedule ---------------------------------------------------------
    result = find_schedule(model)
    assert result.feasible
    schedule = schedule_from_result(model, result)
    print(
        f"schedule: {len(schedule.items)} table entries, bus "
        f"transfers {[(b.message, b.start, b.end) for b in schedule.bus_segments]}"
    )
    tx = schedule.segments_of("TX", 1)[0]
    transfer = schedule.bus_segments[0]
    print(
        f"  TX starts at {tx.start} — after m_filtered delivery at "
        f"{transfer.end} (bus grant + 2-unit transfer on spi0)"
    )

    # 7. runtime baselines ------------------------------------------------
    print("\nruntime baselines on the same spec:")
    for policy in ("edf", "dm", "rm"):
        print(f"  {simulate_runtime(reparsed, policy).summary()}")
    print(
        "\n(the pre-runtime table needs no runtime scheduler at all — "
        "only the table, a timer and the small dispatcher)"
    )
    os.unlink(xml_path)


if __name__ == "__main__":
    main()
