#!/usr/bin/env python3
"""The paper's Section-5 case study: the mine pump control system.

"This system is a simplified pump control system for a mining
environment.  The system is used to pump mine-water, collected in a
sump at the bottom of the shelf to the surface. [...] The pump should
only be allowed to operate if the methane level (CH4) in the mine is
below a critical level."

Reproduces the published numbers:

* 10 tasks (Table 1), schedule period 30 000, 782 task instances;
* a feasible schedule found by the depth-first search;
* minimum number of states 3130; states visited close to the paper's
  3268; milliseconds-scale search time;

then goes beyond the paper's text: validates the schedule against every
specification constraint, executes it on the simulated dispatcher for
the full hyper-period, and generates + optionally writes the scheduled
C project.

Run:  python examples/mine_pump.py [output-dir]
"""

import sys

from repro import (
    compose,
    find_schedule,
    generate_project,
    mine_pump,
    run_schedule,
    schedule_from_result,
    verify_trace,
)
from repro.analysis import full_report, render_gantt
from repro.spec import MINE_PUMP_TABLE1


def main() -> None:
    print("Table 1 — Specification for Mine Pump")
    print(f"{'task':<6} {'Computation':>11} {'Deadline':>9} {'Period':>7}")
    for name, computation, deadline, period in MINE_PUMP_TABLE1:
        print(
            f"{name:<6} {computation:>11} {deadline:>9} {period:>7}"
        )
    print()

    spec = mine_pump()
    model = compose(spec)
    result = find_schedule(model)
    assert result.feasible, "the mine pump must be schedulable"
    schedule = schedule_from_result(model, result)

    print(full_report(model, result, schedule))
    print()
    print(
        "paper reference: 782 instances, 3268 states searched "
        "(minimum 3130), 330 ms on an AMD Athlon 1800"
    )
    print()

    # first 200 time units of the synthesised schedule
    print(render_gantt(model, schedule.segments, 0, 200))
    print()

    # execute the whole hyper-period on the simulated dispatcher
    machine_result = run_schedule(model, schedule)
    violations = verify_trace(model, machine_result)
    print(machine_result.trace.summary())
    if violations:
        print("TRACE VIOLATIONS:")
        for violation in violations[:10]:
            print(f"  - {violation}")
        raise SystemExit(1)
    print(
        f"dispatcher simulation: {len(machine_result.completions)} "
        "instances completed, zero deadline misses over "
        f"{model.schedule_period} time units"
    )

    # scheduled C project
    project = generate_project(model, schedule, target="hostsim")
    if len(sys.argv) > 1:
        paths = project.write(sys.argv[1])
        print(f"wrote {len(paths)} generated files to {sys.argv[1]}")
    else:
        table = project.files["ezrt_schedule.c"]
        print()
        print("generated schedule table (first 12 lines):")
        print("\n".join(table.splitlines()[:12]))


if __name__ == "__main__":
    main()
