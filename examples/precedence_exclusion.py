#!/usr/bin/env python3
"""Inter-task relations: the models of the paper's Figs. 3 and 4.

Builds both illustration nets with the *expanded* block style (the one
drawn in the figures), prints their structure — including the
``pprec``/``pexcl`` places and the figure's arc weights — synthesises
their schedules and shows that:

* in Fig. 3, every instance of T2 starts only after the same-index
  instance of T1 finished (precedence);
* in Fig. 4, the executions of the two preemptive tasks never
  interleave despite both being preemptible (exclusion); a third run
  without the exclusion relation shows interleaving does happen
  otherwise — the relation, not luck, produces the separation.

Run:  python examples/precedence_exclusion.py
"""

from repro import (
    BlockStyle,
    ComposerOptions,
    SpecBuilder,
    compose,
    find_schedule,
    fig3_precedence,
    fig4_exclusion,
    schedule_from_result,
)
from repro.analysis import render_gantt


def show_fig3() -> None:
    print("=" * 64)
    print("Fig. 3 — precedence relation model (T1 PRECEDES T2)")
    print("=" * 64)
    spec = fig3_precedence()
    model = compose(
        spec, ComposerOptions(style=BlockStyle.EXPANDED)
    )
    net = model.net

    print("figure intervals reproduced:")
    for name in ("tr_T1", "tc_T1", "td_T1", "tr_T2", "tc_T2", "td_T2"):
        transition = net.transition(name)
        print(f"  {name:<7} {transition.interval}")
    weight = net.output_weight("tph_T1", "pwa_T1")
    print(f"  arrival arc weight a_1 = {weight} (figure shows 2)")
    print(f"  precedence place exists: {net.has_place('pprec_T1_T2')}")

    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    print(f"\nschedule found ({result.stats.states_visited} states):")
    for instance in (1, 2):
        t1 = schedule.segments_of("T1", instance)
        t2 = schedule.segments_of("T2", instance)
        print(
            f"  instance {instance}: T1 ends {t1[-1].end}, "
            f"T2 starts {t2[0].start} "
            f"({'OK' if t2[0].start >= t1[-1].end else 'VIOLATION'})"
        )
    print()
    print(render_gantt(model, schedule.segments, 0, 300))
    print()


def show_fig4() -> None:
    print("=" * 64)
    print("Fig. 4 — exclusion relation model (T0 EXCLUDES T2)")
    print("=" * 64)
    spec = fig4_exclusion()
    model = compose(
        spec, ComposerOptions(style=BlockStyle.EXPANDED)
    )
    net = model.net

    print("figure structure reproduced:")
    print(
        f"  tc_T0 interval {net.transition('tc_T0').interval} "
        "(preemptive unit subtasks)"
    )
    print(
        f"  weight-c arcs: tl_T0->pwg_T0 = "
        f"{net.output_weight('tl_T0', 'pwg_T0')} (figure: 10), "
        f"pwf_T2->tf_T2 = {net.input_weight('pwf_T2', 'tf_T2')} "
        "(figure: 20)"
    )
    excl = net.place("pexcl_T0_T2")
    print(
        f"  shared exclusion place pexcl_T0_T2: marking "
        f"{excl.marking} (single token)"
    )

    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    print(f"\nschedule found ({result.stats.states_visited} states):")
    for task in ("T0", "T2"):
        for instance in (1, 2):
            segs = schedule.segments_of(task, instance)
            envelope = f"[{segs[0].start}, {segs[-1].end})"
            print(
                f"  {task} instance {instance}: envelope {envelope}, "
                f"{len(segs)} segment(s)"
            )
    print()
    print(render_gantt(model, schedule.segments, 0, 300))
    print()


def show_exclusion_matters() -> None:
    print("=" * 64)
    print("Control experiment: same tasks WITHOUT the exclusion")
    print("=" * 64)
    spec = (
        SpecBuilder("fig4-no-exclusion")
        .processor("proc0")
        .task("T0", computation=10, deadline=100, period=250,
              scheduling="P")
        .task("T2", computation=20, deadline=150, period=250,
              scheduling="P")
        .task("T4", computation=1, deadline=500, period=500,
              scheduling="NP")
        .build()
    )
    model = compose(spec)
    result = find_schedule(model)
    schedule = schedule_from_result(model, result)
    t0 = schedule.segments_of("T0", 1)
    t2 = schedule.segments_of("T2", 1)
    t0_env = (t0[0].start, t0[-1].end)
    interleaved = any(
        s.start < t0_env[1] and s.end > t0_env[0] for s in t2
    )
    print(
        f"  T0 envelope [{t0_env[0]}, {t0_env[1]}), T2 segments "
        f"{[(s.start, s.end) for s in t2]}"
    )
    print(
        "  interleaving without exclusion:",
        "yes — the relation is what prevents it" if interleaved
        else "no (this schedule happened to separate them)",
    )


def main() -> None:
    show_fig3()
    show_fig4()
    show_exclusion_matters()


if __name__ == "__main__":
    main()
