#!/usr/bin/env python3
"""Quickstart: specify, schedule, generate and execute in ~40 lines.

A two-task sensing/actuation loop: the actuator may only run after the
sensor of the same period finished (a precedence relation).  The script
walks the whole ezRealtime pipeline:

1. build the specification (the GUI-equivalent, as Python);
2. translate it to a time Petri net via the composition blocks;
3. synthesise a feasible pre-runtime schedule (DFS over the TLTS);
4. print the schedule table (paper Fig. 8 format);
5. generate the scheduled C project;
6. execute the table on the simulated dispatcher and verify the trace.

Run:  python examples/quickstart.py
"""

from repro import (
    SpecBuilder,
    compose,
    find_schedule,
    generate_project,
    run_schedule,
    schedule_from_result,
    verify_trace,
)
from repro.codegen import render_paper_style


def main() -> None:
    # 1. specification ------------------------------------------------
    spec = (
        SpecBuilder("quickstart")
        .processor("mcu0")
        .task("Sense", computation=2, deadline=8, period=20,
              code="adc_read(&sample);")
        .task("Act", computation=3, deadline=20, period=20,
              code="dac_write(control(sample));")
        .task("Log", computation=4, deadline=40, period=40,
              code="uart_log(sample);")
        .precedence("Sense", "Act")
        .build()
    )
    print(f"spec: {spec}")

    # 2. time Petri net model -----------------------------------------
    model = compose(spec)
    stats = model.net.stats()
    print(
        f"model: {stats['places']} places, {stats['transitions']} "
        f"transitions, PS={model.schedule_period}, "
        f"{model.total_instances} instances"
    )

    # 3. pre-runtime schedule synthesis --------------------------------
    result = find_schedule(model)
    assert result.feasible, "quickstart set must be schedulable"
    print(
        f"search: {result.stats.states_visited} states visited "
        f"(minimum {result.minimum_firings}), "
        f"{result.stats.elapsed_seconds * 1000:.1f} ms"
    )

    # 4. the schedule table (paper Fig. 8 format) ----------------------
    schedule = schedule_from_result(model, result)
    print()
    print(render_paper_style(schedule.items, short_labels=False))
    print()

    # 5. scheduled C code ----------------------------------------------
    project = generate_project(model, schedule, target="hostsim")
    print(f"generated files: {', '.join(sorted(project.files))}")

    # 6. execute on the simulated dispatcher ---------------------------
    machine_result = run_schedule(model, schedule)
    violations = verify_trace(model, machine_result)
    print(machine_result.trace.summary())
    print(
        "trace verification:",
        "OK — every instance met release, WCET, deadline, precedence"
        if not violations
        else violations,
    )


if __name__ == "__main__":
    main()
