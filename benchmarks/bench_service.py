"""Experiment SV1 — synthesis service: dedup rate, latency, parity.

Acceptance benchmark of :mod:`repro.service` (the asyncio HTTP front
end over the batch engine), gating three service-level promises:

* **dedup under concurrent identical traffic** — a stampede of
  identical submissions from parallel clients is answered with a
  ≥ 90% hit rate (``cached`` + ``deduplicated`` dispositions) and the
  worker pool computes the fingerprint **exactly once**;
* **responsiveness** — p99 submit→first-SSE-event latency stays under
  a frozen floor (generous: the gate catches event-loop stalls and
  accidental blocking in the submission path, not scheduler noise);
* **verdict parity** — every feasible schedule the service serves
  replays cleanly through the checked reference engine
  (:func:`repro.scheduler.parallel.validate_with_reference`).

Results are written to ``BENCH_service.json`` at the repository root;
CI uploads it as an artifact so the service-latency trajectory is
recorded per commit.
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import socket
import statistics
import threading
import time

import pytest

from repro.batch import BatchEngine, ResultCache
from repro.blocks import compose
from repro.scheduler import SchedulerConfig
from repro.scheduler.parallel import validate_with_reference
from repro.service import decode_stream, run_in_thread
from repro.spec import paper_examples
from repro.spec.jsonio import spec_to_json
from repro.workloads import random_task_set

#: dedup gate: fraction of stampede submissions answered without a
#: fresh compute (ISSUE 8 acceptance criterion)
MIN_HIT_RATE = 0.90
#: frozen latency floor for p99 submit→first-event (seconds).  The
#: first event is published at subscription time, so this measures
#: HTTP + event-loop turnaround, independent of search hardness.
MAX_P99_FIRST_EVENT = 2.5
#: concurrent clients x submissions each for the stampede phase
CLIENTS = 8
PER_CLIENT = 5

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_service.json"
)


def _loopback_available() -> bool:
    try:
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(),
    reason="runner forbids binding loopback sockets",
)


def _post_json(port: int, path: str, doc: dict) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(doc),
            headers={"content-type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 201, response.read()
        return json.loads(response.read())
    finally:
        conn.close()


def _get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200, response.read()
        return json.loads(response.read())
    finally:
        conn.close()


def _first_event_bytes(port: int, path: str) -> bytes:
    """Open an SSE stream, return once the first full event arrived."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200
        buffer = b""
        while b"\n\n" not in buffer:
            chunk = response.read1(4096)
            if not chunk:
                break
            buffer += chunk
        # closing with the stream still live also exercises
        # mid-stream client drops on the server side
        return buffer
    finally:
        conn.close()


def _wait_done(port: int, job_id: str, deadline: float = 120.0) -> dict:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        doc = _get_json(port, f"/jobs/{job_id}")
        if doc["state"] == "done":
            return doc
        time.sleep(0.02)
    raise AssertionError(f"{job_id} never finished")


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
    )
    return ordered[index]


@pytest.fixture(scope="module")
def service():
    handle = run_in_thread(
        BatchEngine(
            store_schedules=True,
            cache=ResultCache(),
            max_workers=2,
            job_timeout=10.0,
        )
    )
    yield handle
    handle.stop()


RESULTS: dict = {}


def test_stampede_dedup_and_latency(service, report):
    """Concurrent identical traffic: one compute, ≥90% hits, fast."""
    port = service.port
    doc = {
        "spec": spec_to_json(
            random_task_set(5, 0.6, seed=11, name="stampede")
        )
    }
    replies: list[dict] = []
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client_loop():
        try:
            for _ in range(PER_CLIENT):
                started = time.monotonic()
                reply = _post_json(port, "/jobs", doc)
                raw = _first_event_bytes(
                    port, f"/jobs/{reply['job']}/events"
                )
                elapsed = time.monotonic() - started
                (first, *_rest) = decode_stream(raw)
                assert first.event == "queued"
                with lock:
                    replies.append(reply)
                    latencies.append(elapsed)
        except BaseException as err:  # noqa: BLE001 — re-raised below
            with lock:
                errors.append(err)

    threads = [
        threading.Thread(target=client_loop) for _ in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, errors[0]
    total = CLIENTS * PER_CLIENT
    assert len(replies) == total

    _wait_done(port, replies[0]["job"])
    dispositions = [reply["disposition"] for reply in replies]
    computed = dispositions.count("computed")
    hits = total - computed
    hit_rate = hits / total
    counters = service.service.bridge.metrics.snapshot()["counters"]
    p50 = _quantile(latencies, 0.50)
    p99 = _quantile(latencies, 0.99)

    report("SV1", "stampede hit rate", f">={MIN_HIT_RATE:.0%}", f"{hit_rate:.1%}")
    report("SV1", "pool computes", 1, int(counters["bridge.computed"]))
    report(
        "SV1",
        "submit->first-event p99",
        f"<{MAX_P99_FIRST_EVENT}s",
        f"{p99 * 1000:.1f}ms",
    )

    RESULTS["stampede"] = {
        "submissions": total,
        "clients": CLIENTS,
        "computed_dispositions": computed,
        "hit_rate": hit_rate,
        "pool_computes": counters["bridge.computed"],
        "first_event_latency_ms": {
            "p50": p50 * 1000,
            "p99": p99 * 1000,
            "mean": statistics.mean(latencies) * 1000,
        },
    }

    # the gates
    assert counters["bridge.computed"] == 1, (
        f"stampede of {total} identical submissions computed "
        f"{counters['bridge.computed']} times"
    )
    assert computed == 1
    assert hit_rate >= MIN_HIT_RATE
    assert p99 < MAX_P99_FIRST_EVENT


def test_served_schedules_replay_through_reference(service, report):
    """Verdict parity: everything served feasible replays clean."""
    port = service.port
    specs = list(paper_examples().values()) + [
        random_task_set(4, 0.5, seed=2, name="fresh-a"),
        random_task_set(6, 0.4, seed=5, name="fresh-b"),
    ]
    replayed = 0
    statuses: dict[str, int] = {}
    for spec in specs:
        reply = _post_json(port, "/jobs", {"spec": spec_to_json(spec)})
        done = _wait_done(port, reply["job"])
        statuses[done["status"]] = statuses.get(done["status"], 0) + 1
        if done["status"] != "feasible":
            continue
        payload = _get_json(port, f"/results/{reply['fingerprint']}")
        schedule = [
            tuple(entry) for entry in payload["firing_schedule"]
        ]
        assert schedule, "feasible result served without its schedule"
        net = compose(spec).compiled()
        # raises SchedulingError if the served schedule is illegal
        validate_with_reference(net, SchedulerConfig(), schedule)
        assert payload["makespan"] == schedule[-1][2]
        replayed += 1

    report("SV1", "served schedules replayed", "all feasible", replayed)
    assert replayed >= 3, f"too few feasible points: {statuses}"
    RESULTS["parity"] = {
        "specs": len(specs),
        "statuses": statuses,
        "replayed_clean": replayed,
    }


def test_write_bench_json(service):
    """Persist the measured numbers (runs last in file order)."""
    assert "stampede" in RESULTS and "parity" in RESULTS
    snapshot = service.service.manager.metrics_snapshot()
    payload = {
        "experiment": "SV1-service",
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "gates": {
            "min_hit_rate": MIN_HIT_RATE,
            "max_p99_first_event_seconds": MAX_P99_FIRST_EVENT,
        },
        "metrics": snapshot,
        **RESULTS,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
