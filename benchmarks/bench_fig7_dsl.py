"""Experiment E7 — the ez-spec DSL of Fig. 7.

The paper prints a concrete ez-spec fragment; the parser must accept it
verbatim with the figure's field conventions (``computing``, ``power``,
``schedulingMode``, ``precedesTasks="#id"`` references).  Throughput is
measured on the snippet and on a large generated document.
"""

import pytest

from repro.spec import (
    PAPER_FIG7_SNIPPET,
    SchedulingType,
    SpecBuilder,
    dumps,
    loads,
)


def test_fig7_verbatim(report):
    spec = loads(PAPER_FIG7_SNIPPET)
    t1 = spec.task("T1")
    assert (t1.period, t1.computation, t1.deadline) == (9, 1, 9)
    assert t1.energy == 10  # <power>
    assert t1.scheduling is SchedulingType.NON_PREEMPTIVE
    assert spec.precedence_pairs() == [("T1", "T2")]
    report("E7", "paper snippet parses", "yes", "yes")
    report("E7", "field mapping (computing/power/NP)", "3/3", "3/3")


def bench_parse_paper_snippet(benchmark):
    spec = benchmark(loads, PAPER_FIG7_SNIPPET)
    assert len(spec.tasks) == 2


def bench_serialise_paper_snippet(benchmark):
    spec = loads(PAPER_FIG7_SNIPPET)
    document = benchmark(dumps, spec)
    assert "schedulingMode" in document


@pytest.fixture(scope="module")
def big_document():
    builder = SpecBuilder("big").processor("proc0")
    for i in range(200):
        builder.task(
            f"T{i}",
            computation=1,
            deadline=50,
            period=50,
            energy=i,
            code=f"job_{i}();",
        )
    for i in range(0, 198, 2):
        builder.precedence(f"T{i}", f"T{i + 1}")
    return dumps(builder.build())


def bench_parse_200_tasks(benchmark, big_document):
    spec = benchmark(loads, big_document)
    assert len(spec.tasks) == 200
    assert len(spec.precedence_pairs()) == 99


def bench_roundtrip_200_tasks(benchmark, big_document):
    def roundtrip():
        return dumps(loads(big_document))

    result = benchmark(roundtrip)
    assert "T199" in result
