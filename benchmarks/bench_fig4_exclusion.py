"""Experiment E4 — the exclusion relation model of Fig. 4.

The figure draws the preemptive pair T0 (c=10, the weight-10 arcs) and
T2 (c=20, weight-20 arcs) sharing the single-token exclusion place,
with unit-subtask computations [1,1], releases [0,90]/[0,130] and
deadlines [100,100]/[150,150].
"""

import pytest

from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import fig4_exclusion
from repro.tpn import TimeInterval


@pytest.fixture(scope="module")
def expanded_model():
    return compose(
        fig4_exclusion(), ComposerOptions(style=BlockStyle.EXPANDED)
    )


def test_fig4_structure(expanded_model, report):
    net = expanded_model.net
    assert net.transition("tr_T0").interval == TimeInterval(0, 90)
    assert net.transition("tr_T2").interval == TimeInterval(0, 130)
    assert net.transition("td_T0").interval == TimeInterval(100, 100)
    assert net.transition("td_T2").interval == TimeInterval(150, 150)
    assert net.transition("tc_T0").interval == TimeInterval(1, 1)
    assert net.transition("tc_T2").interval == TimeInterval(1, 1)
    excl = net.place("pexcl_T0_T2")
    assert excl.marking == 1
    report("E4", "exclusion place marking", 1, excl.marking)
    report("E4", "weight-c arcs (T0/T2)", "10/20",
           f"{net.input_weight('pwf_T0', 'tf_T0')}/"
           f"{net.input_weight('pwf_T2', 'tf_T2')}")
    assert net.input_weight("pwf_T0", "tf_T0") == 10
    assert net.input_weight("pwf_T2", "tf_T2") == 20


def bench_fig4_composition(benchmark):
    model = benchmark(
        compose,
        fig4_exclusion(),
        ComposerOptions(style=BlockStyle.EXPANDED),
    )
    assert model.net.has_place("pexcl_T0_T2")


def bench_fig4_schedule(benchmark, expanded_model, report):
    result = benchmark(find_schedule, expanded_model)
    assert result.feasible
    schedule = schedule_from_result(expanded_model, result)
    # exclusion: no interleaving between T0 and T2 envelopes
    interleavings = 0
    for k0 in (1, 2):
        t0 = schedule.segments_of("T0", k0)
        lo, hi = t0[0].start, t0[-1].end
        for k2 in (1, 2):
            for seg in schedule.segments_of("T2", k2):
                if seg.start < hi and seg.end > lo:
                    interleavings += 1
    assert interleavings == 0
    report("E4", "T0/T2 interleavings", 0, interleavings)
    report("E4", "states visited", "n/a",
           result.stats.states_visited)
