"""Experiment B1 — pre-runtime synthesis vs priority-driven runtime.

The motivation for pre-runtime scheduling (paper Section 1, Mok [10]):
work-conserving runtime policies cannot insert idle time or make
non-greedy ordering decisions, so sets with exclusion relations and
non-preemptable sections defeat them while a pre-runtime schedule
exists.  Rows produced:

* the *mine pump itself*: EDF/DM/RM all miss PMC's second deadline
  (the non-preemptive 25-unit CH4H blocks it); the DFS backtracks
  around exactly that trap — the paper's own case study demonstrates
  the method's reason to exist;
* the Mok trap (idle insertion required);
* the exclusion-blocking set (EDF/DM trapped by a critical section);
* the classical RM-overload pair (DM/RM miss, EDF meets).
"""

import pytest

from repro.blocks import compose
from repro.scheduler import (
    SchedulerConfig,
    exclusion_blocking_pair,
    find_schedule,
    mok_trap,
    rm_overload_pair,
    simulate_runtime,
)
from repro.spec import mine_pump

WORKLOADS = {
    "mine-pump": mine_pump,
    "mok-trap": mok_trap,
    "exclusion": exclusion_blocking_pair,
    "rm-overload": rm_overload_pair,
}

#: expected feasibility: (edf, dm, rm, pre-runtime)
EXPECTED = {
    "mine-pump": (False, False, False, True),
    "mok-trap": (False, False, False, True),
    "exclusion": (False, False, True, True),
    "rm-overload": (True, False, False, True),
}


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload(request):
    return request.param, WORKLOADS[request.param]()


def test_feasibility_matrix(report):
    for name, factory in sorted(WORKLOADS.items()):
        spec = factory()
        outcomes = tuple(
            simulate_runtime(spec, policy).feasible
            for policy in ("edf", "dm", "rm")
        )
        pre = find_schedule(
            compose(spec), SchedulerConfig(delay_mode="extremes")
        ).feasible
        assert (*outcomes, pre) == EXPECTED[name], name
        row = "/".join(
            "ok" if flag else "MISS" for flag in (*outcomes, pre)
        )
        report("B1", f"{name} (EDF/DM/RM/pre-runtime)",
               "pre-runtime wins", row)


def bench_runtime_edf(benchmark, workload):
    name, spec = workload
    outcome = benchmark(simulate_runtime, spec, "edf")
    assert outcome.feasible == EXPECTED[name][0]


def bench_runtime_dm(benchmark, workload):
    name, spec = workload
    outcome = benchmark(simulate_runtime, spec, "dm")
    assert outcome.feasible == EXPECTED[name][1]


def bench_pre_runtime(benchmark, workload):
    name, spec = workload
    model = compose(spec)
    result = benchmark(
        find_schedule, model, SchedulerConfig(delay_mode="extremes")
    )
    assert result.feasible == EXPECTED[name][3]


def test_mine_pump_miss_is_the_blocking_trap(report):
    """Pin down *why* runtime EDF fails on the paper's case study."""
    outcome = simulate_runtime(mine_pump(), "edf")
    assert not outcome.feasible
    miss = outcome.misses[0]
    assert (miss.task, miss.instance, miss.deadline) == ("PMC", 2, 100)
    report("B1", "mine pump EDF first miss",
           "PMC#2 blocked by CH4H", f"{miss.task}#{miss.instance}@"
           f"{miss.deadline}")
