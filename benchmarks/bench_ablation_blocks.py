"""Ablation A2 — compact vs expanded block libraries.

The paper's state counting implies 4 firings per non-preemptive
instance (minimum 3130 for the mine pump), while its figures draw
separate finish/cancel transitions (6 firings per instance).  This
bench quantifies the difference: path length, states visited and
search time for both styles, verifying that the task-level schedule is
identical either way.
"""

import pytest

from repro.blocks import BlockStyle, ComposerOptions, compose
from repro.scheduler import find_schedule, schedule_from_result
from repro.spec import mine_pump

PAPER_MIN_COMPACT = 3130


@pytest.fixture(scope="module")
def compact_model():
    return compose(
        mine_pump(), ComposerOptions(style=BlockStyle.COMPACT)
    )


@pytest.fixture(scope="module")
def expanded_model():
    return compose(
        mine_pump(), ComposerOptions(style=BlockStyle.EXPANDED)
    )


def test_minimum_firings(compact_model, expanded_model, report):
    assert compact_model.minimum_firings() == PAPER_MIN_COMPACT
    assert expanded_model.minimum_firings() == 6 * 782 + 2
    report("A2", "compact minimum", PAPER_MIN_COMPACT,
           compact_model.minimum_firings())
    report("A2", "expanded minimum", "6·782+2 = 4694",
           expanded_model.minimum_firings())


def bench_compact_search(benchmark, compact_model, report):
    result = benchmark(find_schedule, compact_model)
    assert result.feasible
    report("A2", "compact states visited", "3268 (paper)",
           result.stats.states_visited)


def bench_expanded_search(benchmark, expanded_model, report):
    result = benchmark(find_schedule, expanded_model)
    assert result.feasible
    report("A2", "expanded states visited", "n/a",
           result.stats.states_visited)


def test_styles_yield_same_task_schedule(
    compact_model, expanded_model, report
):
    compact = schedule_from_result(
        compact_model, find_schedule(compact_model)
    )
    expanded = schedule_from_result(
        expanded_model, find_schedule(expanded_model)
    )
    compact_timeline = {
        (s.task, s.instance, s.start, s.end)
        for s in compact.segments
    }
    expanded_timeline = {
        (s.task, s.instance, s.start, s.end)
        for s in expanded.segments
    }
    assert compact_timeline == expanded_timeline
    report("A2", "task timelines identical", "yes", "yes")
