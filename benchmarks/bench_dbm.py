"""Experiment DB1 — packed DBM core: dense-time search at kernel speed.

Acceptance benchmark of the packed state-class hot path (ISSUE 10,
:mod:`repro.tpn.dbm`).  Every workload runs on three state-class
configurations, strictly interleaved:

* **legacy** — the pre-PR ``StateClassAdapter`` (embedded below,
  verbatim) over the tuple-of-tuples
  :class:`~repro.tpn.stateclass.StateClassEngine`: full Floyd–Warshall
  re-closure per firing, Python column scans per candidate list.  This
  is the engine the ISSUE's 3× target is measured against;
* **packed** — the production adapter over
  :class:`~repro.tpn.dbm.DbmEngine`, native C core when built;
* **pure** — the same packed adapter with the C core disabled
  (``EZRT_PURE=1`` equivalent), pinning the fallback's floor.

The bench enforces, in order of importance:

1. **Exactness** (hard gate): byte-identical firing schedules and
   identical deterministic ``SearchStats`` counters across all three
   configurations on every workload.  A perf win that changes the
   search is a bug.
2. **The 3× target** (hard gate with the compiled core): aggregate
   states/sec over the wide-interval family at least
   :data:`TARGET_SPEEDUP` times the legacy engine — wide release
   windows are exactly where dense-time search is the winning engine
   (see ``bench_stateclass``), so that is where its constant factor
   must be paid down.
3. **Pure fallback** (hard floor, always measured): the packed
   buffers without the C core must not lose to the legacy engine on
   the overall aggregate (:data:`MIN_PURE_SPEEDUP`) — a global
   no-regression claim for the fallback.  Its decisive wins are the
   larger-matrix paper case studies; the small wide race nets run at
   parity within host noise.
4. **Discrete-kernel no-regression floor**: the packed DBM core
   shares its C translation unit and build machinery with the search
   kernel (``_kernelc`` gained the candidates/window path in this
   PR), so the bench re-measures the kernel engine on a bounded
   discrete workload and holds it to the same absolute floor
   ``bench_kernel`` applies — at least
   :data:`MAX_BASELINE_REGRESSION` of the frozen incremental hot-path
   rate in ``benchmarks/BASELINE_scheduler.json`` (asserted only when
   the stored baseline is comparable and the kernel core is native).

Timing methodology (as in ``bench_kernel``): engines run strictly
interleaved, each workload takes the minimum of :data:`ROUNDS`
rounds with the collector paused, so host noise hits all engines
alike.

Results are written to ``BENCH_dbm.json`` at the repository root; CI
builds the extension eagerly, runs this bench as a gate and uploads
the JSON as an artifact (plus a second pure-mode job with
``EZRT_PURE=1``).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time

from repro.blocks import compose
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.scheduler.core import DISABLED, _AdapterBase, _DenseView
from repro.scheduler.result import SearchStats
from repro.spec import (
    fig3_precedence,
    fig4_exclusion,
    fig8_preemptive,
    mine_pump,
)
from repro.tpn import _dbmc, _kernelc
from repro.tpn.stateclass import (
    StateClass,
    StateClassEngine,
    realize_firing_sequence,
)
from repro.workloads import (
    random_task_set,
    wide_interval_family,
    wide_interval_job_net,
    wide_interval_race_net,
)

#: ISSUE 10 target, a hard gate when the compiled DBM core is active:
#: aggregate states/sec over the wide-interval family vs the pre-PR
#: tuple engine.
TARGET_SPEEDUP = 3.0
#: Pure-Python fallback floor (overall aggregate): flat buffers +
#: incremental closure repair without the C core must still not lose
#: to the tuple engine.
MIN_PURE_SPEEDUP = 1.0
#: Floor for the discrete kernel engine against the stored absolute
#: baseline (same contract as ``bench_kernel``).
MAX_BASELINE_REGRESSION = 0.95

ENGINES = ("legacy", "packed", "pure")
ROUNDS = 7
WIDTHS = (4, 6, 8)
JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_dbm.json"
)
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BASELINE_scheduler.json"
)


# ----------------------------------------------------------------------
# The pre-PR comparator, embedded verbatim
# ----------------------------------------------------------------------
class _LegacyStateClassAdapter(_AdapterBase):
    """The pre-ISSUE-10 ``StateClassAdapter``, kept here as the
    measured baseline: tuple-of-tuples classes from
    :class:`StateClassEngine` (full Floyd–Warshall re-closure per
    firing), Python column scans and filters per candidate list.
    Everything below is the adapter exactly as it shipped, so the
    speedup the bench reports is the packed core, not loop drift.
    """

    name = "stateclass-legacy"

    def __init__(self, net, config):
        super().__init__(net, config)
        self.engine = StateClassEngine(
            net, reset_policy=config.reset_policy
        )

    def root(self) -> tuple[StateClass, int]:
        return self.engine.initial_class(), 0

    def successor(
        self, cls: StateClass, transition: int, _delay: int
    ) -> StateClass | None:
        return self.engine.try_fire(cls, transition)

    def candidates_of(
        self, cls: StateClass, stats: SearchStats
    ) -> list[tuple[int, int]]:
        miss = self._miss
        dbm = cls.dbm
        size = len(cls.enabled) + 1
        cands: list[tuple[int, int]] = []
        for var, t in enumerate(cls.enabled, start=1):
            if t in miss:
                continue
            for u in range(1, size):
                if dbm[u][var] < 0:
                    break
            else:
                cands.append((t, int(-dbm[0][var])))
        if not cands:
            return cands

        priorities = self._priority
        if self._strict:
            best = min(priorities[t] for t, _lo in cands)
            cands = [
                (t, lo) for t, lo in cands if priorities[t] == best
            ]

        if self._partial_order and len(cands) > 1:
            reduced = self._forced_immediate_dense(cls, cands)
            if reduced is not None:
                stats.reductions += 1
                return [reduced]

        if len(cands) == 1:
            return cands
        expanded = [(lower, priorities[t], t) for t, lower in cands]
        expanded.sort()
        return [(t, q) for q, _p, t in expanded]

    def _forced_immediate_dense(
        self, cls: StateClass, cands: list[tuple[int, int]]
    ) -> tuple[int, int] | None:
        net = self.net
        conflict_free = net.conflict_free
        post_conflicts = net.post_conflicts
        enabled = set(cls.enabled)
        dbm = cls.dbm
        for t, lower in cands:
            if lower != 0 or not conflict_free[t]:
                continue
            var = cls.enabled.index(t) + 1
            if dbm[var][0] != 0:
                continue  # not forced at this instant
            for other in post_conflicts[t]:
                if other in enabled:
                    break  # an enabled transition consumes from t•
            else:
                return (t, 0)
        return None

    def clocks_view(self, cls: StateClass) -> _DenseView:
        clocks = [DISABLED] * self.net.num_transitions
        eft = self._eft
        row0 = cls.dbm[0]
        for var, t in enumerate(cls.enabled, start=1):
            elapsed = eft[t] + int(row0[var])  # eft − lower bound
            clocks[t] = elapsed if elapsed > 0 else 0
        return _DenseView(tuple(clocks))

    def finalize_path(self, actions, stats):
        sequence = [t for t, _q, _at in actions]
        realized = realize_firing_sequence(
            self.net, sequence, self.config.reset_policy
        )
        from repro.scheduler.parallel import validate_with_reference

        validate_with_reference(
            self.net, self.config, realized.schedule
        )
        return realized.schedule, realized.windows


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _workloads():
    """``(name, compiled net, family)`` triples.

    The paper case studies pin exactness on real models (mine-pump
    dominates their timing mass); the wide-interval family is the
    gated one — exhaustive refutations plus one feasible member so
    concretisation and schedule byte-identity are exercised end to
    end.  Every workload either exhausts its class graph or finds a
    schedule, so all three configurations do identical search work.
    """
    for spec in (
        fig3_precedence(),
        fig4_exclusion(),
        fig8_preemptive(),
        mine_pump(),
    ):
        yield f"paper:{spec.name}", compose(spec).compiled(), "paper"
    for label, net in wide_interval_family(widths=WIDTHS):
        yield f"wide:{label}", net.compile(), "wide"
    # the race nets scale the class-graph mass (376 → 7292 classes);
    # the larger members dominate the time-weighted wide aggregate,
    # which is exactly where the packed core's advantage compounds
    for n_jobs, width in ((4, 16), (4, 24), (5, 12), (6, 10)):
        net = wide_interval_race_net(n_jobs=n_jobs, width=width)
        yield f"wide:race-n{n_jobs}-w{width}", net.compile(), "wide"
    feasible = wide_interval_job_net(
        n_jobs=4, width=12, feasible=True
    )
    yield "wide:feasible-n4-w12", feasible.compile(), "wide"


def _scheduler(net, engine):
    scheduler = PreRuntimeScheduler(
        net, SchedulerConfig(), engine="stateclass"
    )
    if engine == "legacy":
        scheduler.adapter = _LegacyStateClassAdapter(
            net, scheduler.config
        )
    elif engine == "pure":
        scheduler.adapter.engine._core = None
        scheduler.adapter.engine.native = False
    return scheduler


def _timed_search(net, engine):
    scheduler = _scheduler(net, engine)
    # collector pauses scale with whatever the rest of the process has
    # allocated (other benches in the same run), which would punish the
    # fastest engine the hardest — time every engine collector-free
    gc.collect()
    reenable = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = scheduler.search()
        seconds = time.perf_counter() - started
    finally:
        if reenable:
            gc.enable()
    return result, seconds


def _deterministic_stats(result):
    return {
        name: value
        for name, value in result.stats.as_dict().items()
        if name not in ("elapsed_seconds", "states_per_second")
    }


def _measure(net):
    """Interleaved min-of-N timing for the three configurations."""
    results = {}
    for engine in ENGINES:  # warm-up + exactness outputs
        results[engine], _ = _timed_search(net, engine)
    best = {engine: float("inf") for engine in ENGINES}
    for _ in range(ROUNDS):
        for engine in ENGINES:
            _, seconds = _timed_search(net, engine)
            best[engine] = min(best[engine], seconds)
    return results, best


def _run_suite():
    rows = []
    for name, net, family in _workloads():
        results, best = _measure(net)

        # -- exactness gate ------------------------------------------
        legacy = results["legacy"]
        for engine in ("packed", "pure"):
            other = results[engine]
            assert other.feasible == legacy.feasible, (
                f"{name}: {engine} verdict diverged from legacy"
            )
            assert (
                other.firing_schedule == legacy.firing_schedule
            ), f"{name}: {engine} produced a different schedule"
            assert _deterministic_stats(other) == (
                _deterministic_stats(legacy)
            ), f"{name}: {engine} disagrees on search statistics"

        visited = legacy.stats.states_visited
        rows.append(
            {
                "workload": name,
                "family": family,
                "transitions": net.num_transitions,
                "places": net.num_places,
                "feasible": legacy.feasible,
                "states_visited": visited,
                "legacy_seconds": best["legacy"],
                "packed_seconds": best["packed"],
                "pure_seconds": best["pure"],
                "packed_states_per_sec": visited / best["packed"],
                "speedup_vs_legacy": best["legacy"]
                / best["packed"],
                "pure_speedup_vs_legacy": best["legacy"]
                / best["pure"],
            }
        )
    return rows


def _aggregate(rows, family=None):
    picked = [
        r for r in rows if family is None or r["family"] == family
    ]
    states = sum(r["states_visited"] for r in picked)
    seconds = {
        engine: sum(r[f"{engine}_seconds"] for r in picked)
        for engine in ENGINES
    }
    return {
        "family": family or "all",
        "workloads": len(picked),
        "states_visited": states,
        "legacy_states_per_sec": states / seconds["legacy"],
        "packed_states_per_sec": states / seconds["packed"],
        "pure_states_per_sec": states / seconds["pure"],
        "speedup_vs_legacy": seconds["legacy"] / seconds["packed"],
        "pure_speedup_vs_legacy": seconds["legacy"]
        / seconds["pure"],
    }


def _baseline():
    """The stored absolute baseline, or ``(None, None)``."""
    path = os.path.abspath(BASELINE_PATH)
    if not os.path.exists(path):
        return None, None
    with open(path, encoding="utf-8") as fh:
        stored = json.load(fh)
    same_python = str(stored.get("python", "")).split(".")[:2] == (
        platform.python_version().split(".")[:2]
    )
    same_machine = stored.get("machine") in (None, platform.machine())
    return stored, same_python and same_machine


def _kernel_floor():
    """Re-measure the discrete kernel engine against its baseline.

    The DBM core extends the same compiled translation unit the
    kernel's hot loop lives in, so this PR must not cost the discrete
    engine anything.  One bounded workload (``bench_kernel``'s
    scaling shape) is enough for an absolute-rate floor; the full
    sweep remains ``bench_kernel``'s job.
    """
    spec = random_task_set(
        16,
        total_utilization=0.9,
        seed=116,
        deadline_slack=0.7,
        period_grid=(20, 40, 80),
    )
    net = compose(spec).compiled()
    limits = {"max_states": 3000}

    def _timed_kernel():
        scheduler = PreRuntimeScheduler(
            net, SchedulerConfig(**limits), engine="kernel"
        )
        gc.collect()
        reenable = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = scheduler.search()
            seconds = time.perf_counter() - started
        finally:
            if reenable:
                gc.enable()
        return result, seconds

    result, _ = _timed_kernel()  # warm-up
    best = float("inf")
    for _ in range(ROUNDS):
        _, seconds = _timed_kernel()
        best = min(best, seconds)
    rate = result.stats.states_visited / best

    stored, comparable = _baseline()
    ratio = None
    if stored is not None:
        ratio = rate / stored["states_per_sec"]
    return {
        "workload": "scaling:n16",
        "states_visited": result.stats.states_visited,
        "kernel_states_per_sec": rate,
        "baseline_states_per_sec": (
            None if stored is None else stored["states_per_sec"]
        ),
        "baseline_ratio": ratio,
        "baseline_comparable": comparable,
        "native_core": _kernelc.available(),
    }


def test_dbm_throughput(report):
    native = _dbmc.available()
    rows = _run_suite()
    families = ("paper", "wide")
    aggregates = {f: _aggregate(rows, f) for f in families}
    overall = _aggregate(rows)
    kernel_floor = _kernel_floor()

    wide = aggregates["wide"]
    payload = {
        "bench": "dbm",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": ROUNDS,
        "native_core": native,
        "load_error": (
            None if _dbmc.LOAD_ERROR is None
            else str(_dbmc.LOAD_ERROR)
        ),
        "target_speedup": TARGET_SPEEDUP,
        "min_pure_speedup": MIN_PURE_SPEEDUP,
        "max_baseline_regression": MAX_BASELINE_REGRESSION,
        "target_met": wide["speedup_vs_legacy"] >= TARGET_SPEEDUP,
        "kernel_floor": kernel_floor,
        "rows": rows,
        "aggregates": {**aggregates, "all": overall},
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    core = "native" if native else "pure"
    for row in rows:
        report(
            "DB1",
            f"{row['workload']} packed ({core}) vs legacy",
            "faster",
            f"{row['speedup_vs_legacy']:.2f}x "
            f"(pure {row['pure_speedup_vs_legacy']:.2f}x)",
        )
    report(
        "DB1",
        f"wide aggregate packed ({core}) vs legacy",
        f">= {TARGET_SPEEDUP}" if native else f">= {MIN_PURE_SPEEDUP}",
        f"{wide['speedup_vs_legacy']:.2f}x "
        f"({wide['packed_states_per_sec']:,.0f} states/sec)",
    )
    report(
        "DB1",
        "overall aggregate pure fallback vs legacy",
        f">= {MIN_PURE_SPEEDUP}",
        f"{overall['pure_speedup_vs_legacy']:.2f}x "
        f"(wide {wide['pure_speedup_vs_legacy']:.2f}x)",
    )
    if kernel_floor["baseline_ratio"] is not None:
        report(
            "DB1",
            "discrete kernel floor (shared C build)",
            f">= {MAX_BASELINE_REGRESSION}x of baseline",
            f"{kernel_floor['baseline_ratio']:.2f}x "
            f"({kernel_floor['kernel_states_per_sec']:,.0f} "
            "states/sec)",
        )

    # -- throughput gates --------------------------------------------
    if native:
        assert wide["speedup_vs_legacy"] >= TARGET_SPEEDUP, (
            "packed DBM core missed the 3x wide-interval target: "
            f"{wide['speedup_vs_legacy']:.2f}x aggregate"
        )
    # the pure floor is a global no-regression claim: the fallback
    # must not lose to the tuple engine over the whole suite.  (On the
    # small wide race nets pure runs at parity within host noise; its
    # decisive wins are the paper's larger case studies — mine-pump
    # classes carry the biggest matrices — so the aggregate that
    # states the claim robustly is the overall one.)
    assert overall["pure_speedup_vs_legacy"] >= MIN_PURE_SPEEDUP, (
        "pure-Python packed fallback lost to the legacy tuple "
        f"engine: {overall['pure_speedup_vs_legacy']:.2f}x overall"
    )
    if (
        kernel_floor["native_core"]
        and kernel_floor["baseline_comparable"]
        and kernel_floor["baseline_ratio"] is not None
    ):
        assert (
            kernel_floor["baseline_ratio"] >= MAX_BASELINE_REGRESSION
        ), (
            "discrete kernel states/sec fell below the stored "
            f"baseline floor: {kernel_floor['baseline_ratio']:.2f}x "
            "of BASELINE_scheduler.json"
        )


def test_json_artifact_shape():
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        test_dbm_throughput(lambda *a: None)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "dbm"
    assert payload["rows"], "no benchmark rows recorded"
    for row in payload["rows"]:
        assert row["packed_states_per_sec"] > 0
        assert row["states_visited"] > 0
    assert set(payload["aggregates"]) == {"paper", "wide", "all"}
    assert any(row["feasible"] for row in payload["rows"])
    assert payload["kernel_floor"]["kernel_states_per_sec"] > 0
