"""Experiment E6 — the tool architecture of Fig. 6, end to end.

The figure draws the pipeline: DSL model → (EMF metamodel) → PNML time
Petri net → pre-runtime scheduler → scheduled C code.  The bench runs
the complete flow for a representative control application and measures
each stage plus the whole.
"""

import pytest

from repro.blocks import compose
from repro.codegen import generate_project
from repro.pnml import dumps as pnml_dumps, loads as pnml_loads
from repro.scheduler import find_schedule, schedule_from_result
from repro.sim import run_schedule, verify_trace
from repro.spec import SpecBuilder, dumps as dsl_dumps, loads as dsl_loads


def _application_spec():
    return (
        SpecBuilder("engine-controller")
        .processor("mcu0")
        .task("IGNITION", computation=2, deadline=5, period=20,
              scheduling="P", code="set_spark();")
        .task("INJECT", computation=3, deadline=10, period=20,
              scheduling="P", code="set_injector();")
        .task("SAMPLE", computation=2, deadline=20, period=20,
              code="read_sensors();")
        .task("PLAN", computation=5, deadline=40, period=40,
              scheduling="P", code="recompute_maps();")
        .precedence("SAMPLE", "INJECT")
        .exclusion("IGNITION", "PLAN")
        .build()
    )


@pytest.fixture(scope="module")
def spec():
    return _application_spec()


def bench_stage1_dsl_roundtrip(benchmark, spec):
    document = dsl_dumps(spec)
    parsed = benchmark(dsl_loads, document)
    assert len(parsed.tasks) == 4


def bench_stage2_compose(benchmark, spec):
    model = benchmark(compose, spec)
    assert model.net.has_place("pexcl_IGNITION_PLAN")


def bench_stage3_pnml_export_import(benchmark, spec):
    model = compose(spec)

    def roundtrip():
        return pnml_loads(pnml_dumps(model.net))

    net = benchmark(roundtrip)
    assert net.stats() == model.net.stats()


def bench_stage4_schedule(benchmark, spec):
    model = compose(spec)
    result = benchmark(find_schedule, model)
    assert result.feasible


def bench_stage5_codegen(benchmark, spec):
    model = compose(spec)
    schedule = schedule_from_result(model, find_schedule(model))
    project = benchmark(generate_project, model, schedule, "hostsim")
    assert len(project.files) == 8


def bench_full_pipeline(benchmark, spec, report):
    """DSL text in → verified executable schedule + C project out."""
    document = dsl_dumps(spec)

    def pipeline():
        parsed = dsl_loads(document)
        model = compose(parsed)
        result = find_schedule(model)
        schedule = schedule_from_result(model, result)
        project = generate_project(model, schedule, "hostsim")
        machine_result = run_schedule(model, schedule)
        violations = verify_trace(model, machine_result)
        return result, schedule, project, violations

    result, schedule, project, violations = benchmark(pipeline)
    assert result.feasible
    assert violations == []
    report("E6", "pipeline stages green", "5/5", "5/5")
    report("E6", "generated files", "n/a", len(project.files))
