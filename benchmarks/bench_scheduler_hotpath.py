"""Experiment HP1 — TLTS hot-path throughput: incremental vs reference.

Acceptance benchmark of the incremental successor engine
(:mod:`repro.tpn.fastengine`).  For every workload the depth-first
scheduler runs twice — once on the pre-PR reference engine (dense
O(|T|·|P|) rescans, list frames) and once on the incremental O(degree)
engine — and the benchmark enforces, in this order of importance:

1. **Exactness** (hard gate): byte-identical firing schedules and
   identical deterministic ``SearchStats`` counters on every workload,
   paper models included.  A perf win that changes the search is a bug.
2. **Throughput**: the incremental engine must beat the reference
   engine on aggregate states/sec over the ``bench_scaling`` workload
   sweep by at least :data:`MIN_AGGREGATE_SPEEDUP`.  The roadmap target
   is :data:`TARGET_SPEEDUP`; whether it is met is recorded in the
   emitted JSON so the perf trajectory is tracked PR over PR.

Timing methodology: the host may be a noisy shared core, so the two
engines run strictly interleaved and each workload takes the minimum of
several rounds — drift hits both engines alike and the min discards
scheduler preemptions.

Results are written to ``BENCH_scheduler.json`` at the repository root
(per-workload rows plus aggregates); CI uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.blocks import compose
from repro.scheduler import PreRuntimeScheduler, SchedulerConfig
from repro.spec import paper_examples
from repro.workloads import random_task_set

#: Hard floor for the aggregate scaling speedup (noise-proof: the
#: incremental engine has beaten this by a wide margin on every box
#: measured; a regression below it means the hot path broke).
MIN_AGGREGATE_SPEEDUP = 1.3
#: Roadmap target (ISSUE 2): recorded in the JSON, not yet a hard gate
#: at paper-model sizes — the advantage grows with net size (see the
#: README "Performance" section).
TARGET_SPEEDUP = 3.0

#: The bench_scaling workload family (same generator, same parameters),
#: extended upward — the asymptotic O(degree)-vs-O(|T|·|P|) gap is the
#: point of the sweep.
SCALING_SIZES = (2, 4, 8, 12, 16, 24)

ROUNDS = 7
JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_scheduler.json"
)


def _workloads():
    for name, spec in paper_examples().items():
        yield f"paper:{name}", spec, "paper"
    for n in SCALING_SIZES:
        yield (
            f"scaling:n{n}",
            random_task_set(
                n,
                total_utilization=0.4,
                seed=100 + n,
                period_grid=(20, 40, 80),
            ),
            "scaling",
        )
    # campaign-grid points (the batch engine's bread and butter):
    # mixed utilisation and preemption, moderate sizes
    for n, u, seed in ((6, 0.5, 3), (8, 0.6, 5)):
        yield (
            f"grid:n{n}-u{u}-s{seed}",
            random_task_set(
                n,
                total_utilization=u,
                seed=seed,
                preemptive_fraction=0.5,
                period_grid=(10, 20, 40),
            ),
            "grid",
        )


def _timed_search(net, engine):
    scheduler = PreRuntimeScheduler(
        net, SchedulerConfig(), engine=engine
    )
    started = time.perf_counter()
    result = scheduler.search()
    return result, time.perf_counter() - started


def _deterministic_stats(result):
    return {
        name: value
        for name, value in result.stats.as_dict().items()
        if name not in ("elapsed_seconds", "states_per_second")
    }


def _measure(net):
    """Interleaved min-of-N timing for both engines on one net."""
    # warm-up (also yields the outputs compared for exactness)
    ref_result, _ = _timed_search(net, "reference")
    fast_result, _ = _timed_search(net, "incremental")
    t_ref = []
    t_fast = []
    for _ in range(ROUNDS):
        _, a = _timed_search(net, "reference")
        _, b = _timed_search(net, "incremental")
        t_ref.append(a)
        t_fast.append(b)
    return ref_result, fast_result, min(t_ref), min(t_fast)


def _end_to_end(spec, engine):
    """Full synthesis latency: compose → compile → search."""
    from repro.scheduler import find_schedule

    started = time.perf_counter()
    model = compose(spec)
    find_schedule(model, SchedulerConfig(), engine=engine)
    return time.perf_counter() - started


def _run_suite():
    rows = []
    for name, spec, family in _workloads():
        net = compose(spec).compiled()
        ref_result, fast_result, ref_s, fast_s = _measure(net)
        e2e_ref = min(_end_to_end(spec, "reference") for _ in range(3))
        e2e_fast = min(
            _end_to_end(spec, "incremental") for _ in range(3)
        )

        # -- exactness gate ------------------------------------------
        assert (
            fast_result.firing_schedule == ref_result.firing_schedule
        ), f"{name}: engines produced different schedules"
        assert _deterministic_stats(fast_result) == (
            _deterministic_stats(ref_result)
        ), f"{name}: engines disagree on search statistics"

        visited = fast_result.stats.states_visited
        rows.append(
            {
                "workload": name,
                "family": family,
                "transitions": net.num_transitions,
                "places": net.num_places,
                "feasible": fast_result.feasible,
                "states_visited": visited,
                "schedule_length": fast_result.schedule_length,
                "reference_seconds": ref_s,
                "incremental_seconds": fast_s,
                "reference_states_per_sec": visited / ref_s,
                "incremental_states_per_sec": visited / fast_s,
                "speedup": ref_s / fast_s,
                "end_to_end_reference_seconds": e2e_ref,
                "end_to_end_incremental_seconds": e2e_fast,
            }
        )
    return rows


def _aggregate(rows, family):
    picked = [r for r in rows if r["family"] == family]
    ref = sum(r["reference_seconds"] for r in picked)
    fast = sum(r["incremental_seconds"] for r in picked)
    states = sum(r["states_visited"] for r in picked)
    return {
        "family": family,
        "workloads": len(picked),
        "states_visited": states,
        "reference_states_per_sec": states / ref,
        "incremental_states_per_sec": states / fast,
        "speedup": ref / fast,
    }


def test_hotpath_throughput(report):
    rows = _run_suite()
    aggregates = {
        family: _aggregate(rows, family)
        for family in ("paper", "scaling", "grid")
    }
    scaling = aggregates["scaling"]
    payload = {
        "bench": "scheduler_hotpath",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": ROUNDS,
        "target_speedup": TARGET_SPEEDUP,
        "min_aggregate_speedup": MIN_AGGREGATE_SPEEDUP,
        "target_met": scaling["speedup"] >= TARGET_SPEEDUP,
        "rows": rows,
        "aggregates": aggregates,
    }
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for row in rows:
        report(
            "HP1",
            f"{row['workload']} states/sec (incremental)",
            f"{row['reference_states_per_sec']:,.0f} (reference)",
            f"{row['incremental_states_per_sec']:,.0f} "
            f"({row['speedup']:.2f}x)",
        )
    report(
        "HP1",
        "bench_scaling aggregate speedup",
        f">= {MIN_AGGREGATE_SPEEDUP} (target {TARGET_SPEEDUP})",
        f"{scaling['speedup']:.2f}x",
    )

    # -- throughput gates --------------------------------------------
    assert scaling["speedup"] >= MIN_AGGREGATE_SPEEDUP, (
        "incremental engine lost its aggregate advantage on the "
        f"scaling sweep: {scaling['speedup']:.2f}x"
    )
    # every non-trivial workload must individually benefit
    for row in rows:
        if row["states_visited"] >= 50:
            assert row["speedup"] >= 1.1, (
                f"{row['workload']}: speedup {row['speedup']:.2f}x "
                "below the per-workload floor"
            )


def test_json_artifact_shape():
    """The emitted artifact stays machine-readable across PRs."""
    if not os.path.exists(os.path.abspath(JSON_PATH)):
        # emit it (also exercises the exactness gate)
        test_hotpath_throughput(lambda *a: None)
    with open(os.path.abspath(JSON_PATH), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["bench"] == "scheduler_hotpath"
    assert payload["rows"], "no benchmark rows recorded"
    for row in payload["rows"]:
        assert row["incremental_states_per_sec"] > 0
        assert row["reference_states_per_sec"] > 0
    assert "scaling" in payload["aggregates"]
